// Command dsmbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dsmbench [-exp all|fig1|fig2|table1|fig3|fig4|table2|fig5|...]
//	         [-scale unit|small|paper] [-procs N] [-apps FFT,SOR,...]
//	         [-protocol lrc|erc|hlrc|adp] [-workers N] [-json FILE] [-verify]
//
// Each experiment prints the same rows/series as the corresponding artifact
// in "Comparative Evaluation of Latency Tolerance Techniques for Software
// Distributed Shared Memory" (HPCA-4, 1998). The default scale is "small"
// (scaled-down inputs, minutes of wall time); "paper" uses the paper's
// input sizes.
//
// Independent simulations fan out over a worker pool (-workers, default
// GOMAXPROCS): the full run grid is prewarmed up front and the experiments
// render concurrently, while output still appears in paper order. Every
// simulation is single-threaded and deterministic, so results are
// byte-identical for any worker count. -json writes a machine-readable
// summary (wall clock per experiment, aggregate simulation time, effective
// speedup over a sequential run) for tracking performance across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"godsm/dsm"
	"godsm/internal/apps"
	"godsm/internal/harness"
)

// benchResult is the machine-readable summary written by -json.
type benchResult struct {
	Date     string  `json:"date"`
	Scale    string  `json:"scale"`
	Procs    int     `json:"procs"`
	Workers  int     `json:"workers"`
	NumCPU   int     `json:"num_cpu"`
	TotalSec float64 `json:"total_wall_s"`
	// SimSec is the cumulative single-threaded simulation time: what a
	// sequential run of the same grid would have cost. SimSec/TotalSec is
	// the effective speedup from the parallel runner.
	SimSec      float64           `json:"sim_wall_s"`
	SimRuns     int64             `json:"sim_runs"`
	Speedup     float64           `json:"speedup_vs_sequential"`
	Experiments []experimentTimes `json:"experiments"`
	// Note records free-form context about the run environment (-note), so
	// a snapshot taken on an atypical box explains itself.
	Note string `json:"note,omitempty"`
}

type experimentTimes struct {
	ID    string  `json:"id"`
	WallS float64 `json:"wall_s"`
}

func main() {
	exp := flag.String("exp", "all", "experiment id (all, fig1, fig2, table1, fig3, fig4, table2, fig5, ablation, netsweep, scaling, faults, protocols, chaos, nodescale, racecheck, adaptive)")
	scale := flag.String("scale", "small", "input scale: unit, small or paper")
	procs := flag.Int("procs", 8, "number of simulated processors")
	appList := flag.String("apps", "", "comma-separated application subset (default all)")
	protocol := flag.String("protocol", "", "coherence protocol for every run: "+strings.Join(dsm.Protocols(), ", ")+" (default lrc; the protocols experiment always compares all)")
	homePolicy := flag.String("home-policy", "", "hlrc page-home assignment for every run: "+strings.Join(dsm.HomePolicies(), ", ")+" (default static; the adaptive experiment always sweeps)")
	verify := flag.Bool("verify", false, "verify application output against sequential goldens")
	workers := flag.Int("workers", 0, "max simulations running concurrently (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "BENCH_dsmbench.json", "write a machine-readable timing summary here ('' = off)")
	note := flag.String("note", "", "free-form environment note recorded in the -json summary")
	nsProcs := flag.String("nodescale-procs", "", "comma-separated processor sweep for the nodescale experiment (default 8,64,256,1024)")
	nsJSON := flag.String("nodescale-json", "", "write the nodescale experiment's snapshot here ('' = off)")
	raceCheck := flag.Bool("race-check", false, "run every simulation under the happens-before race detector (the racecheck experiment always does)")
	flag.Parse()

	sc, err := apps.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	if *protocol != "" {
		known := false
		for _, name := range dsm.Protocols() {
			if name == *protocol {
				known = true
			}
		}
		if !known {
			fatal(fmt.Errorf("unknown protocol %q (registered: %v)", *protocol, dsm.Protocols()))
		}
	}
	if *homePolicy != "" && *protocol != "hlrc" {
		fatal(fmt.Errorf("-home-policy given but -protocol is not hlrc"))
	}
	opt := harness.Options{Procs: *procs, Scale: sc, Verify: *verify, Workers: *workers, Protocol: *protocol,
		HomePolicy: *homePolicy, NodeScaleJSON: *nsJSON, RaceCheck: *raceCheck}
	if *nsProcs != "" {
		for _, f := range strings.Split(*nsProcs, ",") {
			var p int
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &p); err != nil || p < 1 {
				fatal(fmt.Errorf("bad -nodescale-procs entry %q", f))
			}
			opt.NodeScaleProcs = append(opt.NodeScaleProcs, p)
		}
	}
	if *appList != "" {
		for _, a := range strings.Split(*appList, ",") {
			name := strings.TrimSpace(a)
			if _, err := apps.ByName(name); err != nil {
				fatal(err)
			}
			opt.Apps = append(opt.Apps, name)
		}
	}
	session := harness.NewSession(opt)

	var selected []harness.Experiment
	if *exp == "all" {
		selected = harness.Experiments
	} else {
		e, err := harness.ByID(*exp)
		if err != nil {
			fatal(err)
		}
		selected = []harness.Experiment{e}
	}

	start := harness.Wallclock()
	// Schedule the full cached-run grid before any rendering starts, so
	// the worker pool is busy end to end; experiments then render
	// concurrently into buffers and print in paper order.
	session.Prewarm(harness.PrewarmKeys(session, selected))

	type rendered struct {
		out  strings.Builder
		err  error
		wall time.Duration
		done chan struct{}
	}
	results := make([]*rendered, len(selected))
	var wg sync.WaitGroup
	for i, e := range selected {
		results[i] = &rendered{done: make(chan struct{})}
		wg.Add(1)
		go func(i int, e harness.Experiment) {
			defer wg.Done()
			r := results[i]
			t0 := harness.Wallclock()
			r.err = e.Run(session, &r.out)
			r.wall = harness.Wallclock().Sub(t0)
			close(r.done)
		}(i, e)
	}

	var times []experimentTimes
	for i, e := range selected {
		r := results[i]
		<-r.done
		if r.err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, r.err))
		}
		if i > 0 {
			fmt.Println()
		}
		os.Stdout.WriteString(r.out.String())
		fmt.Printf("[%s done in %.1fs wall]\n", e.ID, r.wall.Seconds())
		times = append(times, experimentTimes{ID: e.ID, WallS: r.wall.Seconds()})
	}
	wg.Wait()
	total := harness.Wallclock().Sub(start)

	simRuns, simWall := session.SimStats()
	speedup := 0.0
	if total > 0 {
		speedup = simWall.Seconds() / total.Seconds()
	}
	fmt.Printf("\n%d simulations, %.1fs simulation time on %d workers, %.1fs wall (%.2fx vs sequential)\n",
		simRuns, simWall.Seconds(), session.Workers(), total.Seconds(), speedup)

	if *jsonPath != "" {
		res := benchResult{
			Date:        harness.Wallclock().UTC().Format(time.RFC3339),
			Scale:       *scale,
			Procs:       *procs,
			Workers:     session.Workers(),
			NumCPU:      runtime.NumCPU(),
			TotalSec:    total.Seconds(),
			SimSec:      simWall.Seconds(),
			SimRuns:     simRuns,
			Speedup:     speedup,
			Experiments: times,
			Note:        *note,
		}
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmbench:", err)
	os.Exit(1)
}
