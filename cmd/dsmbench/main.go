// Command dsmbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dsmbench [-exp all|fig1|fig2|table1|fig3|fig4|table2|fig5]
//	         [-scale unit|small|paper] [-procs N] [-apps FFT,SOR,...]
//	         [-verify]
//
// Each experiment prints the same rows/series as the corresponding artifact
// in "Comparative Evaluation of Latency Tolerance Techniques for Software
// Distributed Shared Memory" (HPCA-4, 1998). The default scale is "small"
// (scaled-down inputs, minutes of wall time); "paper" uses the paper's
// input sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"godsm/internal/apps"
	"godsm/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (all, fig1, fig2, table1, fig3, fig4, table2, fig5)")
	scale := flag.String("scale", "small", "input scale: unit, small or paper")
	procs := flag.Int("procs", 8, "number of simulated processors")
	appList := flag.String("apps", "", "comma-separated application subset (default all)")
	verify := flag.Bool("verify", false, "verify application output against sequential goldens")
	flag.Parse()

	sc, err := apps.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	opt := harness.Options{Procs: *procs, Scale: sc, Verify: *verify}
	if *appList != "" {
		for _, a := range strings.Split(*appList, ",") {
			name := strings.TrimSpace(a)
			if _, err := apps.ByName(name); err != nil {
				fatal(err)
			}
			opt.Apps = append(opt.Apps, name)
		}
	}
	session := harness.NewSession(opt)

	var selected []harness.Experiment
	if *exp == "all" {
		selected = harness.Experiments
	} else {
		e, err := harness.ByID(*exp)
		if err != nil {
			fatal(err)
		}
		selected = []harness.Experiment{e}
	}

	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		if err := e.Run(session, os.Stdout); err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Printf("[%s done in %.1fs wall]\n", e.ID, time.Since(start).Seconds())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmbench:", err)
	os.Exit(1)
}
