package main

import (
	"strings"
	"testing"

	"godsm/dsm"
)

// TestValidateProtocol exercises the up-front protocol flag validation:
// registered names pass (with any knobs they support), unknown names fail
// with the registered list, and knob combinations a backend cannot honor
// are rejected before anything simulates.
func TestValidateProtocol(t *testing.T) {
	cases := []struct {
		name        string
		protocol    string
		gcThreshold int64
		eagerRC     bool
		wantErr     []string // substrings of the error; empty = valid
	}{
		{name: "default is lrc"},
		{name: "explicit lrc", protocol: "lrc"},
		{name: "erc", protocol: "erc"},
		{name: "hlrc", protocol: "hlrc"},
		{name: "lrc with gc threshold", protocol: "lrc", gcThreshold: 1 << 20},
		{name: "default with gc threshold", gcThreshold: 1 << 20},
		{name: "legacy eager-rc switch maps to erc", eagerRC: true},
		{name: "eager-rc switch with matching protocol", protocol: "erc", eagerRC: true},
		{name: "unknown protocol lists registered ones", protocol: "treadmarks",
			wantErr: []string{"unknown protocol", "treadmarks", "erc", "hlrc", "lrc"}},
		{name: "hlrc rejects gc threshold", protocol: "hlrc", gcThreshold: 1 << 20,
			wantErr: []string{"hlrc", "GCThreshold"}},
		{name: "hlrc rejects shared pf-heap gc", protocol: "hlrc", eagerRC: false,
			wantErr: []string{"hlrc", "PfHeapSharedGC"}},
		{name: "eager-rc switch conflicts with hlrc", protocol: "hlrc", eagerRC: true,
			wantErr: []string{"EagerRC", "hlrc"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := dsm.DefaultConfig()
			cfg.Protocol = tc.protocol
			cfg.GCThreshold = tc.gcThreshold
			cfg.EagerRC = tc.eagerRC
			if tc.name == "hlrc rejects shared pf-heap gc" {
				cfg.PfHeapSharedGC = true
			}
			err := validateProtocol(cfg)
			if len(tc.wantErr) == 0 {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error mentioning %q, got nil", tc.wantErr)
			}
			for _, want := range tc.wantErr {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q missing %q", err, want)
				}
			}
		})
	}
}
