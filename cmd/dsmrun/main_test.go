package main

import (
	"strings"
	"testing"

	"godsm/dsm"
)

// TestValidateMachine exercises the up-front flag validation: registered
// protocol names pass (with any knobs they support), unknown names fail
// with the registered list, knob combinations a backend cannot honor are
// rejected, and machine shapes the simulator cannot build — a fat tree
// over a non-power-of-two -procs, a degenerate combining-tree arity — are
// reported as plain usage errors instead of panics in core.NewSystem.
func TestValidateMachine(t *testing.T) {
	cases := []struct {
		name        string
		procs       int // 0 = leave DefaultConfig's 8
		protocol    string
		gcThreshold int64
		eagerRC     bool
		topology    string
		radix       int
		barrier     string
		fanout      int
		gossip      bool
		raceCheck   bool
		raceGran    string
		wantErr     []string // substrings of the error; empty = valid
	}{
		{name: "default is lrc"},
		{name: "explicit lrc", protocol: "lrc"},
		{name: "erc", protocol: "erc"},
		{name: "hlrc", protocol: "hlrc"},
		{name: "lrc with gc threshold", protocol: "lrc", gcThreshold: 1 << 20},
		{name: "default with gc threshold", gcThreshold: 1 << 20},
		{name: "legacy eager-rc switch maps to erc", eagerRC: true},
		{name: "eager-rc switch with matching protocol", protocol: "erc", eagerRC: true},
		{name: "unknown protocol lists registered ones", protocol: "treadmarks",
			wantErr: []string{"unknown protocol", "treadmarks", "erc", "hlrc", "lrc"}},
		{name: "hlrc rejects gc threshold", protocol: "hlrc", gcThreshold: 1 << 20,
			wantErr: []string{"hlrc", "GCThreshold"}},
		{name: "hlrc rejects shared pf-heap gc", protocol: "hlrc", eagerRC: false,
			wantErr: []string{"hlrc", "PfHeapSharedGC"}},
		{name: "eager-rc switch conflicts with hlrc", protocol: "hlrc", eagerRC: true,
			wantErr: []string{"EagerRC", "hlrc"}},

		{name: "zero procs", procs: -1,
			wantErr: []string{"Procs", "positive"}},
		{name: "explicit single switch", topology: "single"},
		{name: "fat tree at a power of two", procs: 64, topology: "fattree"},
		{name: "fat tree with explicit radix", procs: 16, topology: "fattree", radix: 8},
		{name: "unknown topology", topology: "hypercube",
			wantErr: []string{"unknown topology", "hypercube"}},
		{name: "fat tree rejects non-power-of-two procs", procs: 12, topology: "fattree",
			wantErr: []string{"fattree", "12", "power-of-two"}},
		{name: "fat tree rejects one node", procs: 1, topology: "fattree",
			wantErr: []string{"fattree", "power-of-two"}},
		{name: "fat tree rejects non-power-of-two radix", procs: 16, topology: "fattree", radix: 6,
			wantErr: []string{"fattree", "radix 6"}},
		{name: "combining tree", barrier: "tree"},
		{name: "explicit central barrier", barrier: "central"},
		{name: "unknown barrier", barrier: "butterfly",
			wantErr: []string{"unknown barrier", "butterfly"}},
		{name: "combining tree rejects arity below 2", barrier: "tree", fanout: 1,
			wantErr: []string{"fanout 1", "arity >= 2"}},
		{name: "gossip on erc", protocol: "erc", gossip: true},
		{name: "gossip on lrc", protocol: "lrc", gossip: true},
		{name: "hlrc rejects gossip", protocol: "hlrc", gossip: true,
			wantErr: []string{"hlrc", "Gossip"}},
		{name: "the full scaled machine", procs: 256, protocol: "erc",
			topology: "fattree", barrier: "tree", gossip: true},
		{name: "race check", raceCheck: true},
		{name: "race check at word granularity", raceCheck: true, raceGran: "word"},
		{name: "race check at page granularity", raceCheck: true, raceGran: "page"},
		{name: "race granularity requires race check", raceGran: "page",
			wantErr: []string{"RaceGranularity", "RaceCheck"}},
		{name: "unknown race granularity", raceCheck: true, raceGran: "byte",
			wantErr: []string{"race granularity", "byte", "word or page"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := dsm.DefaultConfig()
			if tc.procs != 0 {
				cfg.Procs = tc.procs
			}
			cfg.Protocol = tc.protocol
			cfg.GCThreshold = tc.gcThreshold
			cfg.EagerRC = tc.eagerRC
			cfg.Net.Topology = tc.topology
			cfg.Net.FatTreeRadix = tc.radix
			cfg.Barrier = tc.barrier
			cfg.BarrierFanout = tc.fanout
			cfg.Gossip = tc.gossip
			cfg.RaceCheck = tc.raceCheck
			cfg.RaceGranularity = tc.raceGran
			if tc.name == "hlrc rejects shared pf-heap gc" {
				cfg.PfHeapSharedGC = true
			}
			err := validateMachine(cfg)
			if len(tc.wantErr) == 0 {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error mentioning %q, got nil", tc.wantErr)
			}
			for _, want := range tc.wantErr {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q missing %q", err, want)
				}
			}
		})
	}
}
