// Command dsmrun runs one or more applications under one explicit
// configuration and prints their full measurement reports — the quickest
// way to explore one point of the design space.
//
// Usage:
//
//	dsmrun -app SOR [-procs 8] [-threads 1] [-prefetch]
//	       [-switch-miss] [-switch-sync] [-scale unit|small|paper]
//	       [-protocol lrc|erc|hlrc|adp] [-home-policy static|firsttouch|migrate]
//	       [-gc-threshold N]
//	       [-topology single|fattree] [-fattree-radix N]
//	       [-barrier central|tree] [-barrier-fanout N]
//	       [-gossip] [-gossip-fanout N] [-gossip-seed N]
//	       [-throttle N] [-verify] [-workers N]
//	       [-loss P] [-dup P] [-fault-seed N] [-trace out.json]
//	       [-race-check] [-race-granularity word|page]
//
// -protocol selects the coherence backend from the protocol registry
// (default lrc, the TreadMarks baseline). Unknown names and knob
// combinations the backend cannot honor (e.g. hlrc with -gc-threshold,
// which only the diff-based backends use) are rejected up front — as are
// machine shapes the simulator cannot build, like a fat tree over a
// non-power-of-two -procs.
//
// -topology, -barrier and -gossip select the scalable-machine pieces (the
// nodescale experiment's configuration): a multi-switch fat tree, the
// combining-tree barrier, and gossip write-notice dissemination for the
// diff-based protocols. The defaults — single switch, centralized barrier,
// no gossip — are the paper's machine, byte-identical to every earlier
// version of the simulator.
//
// A nonzero -loss or -dup enables deterministic fault injection (seeded by
// -fault-seed) and automatically switches the protocol onto its reliable
// ack/retransmit transport; the report then includes the transport's
// recovery counters.
//
// -race-check runs the application under the deterministic happens-before
// race detector: every shared access is checked against the ordering
// induced by Lock/Unlock and Barrier, and the first conflicting unordered
// pair aborts the run (exit 1) with a structured report naming both access
// sites. Checking charges no simulated time, so a clean checked run prints
// byte-identical output to an unchecked one. -race-granularity picks the
// conflict unit: word (8-byte, the default) or page (whole coherence pages,
// which also flags false sharing). Besides the eight applications, -app
// accepts the intentionally-racy fixtures RACY, RACY-STALE and RACY-EXEMPT
// (never part of "all") for exercising the detector.
//
// -trace streams the run's event bus as Chrome trace_event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing: one track per simulated
// processor plus a network track. Same seed, same trace — byte for byte.
//
// -app accepts a single name, a comma-separated list, or "all". With more
// than one application the independent simulations fan out over a worker
// pool (-workers, default GOMAXPROCS) and the reports print in the
// requested order; each simulation stays single-threaded and
// deterministic, so the reports are identical for any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"godsm/dsm"
	"godsm/internal/apps"
	"godsm/internal/event"
	"godsm/internal/netsim"
	"godsm/internal/proto"
	"godsm/internal/sim"
)

func main() {
	app := flag.String("app", "SOR", "application name(s): FFT, LU-NCONT, LU-CONT, OCEAN, RADIX, SOR, WATER-NSQ, WATER-SP; comma-separated list or \"all\"")
	procs := flag.Int("procs", 8, "simulated processors")
	threads := flag.Int("threads", 1, "user-level threads per processor")
	prefetch := flag.Bool("prefetch", false, "execute inserted prefetches")
	swMiss := flag.Bool("switch-miss", false, "switch threads on remote misses")
	swSync := flag.Bool("switch-sync", false, "switch threads on synchronization stalls")
	scale := flag.String("scale", "small", "input scale: unit, small or paper")
	protocol := flag.String("protocol", "", "coherence protocol: "+strings.Join(dsm.Protocols(), ", ")+" (default lrc)")
	homePolicy := flag.String("home-policy", "", "hlrc page-home assignment: "+strings.Join(dsm.HomePolicies(), ", ")+" (default static)")
	gcThreshold := flag.Int64("gc-threshold", 0, "diff-GC trigger in bytes at barriers, diff-based protocols only (0 = off)")
	topology := flag.String("topology", "", "interconnect topology: single (default, the paper's one-switch LAN) or fattree")
	fatTreeRadix := flag.Int("fattree-radix", 0, "fat-tree downward ports per switch, a power of two >= 2 (0 = default)")
	barrier := flag.String("barrier", "", "barrier algorithm: central (default) or tree (combining tree)")
	barrierFanout := flag.Int("barrier-fanout", 0, "combining-tree arity, >= 2 (0 = default)")
	gossip := flag.Bool("gossip", false, "disseminate write notices by gossip instead of erc's release broadcast (diff-based protocols only)")
	gossipFanout := flag.Int("gossip-fanout", 0, "peers per gossip round (0 = default)")
	gossipSeed := flag.Int64("gossip-seed", 0, "gossip peer-selection seed")
	throttle := flag.Int("throttle", 0, "drop every k-th prefetch (0 = off)")
	verify := flag.Bool("verify", false, "verify output against the sequential golden")
	kinds := flag.Bool("kinds", false, "print per-message-kind traffic table")
	tracePath := flag.String("trace", "", "write a Chrome/Perfetto trace_event JSON of the run to this file (single app only)")
	workers := flag.Int("workers", 0, "max simulations running concurrently (0 = GOMAXPROCS)")
	raceCheck := flag.Bool("race-check", false, "detect data races against the Lock/Barrier happens-before order (exit 1 on the first race)")
	raceGran := flag.String("race-granularity", "", "race-detector conflict unit: word (default) or page")
	loss := flag.Float64("loss", 0, "message loss probability (nonzero enables fault injection)")
	dup := flag.Float64("dup", 0, "message duplication probability")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection PRNG seed")
	flag.Parse()

	sc, err := apps.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}

	// Reject incoherent flag combinations up front rather than silently
	// running something the user did not ask for.
	if *procs < 1 {
		usageErr("-procs must be at least 1 (got %d)", *procs)
	}
	if *threads < 1 {
		usageErr("-threads must be at least 1 (got %d)", *threads)
	}
	if *loss < 0 || *loss > 1 {
		usageErr("-loss must be a probability in [0,1] (got %g)", *loss)
	}
	if *dup < 0 || *dup > 1 {
		usageErr("-dup must be a probability in [0,1] (got %g)", *dup)
	}
	faultsOn := *loss > 0 || *dup > 0
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["fault-seed"] && !faultsOn {
		usageErr("-fault-seed given but fault injection is off; set -loss or -dup (or drop -fault-seed)")
	}
	// Reject dependent knobs whose master switch is off: silently ignoring
	// them would run a different machine than the user asked for.
	if set["fattree-radix"] && *topology != "fattree" {
		usageErr("-fattree-radix given but -topology is not fattree")
	}
	if set["barrier-fanout"] && *barrier != "tree" {
		usageErr("-barrier-fanout given but -barrier is not tree")
	}
	if (set["gossip-fanout"] || set["gossip-seed"]) && !*gossip {
		usageErr("gossip knobs given but -gossip is off")
	}
	if set["race-granularity"] && !*raceCheck {
		usageErr("-race-granularity given but -race-check is off")
	}
	if set["home-policy"] && *protocol != "hlrc" {
		usageErr("-home-policy given but -protocol is not hlrc (adp keeps homes static and adapts per-page modes instead)")
	}
	if faultsOn && *faultSeed == 0 {
		usageErr("-fault-seed 0 is reserved (it reads as unset); pick a nonzero seed")
	}
	var names []string
	if *app == "all" {
		for _, spec := range apps.All {
			names = append(names, spec.Name)
		}
	} else {
		for _, a := range strings.Split(*app, ",") {
			names = append(names, strings.TrimSpace(a))
		}
	}
	for _, name := range names {
		if _, err := apps.ByName(name); err != nil {
			fatal(err)
		}
	}

	cfg := dsm.DefaultConfig()
	cfg.Procs = *procs
	cfg.ThreadsPerProc = *threads
	cfg.Prefetch = *prefetch
	cfg.SwitchOnMiss = *swMiss
	cfg.SwitchOnSync = *swSync || *threads > 1
	cfg.Protocol = *protocol
	cfg.HomePolicy = *homePolicy
	cfg.GCThreshold = *gcThreshold
	cfg.ThrottlePf = *throttle
	cfg.Net.Topology = *topology
	cfg.Net.FatTreeRadix = *fatTreeRadix
	cfg.Barrier = *barrier
	cfg.BarrierFanout = *barrierFanout
	cfg.Gossip = *gossip
	cfg.GossipFanout = *gossipFanout
	cfg.GossipSeed = *gossipSeed
	cfg.RaceCheck = *raceCheck
	cfg.RaceGranularity = *raceGran
	if err := validateMachine(cfg); err != nil {
		usageErr("%v", err)
	}
	if faultsOn {
		cfg.Net.Faults = dsm.FaultPlan{Seed: *faultSeed, Loss: *loss, Dup: *dup}
	}

	// Open the trace file before simulating anything: an unwritable path is
	// a usage error, not something to discover after minutes of simulation.
	var traceFile *os.File
	if *tracePath != "" {
		if len(names) != 1 {
			usageErr("-trace needs a single -app (one trace file describes one run)")
		}
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			usageErr("-trace: %v", err)
		}
	}

	if len(names) == 1 {
		runOne(names[0], cfg, sc, *verify, *kinds, traceFile)
		return
	}

	// Fan the independent runs out over a bounded worker pool; print the
	// reports in the requested order as they complete.
	pool := *workers
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, pool)
	type result struct {
		sys  *dsm.System
		rep  *dsm.Report
		err  error
		done chan struct{}
	}
	results := make([]*result, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		results[i] = &result{done: make(chan struct{})}
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			r := results[i]
			defer close(r.done)
			sem <- struct{}{}
			defer func() { <-sem }()
			spec, err := apps.ByName(name)
			if err != nil {
				r.err = err
				return
			}
			sys := dsm.NewSystem(cfg)
			inst := spec.Build(sys, apps.Options{Scale: sc, Verify: *verify})
			rep, err := runChecked(sys, inst.Run)
			if err != nil {
				r.err = fmt.Errorf("%s: %w", name, err)
				return
			}
			if err := inst.Err(); err != nil {
				r.err = fmt.Errorf("%s: %w", name, err)
				return
			}
			r.sys, r.rep = sys, rep
		}(i, name)
	}
	for i, name := range names {
		r := results[i]
		<-r.done
		if r.err != nil {
			fatal(r.err)
		}
		if i > 0 {
			fmt.Println()
		}
		printReport(name, r.rep)
		if *kinds {
			printKinds(r.sys)
		}
	}
	wg.Wait()
}

// runOne runs the single-application path, optionally streaming the event
// bus to a Perfetto trace file.
func runOne(name string, cfg dsm.Config, sc apps.Scale, verify, kinds bool, traceFile *os.File) {
	spec, err := apps.ByName(name)
	if err != nil {
		fatal(err)
	}
	sys := dsm.NewSystem(cfg)

	var tw *event.TraceWriter
	if traceFile != nil {
		tw = event.NewTraceWriter(traceFile)
		sys.K.Bus().Subscribe(tw)
	}

	inst := spec.Build(sys, apps.Options{Scale: sc, Verify: verify})
	rep, err := runChecked(sys, inst.Run)
	if err != nil {
		fatal(err)
	}
	if err := inst.Err(); err != nil {
		fatal(err)
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			fatal(fmt.Errorf("writing trace: %w", err))
		}
		fmt.Fprintf(os.Stderr, "dsmrun: trace written to %s (open at ui.perfetto.dev)\n", traceFile.Name())
	}
	printReport(name, rep)
	if kinds {
		printKinds(sys)
	}
}

// runChecked calls sys.Run, converting the race detector's *dsm.RaceError
// panic into an error so a detected race prints as its structured two-site
// report (and exits 1) instead of a stack trace.
func runChecked(sys *dsm.System, body func(*dsm.Env)) (rep *dsm.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			re, ok := r.(*dsm.RaceError)
			if !ok {
				panic(r)
			}
			err = re
		}
	}()
	return sys.Run(body), nil
}

// printKinds prints the per-message-kind traffic table (whole run,
// including any post-measurement verification traffic).
func printKinds(sys *dsm.System) {
	fmt.Println("traffic by message kind:")
	for k := netsim.Kind(0); k < netsim.MaxKinds; k++ {
		msgs, bytes := sys.Net.KindStats(k)
		if msgs == 0 {
			continue
		}
		fmt.Printf("  %-12s %8d msgs %10d KB\n", proto.KindName(k), msgs, bytes/1024)
	}
}

func printReport(app string, r *dsm.Report) {
	fmt.Printf("%s: %d procs x %d threads, elapsed %d us\n",
		app, r.Procs, r.Threads, r.Elapsed/sim.Microsecond)
	fmt.Println("breakdown (average over processors):")
	for _, c := range []sim.Category{dsm.CatBusy, dsm.CatDSM, dsm.CatMemIdle,
		dsm.CatSyncIdle, dsm.CatPrefetchOv, dsm.CatMTOv} {
		pct := r.Breakdown.Normalized(r.Elapsed)[c]
		fmt.Printf("  %-24s %8d us  %5.1f%%\n", c, r.Breakdown.Cat[c]/sim.Microsecond, pct)
	}
	n := r.Sum()
	fmt.Printf("memory:   %d remote misses (avg %d us), %d prefetch-cache hits\n",
		n.Misses, r.AvgMissLatency()/sim.Microsecond, n.CacheHits)
	fmt.Printf("sync:     %d remote lock acquires, %d local, %d barrier arrivals\n",
		n.RemoteLockAcqs, n.LocalLockAcqs, n.BarrierArrives)
	fmt.Printf("traffic:  %d messages, %d KB, %d drops\n",
		r.MsgsTotal, r.BytesTotal/1024, r.Drops)
	if n.PfCalls > 0 {
		fmt.Printf("prefetch: %d calls (%.1f%% unnecessary), %d messages, coverage %.1f%%\n",
			n.PfCalls, r.UnnecessaryPfPct(), n.PfMsgs, r.CoverageFactor())
		fmt.Printf("          outcomes: %d hit, %d late, %d invalidated, %d not prefetched\n",
			n.FaultPfHit, n.FaultPfLate, n.FaultPfInvalided, n.FaultNoPf)
	}
	if r.Threads > 1 {
		fmt.Printf("threads:  %d context switches, avg run length %d us, avg stall %d us\n",
			n.CtxSwitches, r.AvgRunLength()/sim.Microsecond, r.AvgStall()/sim.Microsecond)
	}
	fmt.Printf("protocol: %d twins, %d diffs made, %d diffs applied\n",
		n.TwinsMade, n.DiffsMade, n.DiffsApplied)
	if n.HomeFlushes+n.HomeFetches > 0 {
		fmt.Printf("home:     %d diff flushes (%d KB), %d page fetches (%d KB)\n",
			n.HomeFlushes, n.HomeFlushBytes/1024, n.HomeFetches, n.HomeFetchBytes/1024)
	}
	if n.HomeMigrations+n.ModeToHome+n.ModeToDiff > 0 {
		fmt.Printf("adaptive: %d home migrations (%d KB), %d pages to home mode, %d to diff mode\n",
			n.HomeMigrations, n.HomeMigrateBytes/1024, n.ModeToHome, n.ModeToDiff)
	}
	if n.Retransmits+n.Timeouts+n.AcksSent+n.DupSuppressed > 0 {
		fmt.Printf("transport: %d retransmits (%d timeouts, max RTO %d ms), %d acks, %d duplicates suppressed, %d/%d pf req/reply dropped\n",
			n.Retransmits, n.Timeouts, n.MaxBackoff/sim.Millisecond,
			n.AcksSent, n.DupSuppressed, n.PfReqDropped, n.PfReplyDropped)
	}
}

// validateMachine checks the machine- and protocol-selection flags before
// anything simulates: -protocol must name a registered backend, the backend
// must accept the knob combination (hlrc, for example, has no diff GC, so
// it rejects a nonzero -gc-threshold), and the machine must be buildable —
// a fat tree needs a power-of-two -procs, a combining tree an arity of at
// least 2. Split from main so the usage-error table test can exercise it
// directly.
func validateMachine(cfg dsm.Config) error {
	return dsm.ValidateMachineConfig(cfg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmrun:", err)
	os.Exit(1)
}

// usageErr reports a command-line usage error and exits with status 2,
// pointing at -help rather than dumping the full flag table.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dsmrun: %s\n", fmt.Sprintf(format, args...))
	fmt.Fprintln(os.Stderr, "run dsmrun -help for usage")
	os.Exit(2)
}
