// Command dsmrun runs one or more applications under one explicit
// configuration and prints their full measurement reports — the quickest
// way to explore one point of the design space.
//
// Usage:
//
//	dsmrun -app SOR [-procs 8] [-threads 1] [-prefetch]
//	       [-switch-miss] [-switch-sync] [-scale unit|small|paper]
//	       [-throttle N] [-verify] [-workers N]
//	       [-loss P] [-dup P] [-fault-seed N]
//
// A nonzero -loss or -dup enables deterministic fault injection (seeded by
// -fault-seed) and automatically switches the protocol onto its reliable
// ack/retransmit transport; the report then includes the transport's
// recovery counters.
//
// -app accepts a single name, a comma-separated list, or "all". With more
// than one application the independent simulations fan out over a worker
// pool (-workers, default GOMAXPROCS) and the reports print in the
// requested order; each simulation stays single-threaded and
// deterministic, so the reports are identical for any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"godsm/dsm"
	"godsm/internal/apps"
	"godsm/internal/netsim"
	"godsm/internal/proto"
	"godsm/internal/sim"
)

func main() {
	app := flag.String("app", "SOR", "application name(s): FFT, LU-NCONT, LU-CONT, OCEAN, RADIX, SOR, WATER-NSQ, WATER-SP; comma-separated list or \"all\"")
	procs := flag.Int("procs", 8, "simulated processors")
	threads := flag.Int("threads", 1, "user-level threads per processor")
	prefetch := flag.Bool("prefetch", false, "execute inserted prefetches")
	swMiss := flag.Bool("switch-miss", false, "switch threads on remote misses")
	swSync := flag.Bool("switch-sync", false, "switch threads on synchronization stalls")
	scale := flag.String("scale", "small", "input scale: unit, small or paper")
	throttle := flag.Int("throttle", 0, "drop every k-th prefetch (0 = off)")
	verify := flag.Bool("verify", false, "verify output against the sequential golden")
	kinds := flag.Bool("kinds", false, "print per-message-kind traffic table")
	traceN := flag.Int("trace", 0, "print the last N protocol events (0 = off, single app only)")
	workers := flag.Int("workers", 0, "max simulations running concurrently (0 = GOMAXPROCS)")
	loss := flag.Float64("loss", 0, "message loss probability (nonzero enables fault injection)")
	dup := flag.Float64("dup", 0, "message duplication probability")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection PRNG seed")
	flag.Parse()

	sc, err := apps.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	var names []string
	if *app == "all" {
		for _, spec := range apps.All {
			names = append(names, spec.Name)
		}
	} else {
		for _, a := range strings.Split(*app, ",") {
			names = append(names, strings.TrimSpace(a))
		}
	}
	for _, name := range names {
		if _, err := apps.ByName(name); err != nil {
			fatal(err)
		}
	}

	cfg := dsm.DefaultConfig()
	cfg.Procs = *procs
	cfg.ThreadsPerProc = *threads
	cfg.Prefetch = *prefetch
	cfg.SwitchOnMiss = *swMiss
	cfg.SwitchOnSync = *swSync || *threads > 1
	cfg.ThrottlePf = *throttle
	if *loss > 0 || *dup > 0 {
		cfg.Net.Faults = dsm.FaultPlan{Seed: *faultSeed, Loss: *loss, Dup: *dup}
	}

	if len(names) == 1 {
		runOne(names[0], cfg, sc, *verify, *kinds, *traceN)
		return
	}
	if *traceN > 0 {
		fatal(fmt.Errorf("-trace needs a single -app (the trace hook is global)"))
	}

	// Fan the independent runs out over a bounded worker pool; print the
	// reports in the requested order as they complete.
	pool := *workers
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, pool)
	type result struct {
		sys  *dsm.System
		rep  *dsm.Report
		err  error
		done chan struct{}
	}
	results := make([]*result, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		results[i] = &result{done: make(chan struct{})}
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			r := results[i]
			defer close(r.done)
			sem <- struct{}{}
			defer func() { <-sem }()
			spec, err := apps.ByName(name)
			if err != nil {
				r.err = err
				return
			}
			sys := dsm.NewSystem(cfg)
			inst := spec.Build(sys, apps.Options{Scale: sc, Verify: *verify})
			rep := sys.Run(inst.Run)
			if err := inst.Err(); err != nil {
				r.err = fmt.Errorf("%s: %w", name, err)
				return
			}
			r.sys, r.rep = sys, rep
		}(i, name)
	}
	for i, name := range names {
		r := results[i]
		<-r.done
		if r.err != nil {
			fatal(r.err)
		}
		if i > 0 {
			fmt.Println()
		}
		printReport(name, r.rep)
		if *kinds {
			printKinds(r.sys)
		}
	}
	wg.Wait()
}

// runOne preserves the single-application path, including the global
// protocol event trace that cannot run concurrently.
func runOne(name string, cfg dsm.Config, sc apps.Scale, verify, kinds bool, traceN int) {
	spec, err := apps.ByName(name)
	if err != nil {
		fatal(err)
	}
	sys := dsm.NewSystem(cfg)

	// Optional protocol event trace: a ring buffer of the last N events
	// (twin creation, interval close, notice intake, diff make/apply,
	// faults, lock and barrier traffic), stamped with virtual time.
	var ring []string
	if traceN > 0 {
		proto.Trace = func(node int, format string, args ...any) {
			ev := fmt.Sprintf("%10dus n%d %s",
				sys.K.Now()/sim.Microsecond, node, fmt.Sprintf(format, args...))
			ring = append(ring, ev)
			if len(ring) > traceN {
				ring = ring[1:]
			}
		}
		defer func() { proto.Trace = nil }()
	}

	inst := spec.Build(sys, apps.Options{Scale: sc, Verify: verify})
	rep := sys.Run(inst.Run)
	if err := inst.Err(); err != nil {
		fatal(err)
	}
	printReport(name, rep)
	if kinds {
		printKinds(sys)
	}
	if traceN > 0 {
		fmt.Printf("last %d protocol events:\n", len(ring))
		for _, ev := range ring {
			fmt.Println(" ", ev)
		}
	}
}

// printKinds prints the per-message-kind traffic table (whole run,
// including any post-measurement verification traffic).
func printKinds(sys *dsm.System) {
	fmt.Println("traffic by message kind:")
	for k := netsim.Kind(0); k < netsim.MaxKinds; k++ {
		msgs, bytes := sys.Net.KindStats(k)
		if msgs == 0 {
			continue
		}
		fmt.Printf("  %-12s %8d msgs %10d KB\n", proto.KindName(k), msgs, bytes/1024)
	}
}

func printReport(app string, r *dsm.Report) {
	fmt.Printf("%s: %d procs x %d threads, elapsed %d us\n",
		app, r.Procs, r.Threads, r.Elapsed/sim.Microsecond)
	fmt.Println("breakdown (average over processors):")
	for _, c := range []sim.Category{dsm.CatBusy, dsm.CatDSM, dsm.CatMemIdle,
		dsm.CatSyncIdle, dsm.CatPrefetchOv, dsm.CatMTOv} {
		pct := r.Breakdown.Normalized(r.Elapsed)[c]
		fmt.Printf("  %-24s %8d us  %5.1f%%\n", c, r.Breakdown.Cat[c]/sim.Microsecond, pct)
	}
	n := r.Sum()
	fmt.Printf("memory:   %d remote misses (avg %d us), %d prefetch-cache hits\n",
		n.Misses, r.AvgMissLatency()/sim.Microsecond, n.CacheHits)
	fmt.Printf("sync:     %d remote lock acquires, %d local, %d barrier arrivals\n",
		n.RemoteLockAcqs, n.LocalLockAcqs, n.BarrierArrives)
	fmt.Printf("traffic:  %d messages, %d KB, %d drops\n",
		r.MsgsTotal, r.BytesTotal/1024, r.Drops)
	if n.PfCalls > 0 {
		fmt.Printf("prefetch: %d calls (%.1f%% unnecessary), %d messages, coverage %.1f%%\n",
			n.PfCalls, r.UnnecessaryPfPct(), n.PfMsgs, r.CoverageFactor())
		fmt.Printf("          outcomes: %d hit, %d late, %d invalidated, %d not prefetched\n",
			n.FaultPfHit, n.FaultPfLate, n.FaultPfInvalided, n.FaultNoPf)
	}
	if r.Threads > 1 {
		fmt.Printf("threads:  %d context switches, avg run length %d us, avg stall %d us\n",
			n.CtxSwitches, r.AvgRunLength()/sim.Microsecond, r.AvgStall()/sim.Microsecond)
	}
	fmt.Printf("protocol: %d twins, %d diffs made, %d diffs applied\n",
		n.TwinsMade, n.DiffsMade, n.DiffsApplied)
	if n.Retransmits+n.Timeouts+n.AcksSent+n.DupSuppressed > 0 {
		fmt.Printf("transport: %d retransmits (%d timeouts, max RTO %d ms), %d acks, %d duplicates suppressed, %d/%d pf req/reply dropped\n",
			n.Retransmits, n.Timeouts, n.MaxBackoff/sim.Millisecond,
			n.AcksSent, n.DupSuppressed, n.PfReqDropped, n.PfReplyDropped)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmrun:", err)
	os.Exit(1)
}
