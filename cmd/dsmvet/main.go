// Command dsmvet is the repo's determinism-and-protocol-invariant checker:
// a multichecker over the six analyzers in internal/analysis, in the
// spirit of golang.org/x/tools/go/analysis/multichecker but built on the
// in-tree framework so it needs no module downloads.
//
// Usage:
//
//	go run ./cmd/dsmvet ./...
//	go run ./cmd/dsmvet ./internal/proto
//
// It prints one line per finding and exits 1 when there are any. Suppress
// an audited exception with a trailing or preceding comment:
//
//	start := time.Now() //dsmvet:allow walltime — report timing only
//
// Test files (_test.go) are not swept: the invariants bind simulation
// code; tests may use wall clocks and ad-hoc randomness freely.
package main

import (
	"flag"
	"fmt"
	"os"

	"godsm/internal/analysis/framework"
	"godsm/internal/analysis/suite"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dsmvet [-list] <packages>   (e.g. dsmvet ./...)\n\nAnalyzers:\n")
		printAnalyzers(os.Stderr)
	}
	flag.Parse()

	if *list {
		printAnalyzers(os.Stdout)
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := framework.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	diags, err := suite.Check(root, patterns...)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func printAnalyzers(w *os.File) {
	for _, u := range suite.Units() {
		fmt.Fprintf(w, "  %-15s %s\n", u.Analyzer.Name, u.Analyzer.Doc)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmvet:", err)
	os.Exit(2)
}
