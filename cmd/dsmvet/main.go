// Command dsmvet is the repo's determinism-and-protocol-invariant checker:
// a multichecker over the seven analyzers in internal/analysis, in the
// spirit of golang.org/x/tools/go/analysis/multichecker but built on the
// in-tree framework so it needs no module downloads.
//
// Usage:
//
//	go run ./cmd/dsmvet ./...
//	go run ./cmd/dsmvet ./internal/proto
//	go run ./cmd/dsmvet -json -github ./...
//
// It prints one line per finding and exits 1 when there are any. -json
// switches the report to a machine-readable JSON array (one object per
// finding, paths relative to the module root); -github additionally emits
// GitHub Actions `::error` workflow commands so findings annotate the lines
// they bind to in pull-request diffs. The two flags compose: CI uses both,
// keeping the JSON artifact and the annotations from one run. Suppress an
// audited exception with a trailing or preceding comment:
//
//	start := time.Now() //dsmvet:allow walltime — report timing only
//
// Test files (_test.go) are not swept: the invariants bind simulation
// code; tests may use wall clocks and ad-hoc randomness freely.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"godsm/internal/analysis/framework"
	"godsm/internal/analysis/suite"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	jsonOut := flag.Bool("json", false, "report findings as a JSON array on stdout")
	github := flag.Bool("github", false, "also emit GitHub Actions ::error annotations")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dsmvet [-list] [-json] [-github] <packages>   (e.g. dsmvet ./...)\n\nAnalyzers:\n")
		printAnalyzers(os.Stderr)
	}
	flag.Parse()

	if *list {
		printAnalyzers(os.Stdout)
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := framework.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	diags, err := suite.Check(root, patterns...)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		writeJSON(os.Stdout, root, diags)
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if *github {
		for _, d := range diags {
			// Workflow-command annotation: GitHub attaches it to the
			// file/line in the PR diff. The message is single-line by
			// construction (analyzers report one-sentence findings).
			fmt.Printf("::error file=%s,line=%d,col=%d,title=dsmvet %s::%s\n",
				relPath(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// jsonFinding is the machine-readable shape of one diagnostic. File is
// relative to the module root so the output is stable across checkouts.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w *os.File, root string, diags []framework.Diagnostic) {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			File:     relPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

// relPath renders a diagnostic path relative to the module root with
// forward slashes (the form GitHub annotations and diff tools expect),
// falling back to the absolute path if it is outside the root.
func relPath(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return filepath.ToSlash(rel)
}

func printAnalyzers(w *os.File) {
	for _, u := range suite.Units() {
		fmt.Fprintf(w, "  %-15s %s\n", u.Analyzer.Name, u.Analyzer.Doc)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmvet:", err)
	os.Exit(2)
}
