module godsm

go 1.24
