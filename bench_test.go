// Package godsm's top-level benchmarks regenerate every artifact of the
// paper's evaluation as testing.B benchmarks, one per table and figure:
//
//	BenchmarkFig1   — baseline execution-time breakdown
//	BenchmarkFig2   — prefetching vs original
//	BenchmarkTable1 — prefetching statistics
//	BenchmarkFig3   — outcome of the original remote misses
//	BenchmarkFig4   — multithreading with 2/4/8 threads
//	BenchmarkTable2 — multithreading statistics
//	BenchmarkFig5   — combined configurations
//
// Wall-clock ns/op measures the simulator; the paper's quantities are
// attached as custom metrics in virtual microseconds (vus) or percentages.
// Benchmarks run at unit scale so the full suite stays fast; use
// cmd/dsmbench for small- or paper-scale runs.
package godsm

import (
	"fmt"
	"runtime"
	"testing"

	"godsm/dsm"
	"godsm/internal/apps"
	"godsm/internal/harness"
	"godsm/internal/sim"
)

const benchProcs = 8

func benchSession() *harness.Session {
	return harness.NewSession(harness.Options{Procs: benchProcs, Scale: apps.Unit})
}

// runOnce simulates app/variant once and returns the report.
func runOnce(b *testing.B, s *harness.Session, app string, v harness.Variant) *dsm.Report {
	b.Helper()
	rep, err := s.Run(app, v)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// fresh runs app/variant without the session cache (for timing loops).
func fresh(b *testing.B, app string, v harness.Variant) *dsm.Report {
	b.Helper()
	s := benchSession()
	return runOnce(b, s, app, v)
}

func vus(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

func appNames() []string {
	names := make([]string, len(apps.All))
	for i, a := range apps.All {
		names[i] = a.Name
	}
	return names
}

// BenchmarkFig1 regenerates Figure 1: the baseline breakdown per app.
func BenchmarkFig1(b *testing.B) {
	for _, app := range appNames() {
		b.Run(app, func(b *testing.B) {
			var rep *dsm.Report
			for i := 0; i < b.N; i++ {
				rep = fresh(b, app, harness.VarO)
			}
			norm := rep.Breakdown.Normalized(rep.Elapsed)
			b.ReportMetric(vus(rep.Elapsed), "vus-elapsed")
			b.ReportMetric(norm[dsm.CatBusy], "%busy")
			b.ReportMetric(norm[dsm.CatDSM], "%dsm")
			b.ReportMetric(norm[dsm.CatMemIdle], "%mem-idle")
			b.ReportMetric(norm[dsm.CatSyncIdle], "%sync-idle")
		})
	}
}

// BenchmarkFig2 regenerates Figure 2: prefetching speedup per app.
func BenchmarkFig2(b *testing.B) {
	for _, app := range appNames() {
		b.Run(app, func(b *testing.B) {
			var repO, repP *dsm.Report
			for i := 0; i < b.N; i++ {
				s := benchSession()
				repO = runOnce(b, s, app, harness.VarO)
				repP = runOnce(b, s, app, harness.VarP)
			}
			b.ReportMetric(repP.Speedup(repO), "speedup-P")
			b.ReportMetric(100*float64(repP.Elapsed)/float64(repO.Elapsed), "%norm-P")
			b.ReportMetric(repP.Breakdown.Normalized(repO.Elapsed)[dsm.CatPrefetchOv], "%pf-overhead")
		})
	}
}

// BenchmarkTable1 regenerates Table 1: prefetching statistics per app.
func BenchmarkTable1(b *testing.B) {
	for _, app := range appNames() {
		b.Run(app, func(b *testing.B) {
			var repO, repP *dsm.Report
			for i := 0; i < b.N; i++ {
				s := benchSession()
				repO = runOnce(b, s, app, harness.VarO)
				repP = runOnce(b, s, app, harness.VarP)
			}
			b.ReportMetric(repP.UnnecessaryPfPct(), "%unnecessary")
			b.ReportMetric(repP.CoverageFactor(), "%coverage")
			b.ReportMetric(float64(repO.TotalMisses()), "misses-O")
			b.ReportMetric(float64(repP.TotalMisses()), "misses-P")
			b.ReportMetric(vus(repO.AvgMissLatency()), "vus-avgmiss-O")
			b.ReportMetric(vus(repP.AvgMissLatency()), "vus-avgmiss-P")
			b.ReportMetric(float64(repO.BytesTotal)/1024, "traffic-KB-O")
			b.ReportMetric(float64(repP.BytesTotal)/1024, "traffic-KB-P")
		})
	}
}

// BenchmarkFig3 regenerates Figure 3: per-app breakdown of what happened to
// the original remote misses under prefetching.
func BenchmarkFig3(b *testing.B) {
	for _, app := range appNames() {
		b.Run(app, func(b *testing.B) {
			var rep *dsm.Report
			for i := 0; i < b.N; i++ {
				rep = fresh(b, app, harness.VarP)
			}
			n := rep.Sum()
			tot := float64(n.FaultNoPf + n.FaultPfHit + n.FaultPfLate + n.FaultPfInvalided)
			if tot == 0 {
				tot = 1
			}
			b.ReportMetric(100*float64(n.FaultNoPf)/tot, "%no-pf")
			b.ReportMetric(100*float64(n.FaultPfInvalided)/tot, "%pf-invalidated")
			b.ReportMetric(100*float64(n.FaultPfLate)/tot, "%pf-late")
			b.ReportMetric(100*float64(n.FaultPfHit)/tot, "%pf-hit")
		})
	}
}

// BenchmarkFig4 regenerates Figure 4: multithreading configurations.
func BenchmarkFig4(b *testing.B) {
	for _, app := range appNames() {
		for _, v := range []harness.Variant{harness.Var2T, harness.Var4T, harness.Var8T} {
			b.Run(fmt.Sprintf("%s/%s", app, v), func(b *testing.B) {
				var repO, rep *dsm.Report
				for i := 0; i < b.N; i++ {
					s := benchSession()
					repO = runOnce(b, s, app, harness.VarO)
					rep = runOnce(b, s, app, v)
				}
				b.ReportMetric(100*float64(rep.Elapsed)/float64(repO.Elapsed), "%norm")
				b.ReportMetric(vus(rep.Elapsed), "vus-elapsed")
			})
		}
	}
}

// BenchmarkTable2 regenerates Table 2: multithreading statistics.
func BenchmarkTable2(b *testing.B) {
	for _, app := range appNames() {
		for _, v := range []harness.Variant{harness.VarO, harness.Var2T, harness.Var4T, harness.Var8T} {
			b.Run(fmt.Sprintf("%s/%s", app, v), func(b *testing.B) {
				var rep *dsm.Report
				for i := 0; i < b.N; i++ {
					rep = fresh(b, app, v)
				}
				n := rep.Sum()
				b.ReportMetric(vus(rep.AvgStall()), "vus-avg-stall")
				b.ReportMetric(vus(rep.AvgRunLength()), "vus-avg-run")
				b.ReportMetric(float64(rep.MsgsTotal), "messages")
				b.ReportMetric(float64(rep.BytesTotal)/1024, "volume-KB")
				b.ReportMetric(float64(n.Misses), "remote-misses")
				b.ReportMetric(float64(n.RemoteLockAcqs), "remote-locks")
				b.ReportMetric(float64(n.BarrierArrives), "barrier-arrivals")
			})
		}
	}
}

// BenchmarkFig5 regenerates Figure 5: the combined configurations.
func BenchmarkFig5(b *testing.B) {
	variants := []harness.Variant{
		harness.VarP, harness.Var2TP, harness.Var4TP, harness.Var8TP,
	}
	for _, app := range appNames() {
		for _, v := range variants {
			b.Run(fmt.Sprintf("%s/%s", app, v), func(b *testing.B) {
				var repO, rep *dsm.Report
				for i := 0; i < b.N; i++ {
					s := benchSession()
					repO = runOnce(b, s, app, harness.VarO)
					rep = runOnce(b, s, app, v)
				}
				b.ReportMetric(100*float64(rep.Elapsed)/float64(repO.Elapsed), "%norm")
			})
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// protocol events per wall second on a communication-heavy workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := fresh(b, "SOR", harness.VarO)
		b.ReportMetric(float64(rep.MsgsTotal), "messages")
	}
}

// BenchmarkRunAllWorkers measures the parallel experiment runner: the full
// paper grid (all apps × all eight variants) at unit scale, sequentially
// and fanned out over GOMAXPROCS workers. On a multi-core machine the
// workers=N case should approach N× the sequential throughput; the results
// themselves are identical (see harness.TestCrossWorkerDeterminism).
func BenchmarkRunAllWorkers(b *testing.B) {
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := harness.NewSession(harness.Options{
					Procs: benchProcs, Scale: apps.Unit, Workers: workers})
				if err := s.RunAll(s.Grid(harness.AllVariants)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
