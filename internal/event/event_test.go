package event

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRingBounded(t *testing.T) {
	var now int64
	b := NewBus(func() int64 { return now })
	for i := 0; i < ringSize+40; i++ {
		now = int64(i)
		b.Emit(Twin(0, int64(i)))
	}
	got := b.Recent()
	if len(got) != ringSize {
		t.Fatalf("Recent returned %d events, want %d", len(got), ringSize)
	}
	if got[0].Page != 40 || got[len(got)-1].Page != ringSize+39 {
		t.Fatalf("ring window wrong: first page %d, last page %d", got[0].Page, got[len(got)-1].Page)
	}
	for i := 1; i < len(got); i++ {
		if got[i].At < got[i-1].At {
			t.Fatalf("Recent not oldest-first at %d", i)
		}
	}
}

func TestRecentPartialFill(t *testing.T) {
	b := NewBus(func() int64 { return 7 })
	b.Emit(GCBegin(3))
	b.Emit(GCDone(3, 11))
	got := b.Recent()
	if len(got) != 2 {
		t.Fatalf("Recent returned %d events, want 2", len(got))
	}
	if got[0].Kind != KindGCBegin || got[1].Kind != KindGCDone {
		t.Fatalf("wrong events: %v", got)
	}
	if got[0].At != 7 {
		t.Fatalf("At not stamped: %d", got[0].At)
	}
}

type countSink struct{ n int }

func (c *countSink) Event(Event) { c.n++ }

func TestFanOut(t *testing.T) {
	b := NewBus(func() int64 { return 0 })
	a, c := &countSink{}, &countSink{}
	b.Subscribe(a)
	b.Subscribe(c)
	b.Emit(BarArrive(1, 0))
	b.Emit(BarRelease(1, 0, 5))
	if a.n != 2 || c.n != 2 {
		t.Fatalf("sinks saw %d and %d events, want 2 and 2", a.n, c.n)
	}
}

// Emission with no sinks subscribed must not allocate: it runs on the
// kernel's hottest path in every simulation, traced or not.
func TestEmitNoSinksZeroAlloc(t *testing.T) {
	b := NewBus(func() int64 { return 42 })
	fn := func() {}
	allocs := testing.AllocsPerRun(200, func() {
		b.Emit(Dispatch(1, fn))
		b.Emit(NetEnqueue(0, 1, 3, 128, 9))
		b.Emit(FaultRemote(0, 4, OutcomeNoPf, 2))
	})
	if allocs != 0 {
		t.Fatalf("Emit allocated %.1f times per run, want 0", allocs)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindNone; k < numKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("Kind %d has no name", k)
		}
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("out-of-range Kind string = %q", got)
	}
}

func TestEventStringDeterministic(t *testing.T) {
	e := LockGrant(2, 7, 1500)
	e.At = 123456
	a, b := e.String(), e.String()
	if a != b {
		t.Fatalf("String not stable: %q vs %q", a, b)
	}
	if !strings.Contains(a, "lock-grant") || !strings.Contains(a, "n2") {
		t.Fatalf("String missing fields: %q", a)
	}
}

func runTrace(t *testing.T) []byte {
	t.Helper()
	var now int64
	b := NewBus(func() int64 { return now })
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	b.Subscribe(tw)

	now = 1000
	b.Emit(Dispatch(1, nil)) // excluded from the trace
	b.Emit(NetEnqueue(0, 1, 2, 4096, 1))
	now = 2500
	b.Emit(FaultRemote(1, 3, OutcomePfLate, 1))
	now = 3789
	b.Emit(NetDeliver(0, 1, 2, 4096, 1))
	b.Emit(ThreadBlock(1, 0, 900))
	if err := tw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestTraceWriterJSON(t *testing.T) {
	out := runTrace(t)
	if !json.Valid(out) {
		t.Fatalf("trace is not valid JSON:\n%s", out)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
			Ts   string `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	// 4 instants (dispatch excluded) + 3 thread_name records (net, proc 0
	// is absent — only procs 1's events and the network track were seen).
	var instants, meta int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if instants != 4 {
		t.Errorf("instants = %d, want 4", instants)
	}
	if meta != 2 {
		t.Errorf("thread_name records = %d, want 2 (network, proc 1)", meta)
	}
	if doc.TraceEvents[0].Name != "net-enqueue" || doc.TraceEvents[0].Tid != 0 {
		t.Errorf("first event = %+v, want net-enqueue on tid 0", doc.TraceEvents[0])
	}
	if doc.TraceEvents[1].Name != "fault-remote" || doc.TraceEvents[1].Tid != 2 {
		t.Errorf("second event = %+v, want fault-remote on tid 2", doc.TraceEvents[1])
	}
	if doc.TraceEvents[1].Ts != "2.500" {
		t.Errorf("ts = %q, want %q", doc.TraceEvents[1].Ts, "2.500")
	}
}

func TestTraceWriterDeterministic(t *testing.T) {
	a := runTrace(t)
	b := runTrace(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("identical emissions produced different traces:\n%s\n----\n%s", a, b)
	}
}
