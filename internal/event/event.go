// Package event defines the simulator's typed event bus: a closed taxonomy
// of observable occurrences (kernel dispatches, network traffic, protocol
// actions, thread scheduling) that every layer emits through one Bus per
// kernel. Counters, traces and failure dumps are all derived from the same
// emissions, so they can never disagree.
//
// The taxonomy is closed on purpose: an Event is only constructed through
// the helper functions in this package (dsmvet's eventemit analyzer enforces
// this), so a Kind's operand layout is defined in exactly one place and
// every sink can rely on it.
//
// Determinism contract: events are emitted synchronously from kernel
// context, stamped with the kernel's virtual time, in dispatch order. A
// simulation is single-threaded, so for a fixed configuration and seed the
// emitted event sequence — and therefore anything derived from it — is
// byte-for-byte reproducible.
package event

import (
	"fmt"
	"reflect"
	"runtime"
)

// Kind identifies one event type in the closed taxonomy.
type Kind uint8

const (
	KindNone Kind = iota

	// Kernel: one per executed event-loop entry; timer arm/stop.
	KindDispatch
	KindTimerArm
	KindTimerStop

	// Network: message life cycle on the simulated LAN.
	KindNetEnqueue  // Send called: message handed to the network
	KindNetTransmit // delivery scheduled (Arg=arrival time, Aux=queueing)
	KindNetDeliver  // message arrived at its destination
	KindNetDrop     // message lost (Arg=size, Aux=drop reason)
	KindNetFault    // injected fault bent the message (Arg=fault reason)

	// Protocol: coherence actions at one node.
	KindFaultLocal    // fault served from local state (Arg=outcome)
	KindFaultRemote   // fault needing remote diffs (Arg=outcome, Aux=missing)
	KindFetchDone     // demand fetch completed (Arg=stall duration)
	KindDiffMake      // diff created from a twin (Arg=data bytes)
	KindDiffApply     // diff applied to the local frame (Arg=data bytes)
	KindTwin          // twin created for a first write
	KindIntervalClose // open interval closed (Seq=interval seq, Arg=pages)
	KindNoticeIn      // remote interval record taken in (Peer=creator)

	// Synchronization.
	KindLockLocal   // acquire satisfied locally (cached token or hand-off)
	KindLockRemote  // acquire went remote
	KindLockGrant   // remote grant arrived (Arg=stall duration)
	KindLockForward // forwarded request processed at the previous requester
	KindLockReturn  // token returned to its manager (NoTokenCache)
	KindBarArrive   // barrier arrival
	KindBarRelease  // barrier release reached this node (Arg=stall duration)

	// Prefetching.
	KindPfCall        // Prefetch() invoked
	KindPfUnnecessary // dropped after the cheap check
	KindPfThrottle    // dropped by ThrottlePf pacing
	KindPfIssue       // request messages sent (Arg=message count)
	KindPfReqDrop     // request lost in the network
	KindPfReplyDrop   // reply lost in the network (counted at the server)

	// Diff garbage collection.
	KindGCBegin // validation phase started
	KindGCFlush // records discarded at this node
	KindGCDone  // collection finished (Arg=elapsed)

	// Reliable transport.
	KindXpTimeout    // retransmission timer fired (Arg=consecutive retries)
	KindXpRetransmit // frame re-sent (Seq=frame seq, Arg=new RTO)
	KindXpAck        // pure ack sent
	KindXpDup        // duplicate frame suppressed (Seq=frame seq)

	// Thread scheduling.
	KindThreadSwitch // context switch charged (Aux=incoming thread)
	KindThreadBlock  // thread stalled (Arg=run length, Aux=thread)
	KindThreadResume // blocked thread became runnable (Aux=thread)

	// Home-based coherence (HLRC).
	KindHomeFlush // diff flushed to the page's home (Peer=home, Arg=data bytes)
	KindHomeFetch // whole page fetched from its home (Peer=home, Arg=bytes)

	// Multi-switch topologies and gossip dissemination. Neither kind is
	// emitted on the default single-switch, broadcast-notice path, so the
	// trace-JSON goldens are unaffected.
	KindNetHop     // message crossed one fat-tree link (Page=link, Arg=wait)
	KindGossipPush // gossip round pushed a notice batch (Arg=records, Aux=fanout)

	// Adaptive coherence. Only dynamic home policies and the "adp" backend
	// emit these, so static-protocol goldens are unaffected.
	KindHomeMigrate // page's home moved here (Peer=old home, Arg=bytes moved)
	KindModeSwitch  // page switched diff/home mode (Arg=1 to home, 0 to diff)

	numKinds
)

var kindNames = [numKinds]string{
	KindNone:          "none",
	KindDispatch:      "dispatch",
	KindTimerArm:      "timer-arm",
	KindTimerStop:     "timer-stop",
	KindNetEnqueue:    "net-enqueue",
	KindNetTransmit:   "net-transmit",
	KindNetDeliver:    "net-deliver",
	KindNetDrop:       "net-drop",
	KindNetFault:      "net-fault",
	KindFaultLocal:    "fault-local",
	KindFaultRemote:   "fault-remote",
	KindFetchDone:     "fetch-done",
	KindDiffMake:      "diff-make",
	KindDiffApply:     "diff-apply",
	KindTwin:          "twin",
	KindIntervalClose: "interval-close",
	KindNoticeIn:      "notice-in",
	KindLockLocal:     "lock-local",
	KindLockRemote:    "lock-remote",
	KindLockGrant:     "lock-grant",
	KindLockForward:   "lock-forward",
	KindLockReturn:    "lock-return",
	KindBarArrive:     "bar-arrive",
	KindBarRelease:    "bar-release",
	KindPfCall:        "pf-call",
	KindPfUnnecessary: "pf-unnecessary",
	KindPfThrottle:    "pf-throttle",
	KindPfIssue:       "pf-issue",
	KindPfReqDrop:     "pf-req-drop",
	KindPfReplyDrop:   "pf-reply-drop",
	KindGCBegin:       "gc-begin",
	KindGCFlush:       "gc-flush",
	KindGCDone:        "gc-done",
	KindXpTimeout:     "xp-timeout",
	KindXpRetransmit:  "xp-retransmit",
	KindXpAck:         "xp-ack",
	KindXpDup:         "xp-dup",
	KindThreadSwitch:  "thread-switch",
	KindThreadBlock:   "thread-block",
	KindThreadResume:  "thread-resume",
	KindHomeFlush:     "home-flush",
	KindHomeFetch:     "home-fetch",
	KindNetHop:        "net-hop",
	KindGossipPush:    "gossip-push",
	KindHomeMigrate:   "home-migrate",
	KindModeSwitch:    "mode-switch",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Fault outcomes (Arg of KindFaultLocal / KindFaultRemote), mirroring the
// paper's Figure 3 categories.
const (
	OutcomeNoPf        int64 = iota // page was never prefetched
	OutcomePfHit                    // all needed diffs were in the prefetch cache
	OutcomePfLate                   // prefetched, but replies had not (all) arrived
	OutcomePfInvalided              // prefetched, but new notices superseded it
)

// Drop reasons (Aux of KindNetDrop).
const (
	DropCongestion int64 = iota // unreliable message over the queueing threshold
	DropBrownout                // link brown-out window
	DropLoss                    // probabilistic injected loss
)

// Fault reasons (Arg of KindNetFault).
const (
	FaultJitter int64 = iota // reordering jitter added to the arrival
	FaultDup                 // duplicate copy created
	FaultStall               // NIC stall window delayed link occupancy
)

// Event is one occurrence on the bus. The operand fields are overloaded per
// Kind (see the constructor for each kind); unused fields are zero. Events
// are passed by value end to end so emission never allocates.
type Event struct {
	Kind    Kind
	MsgKind uint8 // netsim message kind, for Net*/Xp* events
	Node    int32 // acting node (the sender for Net* events); -1 if none
	Peer    int32 // other party: destination, peer, creator; -1 if none
	At      int64 // virtual time, stamped by the bus at emission
	Seq     uint64
	Page    int64 // page, lock or barrier id; -1 if none
	Arg     int64 // kind-specific operand
	Aux     int64 // second kind-specific operand
	Fn      any   // dispatched function (kernel kinds only)
}

// String renders the event for failure dumps: virtual time, kind, and the
// operands that are meaningful for the kind. The format is deterministic.
func (e Event) String() string {
	s := fmt.Sprintf("t=%-12d %-14s", e.At, e.Kind)
	switch e.Kind {
	case KindDispatch:
		return s + fmt.Sprintf(" seq=%-8d %s", e.Seq, FuncName(e.Fn))
	case KindTimerArm:
		return s + fmt.Sprintf(" at=%d %s", e.Arg, FuncName(e.Fn))
	case KindTimerStop:
		return s + " " + FuncName(e.Fn)
	case KindNetEnqueue, KindNetDeliver:
		return s + fmt.Sprintf(" %d->%d mk=%d size=%d seq=%d", e.Node, e.Peer, e.MsgKind, e.Arg, e.Seq)
	case KindNetTransmit:
		return s + fmt.Sprintf(" %d->%d mk=%d arrive=%d queue=%d", e.Node, e.Peer, e.MsgKind, e.Arg, e.Aux)
	case KindNetDrop:
		return s + fmt.Sprintf(" %d->%d mk=%d size=%d reason=%d", e.Node, e.Peer, e.MsgKind, e.Arg, e.Aux)
	case KindNetFault:
		return s + fmt.Sprintf(" %d->%d mk=%d reason=%d", e.Node, e.Peer, e.MsgKind, e.Arg)
	case KindNone,
		KindFaultLocal, KindFaultRemote, KindFetchDone,
		KindDiffMake, KindDiffApply, KindTwin, KindIntervalClose, KindNoticeIn,
		KindLockLocal, KindLockRemote, KindLockGrant, KindLockForward, KindLockReturn,
		KindBarArrive, KindBarRelease,
		KindPfCall, KindPfUnnecessary, KindPfThrottle, KindPfIssue, KindPfReqDrop, KindPfReplyDrop,
		KindGCBegin, KindGCFlush, KindGCDone,
		KindXpTimeout, KindXpRetransmit, KindXpAck, KindXpDup,
		KindThreadSwitch, KindThreadBlock, KindThreadResume,
		KindHomeFlush, KindHomeFetch, KindNetHop, KindGossipPush,
		KindHomeMigrate, KindModeSwitch:
		// Node-attributed kinds all render through the generic form below.
	default:
		panic(fmt.Sprintf("event: String: unhandled kind %d", uint8(e.Kind)))
	}
	s += fmt.Sprintf(" n%d", e.Node)
	if e.Peer >= 0 {
		s += fmt.Sprintf(" peer=%d", e.Peer)
	}
	if e.Page >= 0 {
		s += fmt.Sprintf(" id=%d", e.Page)
	}
	if e.Seq != 0 {
		s += fmt.Sprintf(" seq=%d", e.Seq)
	}
	if e.Arg != 0 {
		s += fmt.Sprintf(" arg=%d", e.Arg)
	}
	if e.Aux != 0 {
		s += fmt.Sprintf(" aux=%d", e.Aux)
	}
	return s
}

// FuncName resolves the name of an event callback for dumps. Resolution is
// lazy — only dump construction pays for it.
func FuncName(fn any) string {
	if fn == nil {
		return "?"
	}
	if f := runtime.FuncForPC(reflect.ValueOf(fn).Pointer()); f != nil {
		return f.Name()
	}
	return "?"
}

// Constructor helpers — the only sanctioned way to build an Event outside
// this package (enforced by dsmvet's eventemit analyzer). Each helper
// documents its kind's operand layout by construction.

// Dispatch records one kernel event-loop execution.
func Dispatch(seq uint64, fn any) Event {
	return Event{Kind: KindDispatch, Node: -1, Peer: -1, Page: -1, Seq: seq, Fn: fn}
}

// TimerArm records a timer being armed to fire at virtual time at.
func TimerArm(at int64, fn any) Event {
	return Event{Kind: KindTimerArm, Node: -1, Peer: -1, Page: -1, Arg: at, Fn: fn}
}

// TimerStop records a pending timer firing being cancelled.
func TimerStop(fn any) Event {
	return Event{Kind: KindTimerStop, Node: -1, Peer: -1, Page: -1, Fn: fn}
}

// NetEnqueue records a message handed to the network by src.
func NetEnqueue(src, dst int, mk uint8, size int, seq uint64) Event {
	return Event{Kind: KindNetEnqueue, MsgKind: mk, Node: int32(src), Peer: int32(dst),
		Page: -1, Seq: seq, Arg: int64(size)}
}

// NetTransmit records a message's delivery being scheduled: arrive is the
// arrival time, queueing the total link queueing delay it suffered.
func NetTransmit(src, dst int, mk uint8, arrive, queueing int64) Event {
	return Event{Kind: KindNetTransmit, MsgKind: mk, Node: int32(src), Peer: int32(dst),
		Page: -1, Arg: arrive, Aux: queueing}
}

// NetDeliver records a message arriving at dst.
func NetDeliver(src, dst int, mk uint8, size int, seq uint64) Event {
	return Event{Kind: KindNetDeliver, MsgKind: mk, Node: int32(src), Peer: int32(dst),
		Page: -1, Seq: seq, Arg: int64(size)}
}

// NetDrop records a message lost in the network for the given reason.
func NetDrop(src, dst int, mk uint8, size int, reason int64) Event {
	return Event{Kind: KindNetDrop, MsgKind: mk, Node: int32(src), Peer: int32(dst),
		Page: -1, Arg: int64(size), Aux: reason}
}

// NetFault records an injected fault bending (but not dropping) a message.
func NetFault(src, dst int, mk uint8, reason int64) Event {
	return Event{Kind: KindNetFault, MsgKind: mk, Node: int32(src), Peer: int32(dst),
		Page: -1, Arg: reason}
}

// FaultLocal records a page fault served without network traffic.
func FaultLocal(node int, page int64, outcome int64) Event {
	return Event{Kind: KindFaultLocal, Node: int32(node), Peer: -1, Page: page, Arg: outcome}
}

// FaultRemote records a page fault that must fetch missing diffs remotely.
func FaultRemote(node int, page int64, outcome int64, missing int) Event {
	return Event{Kind: KindFaultRemote, Node: int32(node), Peer: -1, Page: page,
		Arg: outcome, Aux: int64(missing)}
}

// FetchDone records a demand fetch completing after stalling for stall ns.
func FetchDone(node int, page int64, stall int64) Event {
	return Event{Kind: KindFetchDone, Node: int32(node), Peer: -1, Page: page, Arg: stall}
}

// DiffMake records a diff of bytes data bytes created from a twin.
func DiffMake(node int, page int64, bytes int) Event {
	return Event{Kind: KindDiffMake, Node: int32(node), Peer: -1, Page: page, Arg: int64(bytes)}
}

// DiffApply records a diff applied to the local frame.
func DiffApply(node int, page int64, bytes int) Event {
	return Event{Kind: KindDiffApply, Node: int32(node), Peer: -1, Page: page, Arg: int64(bytes)}
}

// Twin records a twin created for a first write since the page was clean.
func Twin(node int, page int64) Event {
	return Event{Kind: KindTwin, Node: int32(node), Peer: -1, Page: page}
}

// IntervalClose records the node's open interval closing with pages notices.
func IntervalClose(node int, seq int32, pages int) Event {
	return Event{Kind: KindIntervalClose, Node: int32(node), Peer: -1, Page: -1,
		Seq: uint64(seq), Arg: int64(pages)}
}

// NoticeIn records a remote interval record (from, seq) being taken in.
func NoticeIn(node, from int, seq int32, pages int) Event {
	return Event{Kind: KindNoticeIn, Node: int32(node), Peer: int32(from), Page: -1,
		Seq: uint64(seq), Arg: int64(pages)}
}

// LockLocal records a lock acquire satisfied without leaving the processor.
func LockLocal(node, lock int) Event {
	return Event{Kind: KindLockLocal, Node: int32(node), Peer: -1, Page: int64(lock)}
}

// LockRemote records a lock acquire going remote.
func LockRemote(node, lock int) Event {
	return Event{Kind: KindLockRemote, Node: int32(node), Peer: -1, Page: int64(lock)}
}

// LockGrant records a remote grant arriving after stall ns.
func LockGrant(node, lock int, stall int64) Event {
	return Event{Kind: KindLockGrant, Node: int32(node), Peer: -1, Page: int64(lock), Arg: stall}
}

// LockForward records a forwarded acquire processed at the previous requester.
func LockForward(node, lock, requester int) Event {
	return Event{Kind: KindLockForward, Node: int32(node), Peer: int32(requester), Page: int64(lock)}
}

// LockReturn records the token going back to its manager (NoTokenCache).
func LockReturn(node, lock int) Event {
	return Event{Kind: KindLockReturn, Node: int32(node), Peer: -1, Page: int64(lock)}
}

// BarArrive records a barrier arrival by node.
func BarArrive(node, barrier int) Event {
	return Event{Kind: KindBarArrive, Node: int32(node), Peer: -1, Page: int64(barrier)}
}

// BarRelease records the barrier release reaching node after stall ns.
func BarRelease(node, barrier int, stall int64) Event {
	return Event{Kind: KindBarRelease, Node: int32(node), Peer: -1, Page: int64(barrier), Arg: stall}
}

// PfCall records a Prefetch() invocation.
func PfCall(node int, page int64) Event {
	return Event{Kind: KindPfCall, Node: int32(node), Peer: -1, Page: page}
}

// PfUnnecessary records a prefetch dropped after the cheap check.
func PfUnnecessary(node int, page int64) Event {
	return Event{Kind: KindPfUnnecessary, Node: int32(node), Peer: -1, Page: page}
}

// PfThrottle records a prefetch discarded by ThrottlePf pacing.
func PfThrottle(node int, page int64) Event {
	return Event{Kind: KindPfThrottle, Node: int32(node), Peer: -1, Page: page}
}

// PfIssue records msgs prefetch request messages being sent for page.
func PfIssue(node int, page int64, msgs int) Event {
	return Event{Kind: KindPfIssue, Node: int32(node), Peer: -1, Page: page, Arg: int64(msgs)}
}

// PfReqDrop records a prefetch request lost in the network.
func PfReqDrop(node int, page int64) Event {
	return Event{Kind: KindPfReqDrop, Node: int32(node), Peer: -1, Page: page}
}

// PfReplyDrop records a prefetch reply lost in the network (at the server).
func PfReplyDrop(node int, page int64) Event {
	return Event{Kind: KindPfReplyDrop, Node: int32(node), Peer: -1, Page: page}
}

// GCBegin records the start of a node's GC validation phase.
func GCBegin(node int) Event {
	return Event{Kind: KindGCBegin, Node: int32(node), Peer: -1, Page: -1}
}

// GCFlush records collected records being discarded at node.
func GCFlush(node int) Event {
	return Event{Kind: KindGCFlush, Node: int32(node), Peer: -1, Page: -1}
}

// GCDone records a collection finishing at node after elapsed ns.
func GCDone(node int, elapsed int64) Event {
	return Event{Kind: KindGCDone, Node: int32(node), Peer: -1, Page: -1, Arg: elapsed}
}

// XpTimeout records a retransmission timer firing toward peer.
func XpTimeout(node, peer, retries int) Event {
	return Event{Kind: KindXpTimeout, Node: int32(node), Peer: int32(peer), Page: -1,
		Arg: int64(retries)}
}

// XpRetransmit records frame seq being re-sent to peer; rto is the new
// (backed-off) retransmission timeout armed after the resend.
func XpRetransmit(node, peer int, seq uint64, rto int64) Event {
	return Event{Kind: KindXpRetransmit, Node: int32(node), Peer: int32(peer), Page: -1,
		Seq: seq, Arg: rto}
}

// XpAck records a pure (non-piggybacked) ack sent to peer.
func XpAck(node, peer int) Event {
	return Event{Kind: KindXpAck, Node: int32(node), Peer: int32(peer), Page: -1}
}

// XpDup records a duplicate sequenced frame from peer being suppressed.
func XpDup(node, peer int, seq uint64) Event {
	return Event{Kind: KindXpDup, Node: int32(node), Peer: int32(peer), Page: -1, Seq: seq}
}

// ThreadSwitch records a context switch to thread on processor node.
func ThreadSwitch(node, thread int) Event {
	return Event{Kind: KindThreadSwitch, Node: int32(node), Peer: -1, Page: -1,
		Aux: int64(thread)}
}

// ThreadBlock records thread stalling after a busy run of run ns.
func ThreadBlock(node, thread int, run int64) Event {
	return Event{Kind: KindThreadBlock, Node: int32(node), Peer: -1, Page: -1,
		Arg: run, Aux: int64(thread)}
}

// ThreadResume records a blocked thread becoming runnable again.
func ThreadResume(node, thread int) Event {
	return Event{Kind: KindThreadResume, Node: int32(node), Peer: -1, Page: -1,
		Aux: int64(thread)}
}

// HomeFlush records node flushing bytes data bytes of diff for page to its
// home (HLRC release-time propagation).
func HomeFlush(node, home int, page int64, bytes int) Event {
	return Event{Kind: KindHomeFlush, Node: int32(node), Peer: int32(home), Page: page,
		Arg: int64(bytes)}
}

// HomeFetch records node completing a whole-page fetch of page from its
// home (HLRC demand miss).
func HomeFetch(node, home int, page int64, bytes int) Event {
	return Event{Kind: KindHomeFetch, Node: int32(node), Peer: int32(home), Page: page,
		Arg: int64(bytes)}
}

// NetHop records a message crossing one fat-tree link: link identifies the
// link within the topology, wait is how long the message queued for it.
func NetHop(src, dst int, mk uint8, link int, wait int64) Event {
	return Event{Kind: KindNetHop, MsgKind: mk, Node: int32(src), Peer: int32(dst),
		Page: int64(link), Arg: wait}
}

// GossipPush records one gossip round at node pushing a batch of records
// notice records to fanout peers.
func GossipPush(node int, round int64, records, fanout int) Event {
	return Event{Kind: KindGossipPush, Node: int32(node), Peer: -1, Page: -1,
		Seq: uint64(round), Arg: int64(records), Aux: int64(fanout)}
}

// HomeMigrate records node becoming the new home of page, taking over from
// the old home; bytes is the size of the transferred base copy.
func HomeMigrate(node, from int, page int64, bytes int) Event {
	return Event{Kind: KindHomeMigrate, Node: int32(node), Peer: int32(from), Page: page,
		Arg: int64(bytes)}
}

// ModeSwitch records the adaptive backend flipping page between the
// diff-based and home-based regimes at node (toHome: the new regime).
func ModeSwitch(node int, page int64, toHome bool) Event {
	arg := int64(0)
	if toHome {
		arg = 1
	}
	return Event{Kind: KindModeSwitch, Node: int32(node), Peer: -1, Page: page, Arg: arg}
}
