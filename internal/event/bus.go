package event

// ringSize is the number of recent events the bus always retains for
// failure dumps, regardless of whether any sink is subscribed. Power of two.
const ringSize = 128

// Sink receives every emitted event, synchronously, in emission order.
// Events arrive by value; a sink must copy anything it wants to keep beyond
// the call (the Event itself is safe to store — it owns no mutable state).
type Sink interface {
	Event(Event)
}

// Bus is the per-kernel event bus. Emission always feeds a bounded ring of
// recent history (so invariant-failure dumps work in every run); subscribed
// sinks — stats collectors, trace writers — are the optional part. With no
// sinks subscribed, Emit is a time stamp, a ring write and a nil-slice
// range: it never allocates.
//
// A Bus is owned by its kernel and must only be used from kernel context;
// like the kernel itself it is not safe for concurrent use.
type Bus struct {
	now   func() int64 // kernel clock, captured at construction
	sinks []Sink
	ring  [ringSize]Event
	ringN uint64 // total events emitted
}

// NewBus returns a bus that stamps events with the given clock.
func NewBus(now func() int64) *Bus {
	return &Bus{now: now}
}

// Subscribe adds a sink. Sinks are invoked in subscription order.
func (b *Bus) Subscribe(s Sink) {
	b.sinks = append(b.sinks, s)
}

// Emit stamps e with the current virtual time, records it in the bounded
// ring, and fans it out to every subscribed sink.
func (b *Bus) Emit(e Event) {
	e.At = b.now()
	b.ring[b.ringN&(ringSize-1)] = e
	b.ringN++
	for _, s := range b.sinks {
		s.Event(e)
	}
}

// Recent returns the retained event history, oldest first. The slice is
// freshly allocated; callers may keep it.
func (b *Bus) Recent() []Event {
	n := b.ringN
	count := uint64(ringSize)
	if n < count {
		count = n
	}
	out := make([]Event, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, b.ring[i&(ringSize-1)])
	}
	return out
}
