package event

import (
	"bufio"
	"fmt"
	"io"
)

// TraceWriter is a Sink that streams the event flow as Chrome trace_event
// JSON (the format Perfetto and chrome://tracing load): one instant event
// per bus emission, on one track per simulated processor plus a shared
// network track. Kernel-internal kinds (dispatch, timers) are excluded —
// they exist for failure dumps, not timelines.
//
// Output is fully deterministic: events appear in emission order, the
// thread-name metadata emitted by Close is sorted by track id, and
// timestamps are formatted with fixed precision. Two runs of the same
// configuration and seed produce byte-identical files.
type TraceWriter struct {
	w    *bufio.Writer
	c    io.Closer // underlying file, if any
	n    int       // events written, for comma placement
	seen []bool    // seen[tid]: track has at least one event
	err  error
}

// NewTraceWriter returns a writer streaming to w. If w also implements
// io.Closer, Close closes it after finishing the JSON document.
func NewTraceWriter(w io.Writer) *TraceWriter {
	t := &TraceWriter{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	t.printf(`{"displayTimeUnit":"ns","traceEvents":[`)
	return t
}

func (t *TraceWriter) printf(format string, args ...any) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, format, args...)
}

// track maps an event to its timeline track: 0 is the network, processor i
// is i+1. Kernel-internal kinds return ok=false — they exist for failure
// dumps, not timelines.
func track(e Event) (id int, ok bool) {
	switch e.Kind {
	case KindDispatch, KindTimerArm, KindTimerStop:
		return 0, false
	case KindNetEnqueue, KindNetTransmit, KindNetDeliver, KindNetDrop, KindNetFault, KindNetHop:
		return 0, true
	case KindNone,
		KindFaultLocal, KindFaultRemote, KindFetchDone,
		KindDiffMake, KindDiffApply, KindTwin, KindIntervalClose, KindNoticeIn,
		KindLockLocal, KindLockRemote, KindLockGrant, KindLockForward, KindLockReturn,
		KindBarArrive, KindBarRelease,
		KindPfCall, KindPfUnnecessary, KindPfThrottle, KindPfIssue, KindPfReqDrop, KindPfReplyDrop,
		KindGCBegin, KindGCFlush, KindGCDone,
		KindXpTimeout, KindXpRetransmit, KindXpAck, KindXpDup,
		KindThreadSwitch, KindThreadBlock, KindThreadResume,
		KindHomeFlush, KindHomeFetch, KindGossipPush,
		KindHomeMigrate, KindModeSwitch:
		return int(e.Node) + 1, true
	default:
		panic(fmt.Sprintf("event: TraceWriter: unhandled kind %d", uint8(e.Kind)))
	}
}

// Event implements Sink.
func (t *TraceWriter) Event(e Event) {
	id, ok := track(e)
	if !ok {
		return
	}
	for len(t.seen) <= id {
		t.seen = append(t.seen, false)
	}
	t.seen[id] = true
	if t.n > 0 {
		t.printf(",")
	}
	t.n++
	// trace_event timestamps are microseconds; keep nanosecond precision
	// as a fixed three-digit fraction.
	t.printf("\n"+`{"name":%q,"ph":"i","s":"t","pid":1,"tid":%d,"ts":"%d.%03d",`+
		`"args":{"node":%d,"peer":%d,"mk":%d,"seq":%d,"page":%d,"arg":%d,"aux":%d}}`,
		e.Kind.String(), id, e.At/1000, e.At%1000,
		e.Node, e.Peer, e.MsgKind, e.Seq, e.Page, e.Arg, e.Aux)
}

// Close writes the per-track thread-name metadata (sorted by track id),
// terminates the JSON document, flushes, and closes the underlying writer
// if it is closable. It returns the first error encountered at any point.
func (t *TraceWriter) Close() error {
	for id, ok := range t.seen {
		if !ok {
			continue
		}
		name := fmt.Sprintf("proc %d", id-1)
		if id == 0 {
			name = "network"
		}
		if t.n > 0 {
			t.printf(",")
		}
		t.n++
		t.printf("\n"+`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`, id, name)
	}
	t.printf("\n]}\n")
	if err := t.w.Flush(); t.err == nil {
		t.err = err
	}
	if t.c != nil {
		if err := t.c.Close(); t.err == nil {
			t.err = err
		}
	}
	return t.err
}
