package proto

import (
	"godsm/internal/event"
	"godsm/internal/lrc"
	"godsm/internal/netsim"
	"godsm/internal/sim"
)

// barrierState lives on the barrier manager (node 0).
type barrierState struct {
	arrived    int
	arrivalVCs []lrc.VC  // by node
	releases   []func()  // manager-local continuations
	acc        []PageAcc // piggybacked access counters (dynamic policies only)
	mgrStart   sim.Time
	gcWant     bool // some arrival exceeded the GC threshold
}

// Barrier arrives at barrier id; onRelease runs (in kernel context) when
// the barrier releases. The arrival closes the current interval and ships
// this node's new intervals to the manager.
func (sm *syncManager) Barrier(id int, onRelease func()) {
	if sm.tree != nil {
		sm.tree.Barrier(id, onRelease)
		return
	}
	n := sm.n
	n.closeInterval()
	own := n.ownSinceBarrier
	n.ownSinceBarrier = nil
	n.bus.Emit(event.BarArrive(n.ID, id))

	acc := n.episodeAcc()
	if n.ID == 0 {
		// The manager consults the GC policy for its own storage figure;
		// remote arrivals report raw diff bytes on the wire.
		sm.barrier.mgrStart = n.K.Now()
		sm.barrier.releases = append(sm.barrier.releases, onRelease)
		sm.barArrive(&msgBarArrive{Barrier: id, From: 0, VC: n.vc.Clone(), Ivs: own,
			DiffBytes: n.gc.ReportBytes(), Acc: acc})
		return
	}

	sm.barStart = n.K.Now()
	sm.barWait = onRelease
	size := n.C.HeaderBytes + 4*n.N + n.C.ivsWireSize(own, n.N) + accWireSize(acc)
	done := n.CPU.Service(n.C.MsgSend, sim.CatDSM)
	n.sendAfter(done, &netsim.Message{
		Src: netsim.NodeID(n.ID), Dst: 0,
		Size: size, Reliable: true, Kind: KindBarArrive,
		Payload: &msgBarArrive{Barrier: id, From: n.ID, VC: n.vc.Clone(), Ivs: own,
			DiffBytes: n.diffBytes, Acc: acc},
	})
}

// handleBarArrive runs on the manager for remote arrivals.
func (sm *syncManager) handleBarArrive(a *msgBarArrive) { sm.barArrive(a) }

// barArrive records one arrival; the N-th arrival releases everyone.
func (sm *syncManager) barArrive(a *msgBarArrive) {
	n := sm.n
	b := sm.barrier
	if b.arrivalVCs == nil {
		b.arrivalVCs = make([]lrc.VC, n.N)
	}
	if b.arrivalVCs[a.From] != nil {
		n.invariantf("duplicate barrier arrival from %d", a.From)
	}
	b.arrivalVCs[a.From] = a.VC.Clone()
	b.acc = append(b.acc, a.Acc...)
	if n.gc.Exceeds(a.DiffBytes) {
		b.gcWant = true
	}
	// Record the arriver's intervals WITHOUT invalidating local pages or
	// merging VCs yet: the manager acts as a server here; its own memory
	// view only changes when it passes the barrier itself, and an arrival
	// VC may cover third-node intervals whose records arrive later.
	cost := n.C.BarrierMgr
	for _, iv := range a.Ivs {
		cost += n.recordDeferred(iv)
	}
	b.arrived++
	if b.arrived < n.N {
		n.CPU.Service(cost, sim.CatDSM)
		return
	}
	for q := 0; q < n.N; q++ {
		n.vc.Merge(b.arrivalVCs[q])
	}
	n.flushDeferred()
	n.checkContiguity()
	n.gossipCover(n.vc)
	moves := n.decideMoves(b.acc)

	// Everyone is here: release. Each node gets the intervals it lacks
	// (per its arrival VC), excluding its own.
	arrivalVCs := b.arrivalVCs
	releases := b.releases
	mgrStart := b.mgrStart
	gc := b.gcWant
	b.arrived = 0
	b.arrivalVCs = nil
	b.releases = nil
	b.acc = nil
	b.gcWant = false

	for q := 1; q < n.N; q++ {
		ivs := n.missingIvs(arrivalVCs[q], q)
		size := n.C.HeaderBytes + 4*n.N + n.C.ivsWireSize(ivs, n.N) + movesWireSize(moves)
		cost += n.C.MsgSend
		done := n.CPU.Service(cost, sim.CatDSM)
		cost = 0
		n.sendAfter(done, &netsim.Message{
			Src: 0, Dst: netsim.NodeID(q),
			Size: size, Reliable: true, Kind: KindBarRelease,
			Payload: &msgBarRelease{Barrier: a.Barrier, VC: n.vc.Clone(), Ivs: ivs, GC: gc,
				Moves: moves},
		})
	}
	n.applyMoves(moves)
	done := n.CPU.Service(cost, sim.CatDSM)
	n.bus.Emit(event.BarRelease(n.ID, a.Barrier, done-mgrStart))
	resume := func() {
		for _, r := range releases {
			r()
		}
	}
	if gc {
		n.K.At(done, func() { n.gc.Begin(resume) })
		return
	}
	n.K.At(done, resume)
}

// handleBarRelease completes a barrier wait on a non-manager node.
func (sm *syncManager) handleBarRelease(r *msgBarRelease) {
	n := sm.n
	cost := n.intake(r.Ivs, r.VC)
	n.gossipCover(r.VC)
	n.applyMoves(r.Moves)
	done := n.CPU.Service(cost, sim.CatDSM)
	n.bus.Emit(event.BarRelease(n.ID, r.Barrier, done-sm.barStart))
	cb := sm.barWait
	sm.barWait = nil
	if r.GC {
		n.K.At(done, func() { n.gc.Begin(cb) })
		return
	}
	n.K.At(done, cb)
}
