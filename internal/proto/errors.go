package proto

import (
	"fmt"
	"sort"
	"strings"

	"godsm/internal/event"
	"godsm/internal/lrc"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// InvariantError is the panic value raised when a protocol invariant is
// violated. It carries the failing node's identity and consistency state at
// the moment of failure, and — once it unwinds through the simulation
// kernel's run loop — the bus's recent event history (the kernel recognizes
// it via sim.EventTraceAttacher), turning a chaos-test failure into an
// actionable dump rather than a bare stack trace.
//
// Every field is rendered deterministically: map-derived state (in-flight
// fetches, outstanding prefetches) is sorted at capture time, so the same
// failure always produces a byte-identical dump.
type InvariantError struct {
	Node int
	Page int64 // page involved, or -1 when the failure is not page-related
	VC   lrc.VC
	Time sim.Time
	Msg  string

	// InFlight and Prefetching are the pages with an outstanding demand
	// fetch / prefetch at the failing node, sorted ascending.
	InFlight    []int64
	Prefetching []int64

	// Events is the bus's recent event history, oldest first, attached by
	// the kernel's run loop as the panic unwinds.
	Events []event.Event
}

// Error renders the failure with its state and event-trace context.
func (e *InvariantError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "proto invariant violated: %s\n", e.Msg)
	fmt.Fprintf(&b, "  node=%d time=%dns vc=%v", e.Node, e.Time, e.VC)
	if e.Page >= 0 {
		fmt.Fprintf(&b, " page=%d", e.Page)
	}
	if len(e.InFlight) > 0 {
		fmt.Fprintf(&b, "\n  in-flight fetches: %v", e.InFlight)
	}
	if len(e.Prefetching) > 0 {
		fmt.Fprintf(&b, "\n  outstanding prefetches: %v", e.Prefetching)
	}
	if len(e.Events) > 0 {
		fmt.Fprintf(&b, "\n  last %d events:", len(e.Events))
		for _, ev := range e.Events {
			fmt.Fprintf(&b, "\n    %s", ev.String())
		}
	}
	return b.String()
}

// AttachEventTrace implements sim.EventTraceAttacher.
func (e *InvariantError) AttachEventTrace(evs []event.Event) {
	if e.Events == nil {
		e.Events = evs
	}
}

// sortedPages returns the keys of a page-keyed map, sorted, as int64s —
// failure dumps must render map state deterministically.
func sortedPages[V any](m map[pagemem.PageID]V) []int64 {
	var out []int64
	for p := range m {
		out = append(out, int64(p))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (n *Node) newInvariantError(page int64, format string, args ...any) *InvariantError {
	return &InvariantError{
		Node:        n.ID,
		Page:        page,
		VC:          n.vc.Clone(),
		Time:        n.K.Now(),
		Msg:         fmt.Sprintf(format, args...),
		InFlight:    sortedPages(n.fetches),
		Prefetching: sortedPages(n.pf),
	}
}

// configInvariantf panics with a structured InvariantError for a
// construction-time failure (bad registration or Config); there is no node
// state or event history to attach yet.
func configInvariantf(format string, args ...any) {
	panic(&InvariantError{Node: -1, Page: -1, Msg: fmt.Sprintf(format, args...)})
}

// invariantf panics with a structured InvariantError for a failure that is
// not tied to a particular page.
func (n *Node) invariantf(format string, args ...any) {
	panic(n.newInvariantError(-1, format, args...))
}

// pageInvariantf is invariantf with the involved page recorded.
func (n *Node) pageInvariantf(p pagemem.PageID, format string, args ...any) {
	panic(n.newInvariantError(int64(p), format, args...))
}
