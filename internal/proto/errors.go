package proto

import (
	"fmt"
	"strings"

	"godsm/internal/lrc"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// InvariantError is the panic value raised when a protocol invariant is
// violated. It carries the failing node's identity and consistency state at
// the moment of failure, and — once it unwinds through the simulation
// kernel's run loop — the last few dispatched events (the kernel recognizes
// it via sim.EventTraceAttacher), turning a chaos-test failure into an
// actionable dump rather than a bare stack trace.
type InvariantError struct {
	Node int
	Page int64 // page involved, or -1 when the failure is not page-related
	VC   lrc.VC
	Time sim.Time
	Msg  string

	// Events are the most recently dispatched kernel events, oldest first,
	// attached by the kernel's run loop as the panic unwinds.
	Events []sim.DispatchRecord
}

// Error renders the failure with its state and event-trace context.
func (e *InvariantError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "proto invariant violated: %s\n", e.Msg)
	fmt.Fprintf(&b, "  node=%d time=%dns vc=%v", e.Node, e.Time, e.VC)
	if e.Page >= 0 {
		fmt.Fprintf(&b, " page=%d", e.Page)
	}
	if len(e.Events) > 0 {
		fmt.Fprintf(&b, "\n  last %d dispatched events:", len(e.Events))
		for _, ev := range e.Events {
			fmt.Fprintf(&b, "\n    t=%-12d seq=%-8d %s", ev.At, ev.Seq, ev.Fn)
		}
	}
	return b.String()
}

// AttachEventTrace implements sim.EventTraceAttacher.
func (e *InvariantError) AttachEventTrace(evs []sim.DispatchRecord) {
	if e.Events == nil {
		e.Events = evs
	}
}

// invariantf panics with a structured InvariantError for a failure that is
// not tied to a particular page.
func (n *Node) invariantf(format string, args ...any) {
	panic(&InvariantError{
		Node: n.ID,
		Page: -1,
		VC:   n.vc.Clone(),
		Time: n.K.Now(),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// pageInvariantf is invariantf with the involved page recorded.
func (n *Node) pageInvariantf(p pagemem.PageID, format string, args ...any) {
	panic(&InvariantError{
		Node: n.ID,
		Page: int64(p),
		VC:   n.vc.Clone(),
		Time: n.K.Now(),
		Msg:  fmt.Sprintf(format, args...),
	})
}
