package proto

import (
	"testing"

	"godsm/internal/pagemem"
)

// Adaptive-backend white-box tests: the decideMoves rule table, lockstep
// mode switching end to end, and a regression test for the transition
// invariant (an ex-home must commit its open twin before serving a hybrid
// base).

func adpRig(n int) *rig { return newRigCfg(n, Config{Protocol: "adp"}) }

func (r *rig) adp(node int) *adpCoherence { return r.nodes[node].coh.(*adpCoherence) }

// consumedAcc builds an episode in which readers gathered near-page volume
// from page p with no writers — the diff -> home entry signature.
func consumedAcc(p pagemem.PageID) []PageAcc {
	return []PageAcc{
		acc(p, 1, 0, 1, pagemem.PageSize),
		acc(p, 2, 0, 1, pagemem.PageSize),
		acc(p, 3, 0, 1, pagemem.PageSize),
	}
}

// The entry rule: purely consumed pages with enough page-sized gathers move
// to home mode; anything written, sparse, or historically multi-writer
// stays diff-based.
func TestADPDecideEntry(t *testing.T) {
	r := adpRig(4)
	c := r.adp(0)

	if moves := c.decideMoves(consumedAcc(5)); len(moves) != 1 ||
		moves[0].Page != 5 || moves[0].Mode != ModeHome {
		t.Fatalf("consumed page: moves = %+v, want page 5 -> home mode", moves)
	}

	// Too few faults (a single reader's demand fault + prefetch is 2).
	if moves := c.decideMoves([]PageAcc{
		acc(6, 1, 0, 2, 2*pagemem.PageSize),
	}); len(moves) != 0 {
		t.Fatalf("two-gather page entered home mode: %+v", moves)
	}

	// Enough faults but fine-grained volume.
	if moves := c.decideMoves([]PageAcc{
		acc(6, 1, 0, 1, 64), acc(6, 2, 0, 1, 64), acc(6, 3, 0, 1, 64),
	}); len(moves) != 0 {
		t.Fatalf("sparse page entered home mode: %+v", moves)
	}

	// A writer in the episode disqualifies it.
	withWriter := append(consumedAcc(7), acc(7, 0, 1, 0, 0))
	if moves := c.decideMoves(withWriter); len(moves) != 0 {
		t.Fatalf("written page entered home mode: %+v", moves)
	}
}

// Pages that were ever multi-writer never enter home mode, even in a later
// purely consumed episode.
func TestADPDecideEverMultiBarsEntry(t *testing.T) {
	r := adpRig(4)
	c := r.adp(0)

	multi := []PageAcc{acc(5, 0, 1, 0, 0), acc(5, 2, 1, 0, 0)}
	if moves := c.decideMoves(multi); len(moves) != 0 {
		t.Fatalf("multi-writer diff page produced moves: %+v", moves)
	}
	if !c.everMulti[5] {
		t.Fatal("multi-writer episode not recorded")
	}
	if moves := c.decideMoves(consumedAcc(5)); len(moves) != 0 {
		t.Fatalf("ever-multi page entered home mode: %+v", moves)
	}
}

// The hold window applies to entries: a decided switch is not followed by
// another decision for the same page until adpHold episodes pass.
func TestADPDecideEntryHold(t *testing.T) {
	r := adpRig(4)
	c := r.adp(0)

	if moves := c.decideMoves(consumedAcc(5)); len(moves) != 1 {
		t.Fatalf("first episode: moves = %+v", moves)
	}
	// The replica never applied the move (root-side state only), so the
	// page is still diff-mode; the hold alone must block re-deciding.
	if moves := c.decideMoves(consumedAcc(5)); len(moves) != 0 {
		t.Fatalf("within hold: moves = %+v, want none", moves)
	}
	if moves := c.decideMoves(consumedAcc(5)); len(moves) != 1 {
		t.Fatalf("after hold: moves = %+v, want the entry again", moves)
	}
}

// The eviction rules: a home-mode page leaves on a multi-writer episode, or
// on a sole non-home writer whose flush volume is far below page-sized
// replies. Evictions ignore the hold window, and an evicted page is burned.
func TestADPDecideEviction(t *testing.T) {
	r := adpRig(4)
	c := r.adp(0)

	// Multi-writer eviction, within the hold window of its (simulated) entry.
	c.mode[5] = ModeHome
	c.lastSwitch[5] = c.episode + 1 // entered "this" episode
	multi := []PageAcc{acc(5, 0, 1, 0, 0), acc(5, 2, 1, 0, 0)}
	moves := c.decideMoves(multi)
	if len(moves) != 1 || moves[0].Page != 5 || moves[0].Mode != ModeDiff {
		t.Fatalf("multi-writer home page: moves = %+v, want eviction", moves)
	}
	if !c.burned[5] {
		t.Fatal("evicted page not burned")
	}
	delete(c.mode, 5)
	// Burned: a later consumed episode cannot re-enter.
	for i := 0; i < adpHold+1; i++ {
		if moves := c.decideMoves(consumedAcc(5)); len(moves) != 0 {
			t.Fatalf("burned page re-entered home mode: %+v", moves)
		}
	}

	// Small-diff eviction: sole writer node 2, page homed at node 1 (9 mod 4
	// = 1), two writes moving far less than half a page.
	c.mode[9] = ModeHome
	moves = c.decideMoves([]PageAcc{acc(9, 2, 2, 0, 128)})
	if len(moves) != 1 || moves[0].Page != 9 || moves[0].Mode != ModeDiff {
		t.Fatalf("small-diff home page: moves = %+v, want eviction", moves)
	}
	delete(c.mode, 9)

	// The same volume written by the home itself moves nothing on the wire:
	// no eviction.
	c.mode[8] = ModeHome // homed at node 0
	if moves = c.decideMoves([]PageAcc{acc(8, 0, 2, 0, 128)}); len(moves) != 0 {
		t.Fatalf("self-home writer evicted its page: %+v", moves)
	}
}

// fullPageWrite dirties every word of the page at a through the protocol
// entry points.
func fullPageWrite(r *rig, node int, a pagemem.Addr, base float64) {
	for w := 0; w < pagemem.PageSize/8; w++ {
		r.write(node, a+pagemem.Addr(8*w), base+float64(w))
	}
}

// faultRead makes node fault page p in (if invalid) and returns the value at a.
func faultRead(r *rig, node int, a pagemem.Addr) float64 {
	p := pagemem.PageOf(a)
	if !r.nodes[node].PageValid(p) {
		done := false
		r.k.At(r.k.Now(), func() { r.nodes[node].Fault(p, func() { done = true }) })
		r.k.Run()
		if !done {
			panic("faultRead: fault never completed")
		}
	}
	return r.read(node, a)
}

// End to end: a produced-then-consumed page enters home mode in lockstep on
// every replica, later writes flush to the home, and a multi-writer episode
// evicts it back to diff mode — with reads correct throughout.
func TestADPModeSwitchLockstep(t *testing.T) {
	r := adpRig(4)
	p := pagemem.PageOf(page0) // page 1, homed at node 1

	// Episode 0: node 0 produces the whole page.
	r.k.At(0, func() { fullPageWrite(r, 0, page0, 1) })
	r.k.Run()
	r.barrierAll(0)

	// Episode 1: three readers gather it (page-sized diffs, no writers).
	for _, nd := range []int{1, 2, 3} {
		if got := faultRead(r, nd, page0); got != 1 {
			t.Fatalf("node %d read %v, want 1", nd, got)
		}
	}
	r.barrierAll(1)

	for i := 0; i < 4; i++ {
		if !r.adp(i).homeMode(p) {
			t.Fatalf("node %d: page %d not in home mode after the consumed episode", i, p)
		}
	}

	// Episode 2: a home-mode write flushes to the home.
	flushesBefore, _ := r.net.KindStats(KindHomeFlush)
	r.k.At(r.k.Now(), func() { r.write(0, page0, 101) })
	r.k.Run()
	r.barrierAll(2)
	if flushes, _ := r.net.KindStats(KindHomeFlush); flushes <= flushesBefore {
		t.Fatal("home-mode write produced no home flush")
	}
	if got := faultRead(r, 1, page0); got != 101 {
		t.Fatalf("home read %v, want 101", got)
	}

	// Episode 3: two writers in one episode evict the page. Node 2 was
	// invalidated by episode 2's write and refetches from the home first.
	if got := faultRead(r, 2, page0); got != 101 {
		t.Fatalf("node 2 read %v, want 101", got)
	}
	r.k.At(r.k.Now(), func() {
		r.write(0, page0, 7)
		r.write(2, page0+8, 8)
	})
	r.k.Run()
	r.barrierAll(3)
	for i := 0; i < 4; i++ {
		if r.adp(i).homeMode(p) {
			t.Fatalf("node %d: page %d still home-mode after a multi-writer episode", i, p)
		}
		if r.adp(i).exCover[p] == nil {
			t.Fatalf("node %d: no exCover snapshot after the eviction", i)
		}
	}

	// Post-eviction reads resolve the flush-era intervals through the
	// ex-home (hybrid fetch) and stay correct.
	for _, nd := range []int{1, 3} {
		if got := faultRead(r, nd, page0); got != 7 {
			t.Fatalf("node %d read %v, want 7", nd, got)
		}
		if got := r.read(nd, page0+8); got != 8 {
			t.Fatalf("node %d read %v at word 1, want 8", nd, got)
		}
	}

	// Burned: another consumed episode must not re-enter home mode.
	r.barrierAll(4)
	for _, nd := range []int{1, 2, 3} {
		faultRead(r, nd, page0)
	}
	r.barrierAll(5)
	for i := 0; i < 4; i++ {
		if r.adp(i).homeMode(p) {
			t.Fatalf("node %d: burned page %d re-entered home mode", i, p)
		}
	}
}

func writeU64(r *rig, node int, a pagemem.Addr, v uint64) {
	nd := r.nodes[node]
	p := pagemem.PageOf(a)
	if !nd.PageValid(p) {
		panic("writeU64 on invalid page; fault first")
	}
	nd.EnsureWritable(p)
	pagemem.PutU64(nd.Frame(p), pagemem.OffsetOf(a), v)
}

func readU64(r *rig, node int, a pagemem.Addr) uint64 {
	nd := r.nodes[node]
	return pagemem.GetU64(nd.Frame(pagemem.PageOf(a)), pagemem.OffsetOf(a))
}

// Regression test for the transition invariant: an ex-home serving a hybrid
// base while holding an open twin must commit the twin first. Diffs are
// byte-granular, so a diff later made for that interval (against the older
// twin) and applied onto a base already holding part of the interval leaves
// merged words behind: bytes the diff happens to skip (old twin == final
// value) would keep the base's uncommitted content.
//
// The word values are chosen to make the merge visible: the first write
// sets every byte of the word, the second returns all but one byte to the
// original value, so the skipped bytes differ between the two writes.
func TestADPExHomeCommitsTwinBeforeServingBase(t *testing.T) {
	r := adpRig(4)
	p := pagemem.PageOf(page0) // homed at node 1
	word30 := page0 + 30*8
	const (
		v1 = uint64(0xFFFFFFFFFFFFFFFF) // every byte differs from the zero twin
		v2 = uint64(0x00000000000000FF) // bytes 1..7 return to zero
	)

	// Drive the page into home mode and back out (multi-writer eviction),
	// leaving node 1 the ex-home with a current frame.
	r.k.At(0, func() { fullPageWrite(r, 0, page0, 1) })
	r.k.Run()
	r.barrierAll(0)
	for _, nd := range []int{1, 2, 3} {
		faultRead(r, nd, page0)
	}
	r.barrierAll(1)
	if !r.adp(0).homeMode(p) {
		t.Fatal("setup: page never entered home mode")
	}
	r.k.At(r.k.Now(), func() {
		r.write(0, page0+10*8, 111)
		r.write(2, page0+20*8, 222)
	})
	r.k.Run()
	r.barrierAll(2)
	if r.adp(0).homeMode(p) {
		t.Fatal("setup: page never left home mode")
	}

	// Episode 3: the ex-home writes word 30 (the twin snapshots the
	// pre-write frame; the interval stays open), then node 3 faults: its
	// pendings are all flush-era, so a base request goes to the ex-home
	// while that interval is still open.
	if !r.nodes[1].PageValid(p) {
		faultRead(r, 1, page0)
	}
	r.k.At(r.k.Now(), func() { writeU64(r, 1, word30, v1) })
	r.k.Run()
	if got := faultRead(r, 3, page0+10*8); got != 111 {
		t.Fatalf("node 3 read %v at word 10, want 111", got)
	}
	if got := r.read(3, page0+20*8); got != 222 {
		t.Fatalf("node 3 read %v at word 20, want 222", got)
	}
	// The served base carries the committed first write.
	if got := readU64(r, 3, word30); got != v1 {
		t.Fatalf("node 3 base word 30 = %#x, want %#x", got, v1)
	}

	// The ex-home overwrites the same word; only byte 0 keeps v1's value.
	r.k.At(r.k.Now(), func() { writeU64(r, 1, word30, v2) })
	r.k.Run()
	r.barrierAll(3)

	// Node 3 refetches: the diffs for both of node 1's intervals must
	// reproduce v2 exactly. Before the commit-before-serve fix both writes
	// folded into one interval whose diff (old twin vs final frame) skipped
	// the bytes where they coincide, so node 3 kept the uncommitted 0xFF
	// bytes from its base — a merged word that is neither v1 nor v2.
	done := false
	r.k.At(r.k.Now(), func() { r.nodes[3].Fault(p, func() { done = true }) })
	r.k.Run()
	if !done {
		t.Fatal("refetch never completed")
	}
	if got := readU64(r, 3, word30); got != v2 {
		t.Fatalf("node 3 word 30 = %#x, want %#x (merged diff/base bytes)", got, v2)
	}
	if got := readU64(r, 1, word30); got != v2 {
		t.Fatalf("ex-home word 30 = %#x, want %#x", got, v2)
	}
}
