package proto

import (
	"godsm/internal/event"
	"godsm/internal/netsim"
	"godsm/internal/sim"
)

// syncManager implements the SyncManager interface shared by every backend:
// TreadMarks's distributed queue locks (this file) and the centralized
// barrier manager (barrier.go). Consistency metadata piggybacks on the
// synchronization messages through the chassis's intake/missingIvs helpers,
// so the same manager works for all coherence policies.
type syncManager struct {
	n            *Node
	noTokenCache bool

	locks map[int]*lockState

	barrier  *barrierState // non-nil only on the barrier manager (node 0)
	barWait  func()        // continuation for an in-progress barrier wait
	barStart sim.Time      // when this node arrived at the barrier

	tree *treeBarrier // non-nil iff cfg.Barrier == "tree" (barriertree.go)
}

func newSyncManager(n *Node, cfg Config) *syncManager {
	sm := &syncManager{n: n, noTokenCache: cfg.NoTokenCache, locks: make(map[int]*lockState)}
	if cfg.Barrier == "tree" {
		sm.tree = newTreeBarrier(n, cfg.BarrierFanout)
		return sm
	}
	if n.ID == 0 {
		sm.barrier = &barrierState{}
	}
	return sm
}

// Handle dispatches the lock and barrier messages.
func (sm *syncManager) Handle(m *netsim.Message) bool {
	switch pl := m.Payload.(type) {
	case *msgLockAcq:
		switch m.Kind {
		case KindLockAcq:
			sm.handleLockAcqAtManager(pl)
		case KindLockRetry:
			sm.handleLockRetry(pl)
		case KindLockForward:
			sm.handleLockForward(pl)
		default:
			sm.n.invariantf("lock-acquire payload carried unexpected message kind %d", int(m.Kind))
		}
	case *msgLockGrant:
		if m.Kind == KindLockReturn {
			sm.handleLockReturn(pl)
		} else {
			sm.handleLockGrant(pl)
		}
	case *msgBarArrive:
		if sm.tree != nil {
			sm.tree.arrive(pl)
		} else {
			sm.handleBarArrive(pl)
		}
	case *msgBarRelease:
		if sm.tree != nil {
			sm.tree.handleRelease(pl)
		} else {
			sm.handleBarRelease(pl)
		}
	default:
		return false
	}
	return true
}

// lockState is one lock's state at one node. The algorithm is TreadMarks's
// distributed queue: a static manager (lock id mod N) tracks the last
// requester and forwards each new acquire to it; the previous requester
// grants directly to its successor when it releases, piggybacking the write
// notices the successor lacks. Token ownership is cached: the last holder
// re-acquires locally with no messages.
type lockState struct {
	// Manager-side.
	lastRequester int

	// Holder-side.
	owned      bool        // this node holds the token
	held       bool        // a local thread currently holds the lock
	pendingFwd *msgLockAcq // successor waiting for our release
	waiting    func()      // local continuation once our grant arrives
	reqStart   sim.Time

	// Manager-side, noTokenCache only: a redirected request waiting for
	// the token to come back from its last holder.
	retryQ *msgLockAcq

	// Tenure tagging: mySeq counts this node's acquires of the lock;
	// lastReqSeq (manager side) is the sequence of lastRequester's acquire.
	// Forwards carry the predecessor tenure so a node can tell whether a
	// forwarded request chains after its current tenure or a finished one
	// (the distinction matters once tokens return to the manager).
	mySeq      int
	lastReqSeq int
}

func (sm *syncManager) lock(id int) *lockState {
	ls, ok := sm.locks[id]
	if !ok {
		ls = &lockState{lastRequester: -1}
		if sm.lockManager(id) == sm.n.ID {
			ls.owned = true // the manager owns every token initially
			ls.lastRequester = sm.n.ID
		}
		sm.locks[id] = ls
	}
	return ls
}

func (sm *syncManager) lockManager(id int) int { return id % sm.n.N }

// AcquireLock acquires lock id. If the token is cached locally the acquire
// completes immediately and AcquireLock returns true; otherwise it returns
// false and onGranted runs (in kernel context) when the grant arrives.
func (sm *syncManager) AcquireLock(id int, onGranted func()) (immediate bool) {
	n := sm.n
	ls := sm.lock(id)
	if ls.held {
		n.invariantf("node %d re-acquiring held lock %d (combine locally first)", n.ID, id)
	}
	if ls.waiting != nil {
		n.invariantf("node %d has concurrent remote acquires of lock %d", n.ID, id)
	}
	if ls.owned && !sm.noTokenCache {
		ls.held = true
		n.bus.Emit(event.LockLocal(n.ID, id))
		return true
	}

	n.bus.Emit(event.LockRemote(n.ID, id))
	ls.waiting = onGranted
	ls.reqStart = n.K.Now()
	ls.mySeq++
	req := &msgLockAcq{Lock: id, Requester: n.ID, VC: n.vc.Clone(), Seq: ls.mySeq}
	mgr := sm.lockManager(id)
	if mgr == n.ID {
		done := n.CPU.Service(n.C.LockMgr, sim.CatDSM)
		n.K.At(done, func() { sm.handleLockAcqAtManager(req) })
		return false
	}
	done := n.CPU.Service(n.C.MsgSend, sim.CatDSM)
	n.sendAfter(done, &netsim.Message{
		Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(mgr),
		Size:     n.C.HeaderBytes + n.C.ReqBytes + 4*n.N,
		Reliable: true, Kind: KindLockAcq, Payload: req,
	})
	return false
}

// handleLockAcqAtManager runs at the lock's manager: it records the new
// tail of the queue and forwards the request to the previous requester.
func (sm *syncManager) handleLockAcqAtManager(req *msgLockAcq) {
	n := sm.n
	ls := sm.lock(req.Lock)
	prev := ls.lastRequester
	prevSeq := ls.lastReqSeq
	ls.lastRequester = req.Requester
	ls.lastReqSeq = req.Seq
	req.PrevSeq = prevSeq
	if prev == req.Requester && !sm.noTokenCache {
		// With token caching the last requester re-acquires locally and
		// never contacts the manager; reaching here is a protocol bug.
		n.invariantf("lock %d requester %d already owns the token", req.Lock, req.Requester)
	}
	if prev == n.ID {
		sm.handleLockForward(req)
		return
	}
	done := n.CPU.Service(n.C.LockMgr+n.C.MsgSend, sim.CatDSM)
	n.sendAfter(done, &netsim.Message{
		Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(prev),
		Size:     n.C.HeaderBytes + n.C.ReqBytes + 4*n.N,
		Reliable: true, Kind: KindLockForward, Payload: req,
	})
}

// handleLockForward runs at the previous requester: grant now if the token
// is here and free, remember the successor until our release if we hold or
// will hold it, or (noTokenCache only) redirect to the manager if the token
// has already been returned.
func (sm *syncManager) handleLockForward(req *msgLockAcq) {
	n := sm.n
	ls := sm.lock(req.Lock)
	n.bus.Emit(event.LockForward(n.ID, req.Lock, req.Requester))
	if ls.pendingFwd != nil {
		n.invariantf("lock %d already has a pending successor", req.Lock)
	}
	if ls.owned && !ls.held {
		// Token here and free: grant even if we are ourselves re-queued
		// (noTokenCache) — our own grant will come back through the chain.
		sm.grantLock(req)
		return
	}
	if ls.held {
		if sm.noTokenCache && req.PrevSeq != ls.mySeq {
			n.invariantf("lock %d forward for stale tenure while held", req.Lock)
		}
		ls.pendingFwd = req
		return
	}
	if ls.waiting != nil && (!sm.noTokenCache || req.PrevSeq == ls.mySeq) {
		// The request chains after our pending tenure.
		ls.pendingFwd = req
		return
	}
	if !sm.noTokenCache {
		n.invariantf("node %d forwarded lock %d it does not own", n.ID, req.Lock)
	}
	// The token is on its way back to the manager: redirect the request.
	mgr := sm.lockManager(req.Lock)
	done := n.CPU.Service(n.C.MsgSend, sim.CatDSM)
	n.sendAfter(done, &netsim.Message{
		Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(mgr),
		Size:     n.C.HeaderBytes + n.C.ReqBytes + 4*n.N,
		Reliable: true, Kind: KindLockRetry, Payload: req,
	})
}

// handleLockRetry runs at the manager: grant from the (possibly still
// in-flight) returned token.
func (sm *syncManager) handleLockRetry(req *msgLockAcq) {
	ls := sm.lock(req.Lock)
	if ls.owned && !ls.held {
		sm.grantLock(req)
		return
	}
	if ls.retryQ != nil {
		sm.n.invariantf("lock %d has two redirected requests", req.Lock)
	}
	ls.retryQ = req
}

// returnToken ships the token back to the manager (noTokenCache), carrying
// everything this node knows above the GC base so later manager grants are
// consistent.
func (sm *syncManager) returnToken(id int) {
	n := sm.n
	n.bus.Emit(event.LockReturn(n.ID, id))
	ls := sm.lock(id)
	ls.owned = false
	mgr := sm.lockManager(id)
	ivs := n.missingIvs(n.gcBase.Clone(), mgr)
	size := n.C.HeaderBytes + 4*n.N + n.C.ivsWireSize(ivs, n.N)
	done := n.CPU.Service(n.C.GrantMake+n.C.MsgSend, sim.CatDSM)
	n.sendAfter(done, &netsim.Message{
		Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(mgr),
		Size: size, Reliable: true, Kind: KindLockReturn,
		Payload: &msgLockGrant{Lock: id, VC: n.vc.Clone(), Ivs: ivs},
	})
}

// handleLockReturn restores manager ownership and serves any redirected
// request that raced with the return.
func (sm *syncManager) handleLockReturn(g *msgLockGrant) {
	n := sm.n
	ls := sm.lock(g.Lock)
	cost := n.intake(g.Ivs, g.VC)
	n.CPU.Service(cost, sim.CatDSM)
	ls.owned = true
	if ls.retryQ != nil {
		req := ls.retryQ
		ls.retryQ = nil
		sm.grantLock(req)
	}
}

// grantLock transfers the token to req.Requester with piggybacked write
// notices. The caller must own the token and the lock must be free.
func (sm *syncManager) grantLock(req *msgLockAcq) {
	n := sm.n
	ls := sm.lock(req.Lock)
	ls.owned = false
	ivs := n.missingIvs(req.VC, req.Requester)
	size := n.C.HeaderBytes + 4*n.N + n.C.ivsWireSize(ivs, n.N)
	done := n.CPU.Service(n.C.GrantMake+n.C.MsgSend, sim.CatDSM)
	n.sendAfter(done, &netsim.Message{
		Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(req.Requester),
		Size: size, Reliable: true, Kind: KindLockGrant,
		Payload: &msgLockGrant{Lock: req.Lock, VC: n.vc.Clone(), Ivs: ivs},
	})
}

// handleLockGrant completes a remote acquire.
func (sm *syncManager) handleLockGrant(g *msgLockGrant) {
	n := sm.n
	ls := sm.lock(g.Lock)
	if ls.waiting == nil {
		n.invariantf("node %d got unexpected grant of lock %d", n.ID, g.Lock)
	}
	cost := n.intake(g.Ivs, g.VC)
	ls.owned = true
	ls.held = true
	done := n.CPU.Service(cost, sim.CatDSM)
	n.bus.Emit(event.LockGrant(n.ID, g.Lock, done-ls.reqStart))
	cb := ls.waiting
	ls.waiting = nil
	n.K.At(done, func() {
		cb()
		// A successor may have been forwarded to us while we waited; it
		// is served when the local holder releases.
	})
}

// ReleaseLock releases lock id: the release closes the current interval
// (the LRC interval boundary) and hands the token to a waiting successor,
// if any. Local: no messages unless a successor is pending.
func (sm *syncManager) ReleaseLock(id int) {
	n := sm.n
	ls := sm.lock(id)
	if !ls.held {
		n.invariantf("node %d releasing lock %d it does not hold", n.ID, id)
	}
	n.closeInterval()
	ls.held = false
	if ls.pendingFwd != nil {
		req := ls.pendingFwd
		ls.pendingFwd = nil
		sm.grantLock(req)
		return
	}
	if sm.noTokenCache {
		if sm.lockManager(id) != n.ID {
			sm.returnToken(id)
		} else if ls.retryQ != nil {
			// A redirected request was waiting for the manager's own
			// tenure to finish.
			req := ls.retryQ
			ls.retryQ = nil
			sm.grantLock(req)
		}
	}
}
