package proto

import (
	"godsm/internal/event"
	"godsm/internal/lrc"
	"godsm/internal/netsim"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// Fault resolves an access to an invalid page. onValid runs (in kernel
// context) once the page is valid; the caller is expected to park the
// faulting thread until then. Concurrent faults on the same page join the
// in-flight fetch (request combining). Must be called from kernel context
// with the page invalid.
func (n *Node) Fault(p pagemem.PageID, onValid func()) {
	if n.PageValid(p) {
		n.pageInvariantf(p, "Fault on valid page %d", p)
	}
	if f, ok := n.fetches[p]; ok {
		f.waiters = append(f.waiters, onValid)
		return
	}

	missing := n.missingDiffs(p)
	pfst := n.pf[p]
	delete(n.pf, p)

	if len(missing) == 0 {
		// Everything needed is already local (prefetch diff cache): apply
		// without any network traffic. This is the paper's "pf-hit".
		outcome := event.OutcomeNoPf
		if pfst != nil {
			outcome = event.OutcomePfHit
		}
		n.bus.Emit(event.FaultLocal(n.ID, int64(p), outcome))
		cost := n.C.FaultEntry + n.applyPending(p)
		done := n.CPU.Service(cost, sim.CatDSM)
		n.K.At(done, onValid)
		return
	}

	// Classify the fault for Figure 3.
	var outcome int64
	switch {
	case pfst == nil:
		outcome = event.OutcomeNoPf
	case anyOutside(missing, pfst.requested):
		outcome = event.OutcomePfInvalided
	default:
		outcome = event.OutcomePfLate
	}
	n.bus.Emit(event.FaultRemote(n.ID, int64(p), outcome, len(missing)))

	f := &fetch{
		page:    p,
		needed:  make(map[lrc.IntervalID]bool, len(missing)),
		waiters: []func(){onValid},
		start:   n.K.Now(),
	}
	n.fetches[p] = f
	n.issueDiffRequests(f, missing, n.C.FaultEntry)
}

func anyOutside(ids []lrc.IntervalID, set map[lrc.IntervalID]bool) bool {
	for _, id := range ids {
		if !set[id] {
			return true
		}
	}
	return false
}

// issueDiffRequests sends one reliable diff request per distinct creator
// for the missing intervals, charging extraCost plus per-message send cost.
func (n *Node) issueDiffRequests(f *fetch, missing []lrc.IntervalID, extraCost sim.Time) {
	nodes, groups := groupByNode(missing)
	var msgs []*netsim.Message
	for _, node := range nodes {
		ids := groups[node]
		for _, id := range ids {
			f.needed[id] = true
		}
		msgs = append(msgs, &netsim.Message{
			Src:      netsim.NodeID(n.ID),
			Dst:      netsim.NodeID(node),
			Size:     n.C.HeaderBytes + n.C.ReqBytes + 8*len(ids),
			Reliable: true,
			Kind:     KindDiffReq,
			Payload:  &msgDiffReq{From: n.ID, Page: f.page, Wants: ids},
		})
	}
	done := n.CPU.Service(extraCost+sim.Time(len(msgs))*n.C.MsgSend, sim.CatDSM)
	for _, m := range msgs {
		n.sendAfter(done, m)
	}
}

// groupByNode buckets interval ids by creator. The returned node list is in
// first-appearance order so that callers iterate deterministically.
func groupByNode(ids []lrc.IntervalID) ([]int, map[int][]lrc.IntervalID) {
	g := make(map[int][]lrc.IntervalID)
	var order []int
	for _, id := range ids {
		if _, ok := g[id.Node]; !ok {
			order = append(order, id.Node)
		}
		g[id.Node] = append(g[id.Node], id)
	}
	return order, g
}

// handleDiffReq services a demand or prefetch diff request: it lazily
// creates the diff for this node's undiffed write notice if that notice is
// requested, then replies with every requested diff.
func (n *Node) handleDiffReq(req *msgDiffReq) {
	ps := n.page(req.Page)
	var cost sim.Time
	items := make([]diffItem, 0, len(req.Wants))
	for _, id := range req.Wants {
		if id.Node != n.ID {
			n.pageInvariantf(req.Page, "node %d asked for diff created by node %d", n.ID, id.Node)
		}
		if ps.hasUndiffed && ps.undiffed == id {
			cost += n.makeOwnDiff(req.Page)
			if req.Prefetch {
				// The paper: prefetch requests are more expensive to
				// service since they split the interval on a dirty page.
				cost += n.C.PfSplit
			}
		}
		d, ok := n.storedDiff(id, req.Page)
		if !ok {
			n.pageInvariantf(req.Page, "node %d has no diff for %v page %d", n.ID, id, req.Page)
		}
		items = append(items, diffItem{ID: id, Diff: d})
	}
	reply := &msgDiffReply{Page: req.Page, Items: items, Prefetch: req.Prefetch}
	m := &netsim.Message{
		Src:      netsim.NodeID(n.ID),
		Dst:      netsim.NodeID(req.From),
		Size:     n.C.diffReplySize(items),
		Reliable: !req.Prefetch || n.PfReliable,
		Kind:     KindDiffReply,
		Payload:  reply,
	}
	if req.Prefetch {
		m.Kind = KindPfReply
	}
	done := n.CPU.Service(cost+n.C.MsgSend, sim.CatDSM)
	n.sendAfter(done, m)
}

// handleDiffReply stores arriving diffs and completes any in-flight demand
// fetch they satisfy.
func (n *Node) handleDiffReply(rep *msgDiffReply) {
	for _, it := range rep.Items {
		n.putDiff(it.ID, rep.Page, it.Diff, rep.Prefetch)
	}
	if pfst, ok := n.pf[rep.Page]; ok && rep.Prefetch && pfst.inflight > 0 {
		// Clamped: a fault-injected duplicate reply must not drive the
		// outstanding-request count negative.
		pfst.inflight--
	}

	f, ok := n.fetches[rep.Page]
	if !ok {
		return
	}
	for _, it := range rep.Items {
		delete(f.needed, it.ID)
	}
	if len(f.needed) > 0 {
		return
	}
	// All requested diffs arrived — but new write notices may have been
	// taken in while we waited (another thread acquiring a lock); if so,
	// keep fetching.
	if missing := n.missingDiffs(f.page); len(missing) > 0 {
		n.issueDiffRequests(f, missing, 0)
		return
	}
	cost := n.applyPending(f.page)
	done := n.CPU.Service(cost, sim.CatDSM)
	delete(n.fetches, f.page)
	n.bus.Emit(event.FetchDone(n.ID, int64(f.page), done-f.start))
	waiters := f.waiters
	n.K.At(done, func() {
		for _, w := range waiters {
			w()
		}
	})
}
