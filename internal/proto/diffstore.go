package proto

import (
	"godsm/internal/event"
	"godsm/internal/lrc"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// The chassis diff store: diffs keyed by (creator interval, page), shared
// by the diff-based coherence backends, the prefetcher and the garbage
// collector. HLRC uses only the twin/diff primitives (its diffs live at
// the page's home, applied on arrival, never stored).

// storedDiff fetches a stored diff; ok distinguishes "stored as empty".
func (n *Node) storedDiff(id lrc.IntervalID, p pagemem.PageID) (*pagemem.Diff, bool) {
	m, ok := n.diffs[id]
	if !ok {
		return nil, false
	}
	d, ok := m[p]
	return d, ok
}

func (n *Node) putDiff(id lrc.IntervalID, p pagemem.PageID, d *pagemem.Diff, prefetched bool) {
	m, ok := n.diffs[id]
	if !ok {
		m = make(map[pagemem.PageID]*pagemem.Diff)
		n.diffs[id] = m
	}
	if _, dup := m[p]; dup {
		return
	}
	m[p] = d
	if prefetched {
		n.pfHeap += int64(d.WireSize())
	} else {
		n.diffBytes += int64(d.WireSize())
	}
}

// makeOwnDiff lazily creates the diff for this node's undiffed write notice
// on page p (if any), clearing the twin. Returns the CPU cost incurred.
func (n *Node) makeOwnDiff(p pagemem.PageID) sim.Time {
	ps := n.page(p)
	if !ps.twinned {
		return 0
	}
	twin := n.Store.Twin(p)
	frame := n.Store.Frame(p)
	d := pagemem.MakeDiff(p, twin, frame)
	db := 0
	if d != nil {
		db = d.DataBytes()
	}
	n.bus.Emit(event.DiffMake(n.ID, int64(p), db))
	cost := n.C.DiffMake + sim.Time(n.C.DiffScanNs*float64(pagemem.PageSize))
	n.Store.DropTwin(p)
	ps.twinned = false

	// Attribute the diff to the undiffed notice. If the page was twinned
	// during the still-open interval (no closed notice yet), close the
	// interval now — the paper's "interval split" on prefetch of a dirty
	// page; demand requests can only name closed notices, so for them the
	// undiffed notice always exists.
	if !ps.hasUndiffed {
		if iv := n.closeInterval(); iv == nil || !ps.hasUndiffed {
			n.pageInvariantf(p, "dirty page %d without a notice after interval close", p)
		}
	}
	id := ps.undiffed
	ps.hasUndiffed = false
	if d == nil {
		d = &pagemem.Diff{Page: p} // store an explicit empty diff
	}
	n.putDiff(id, p, d, false)
	return cost
}

// applyPending applies every pending diff for p, in causal order, to the
// local frame. All pending diffs must be present locally. Returns the CPU
// cost.
//
// If the page is locally dirty, the node's own modifications are committed
// as a diff FIRST (TreadMarks's rule). Otherwise later local writes —
// which may causally depend on the remote data being applied now — would
// ride in the old (concurrent) interval's lazily-created diff, and a third
// node applying diffs in causal order would order the dependency backwards.
func (n *Node) applyPending(p pagemem.PageID) sim.Time {
	ps := n.page(p)
	if len(ps.pending) == 0 {
		return 0
	}
	var cost sim.Time
	if ps.twinned {
		cost += n.makeOwnDiff(p)
	}

	ivs := make([]*lrc.Interval, 0, len(ps.pending))
	for _, id := range ps.pending {
		iv := n.ivs[id.Node][id.Seq-1]
		if iv == nil {
			n.pageInvariantf(p, "pending interval %v on page %d without record", id, p)
		}
		ivs = append(ivs, iv)
	}
	lrc.SortCausally(ivs)

	frame := n.Store.Frame(p)
	for _, iv := range ivs {
		d, ok := n.storedDiff(iv.ID, p)
		if !ok {
			n.pageInvariantf(p, "node %d applying page %d without diff for %v",
				n.ID, p, iv.ID)
		}
		if d != nil && len(d.Runs) > 0 {
			n.bus.Emit(event.DiffApply(n.ID, int64(p), d.DataBytes()))
			d.Apply(frame)
			cost += n.C.DiffApply + sim.Time(n.C.ApplyNs*float64(d.DataBytes()))
		} else {
			cost += n.C.DiffApply / 2
		}
	}
	ps.pending = ps.pending[:0]
	return cost
}

// missingDiffs lists the pending intervals for p whose diffs are not yet
// held locally.
func (n *Node) missingDiffs(p pagemem.PageID) []lrc.IntervalID {
	ps := n.page(p)
	var out []lrc.IntervalID
	for _, id := range ps.pending {
		if _, ok := n.storedDiff(id, p); !ok {
			out = append(out, id)
		}
	}
	return out
}
