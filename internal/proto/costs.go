package proto

import (
	"godsm/internal/netsim"
	"godsm/internal/sim"
)

// Costs is the CPU cost model for protocol operations, calibrated so that
// an uncontended remote page miss lands in the several-hundred-microsecond
// range of the paper's 133 MHz RS/6000 + ATM platform. All values are
// virtual nanoseconds; per-byte values multiply byte counts.
type Costs struct {
	MsgSend sim.Time // per message sent (protocol + UDP stack)
	MsgRecv sim.Time // per message received
	MTSig   sim.Time // extra per arrival when multithreading (async signal)

	FaultEntry sim.Time // entering the fault handler, lookup, bookkeeping
	TwinMake   sim.Time // copying a page to create its twin
	DiffScanNs float64  // per byte compared when creating a diff
	DiffMake   sim.Time // fixed part of diff creation
	DiffApply  sim.Time // fixed part of applying one diff
	ApplyNs    float64  // per modified byte applied
	NoticeProc sim.Time // per write notice processed at intake
	IntervalOp sim.Time // closing/creating an interval record

	LockMgr    sim.Time // manager handling of an acquire request
	GrantMake  sim.Time // building a grant (plus notice bytes)
	BarrierMgr sim.Time // manager work per barrier arrival

	PfIssue sim.Time // per prefetch request message issued (paper: ~140 µs)
	PfCheck sim.Time // dropped (unnecessary) prefetch check
	PfSplit sim.Time // extra server work when a prefetch hits a dirty page

	CtxSwitch sim.Time // thread context switch (paper: ~110 µs)

	HeaderBytes  int // per-message wire header
	ReqBytes     int // diff/lock request payload
	PerNoticeByt int // per write notice on the wire
}

// DefaultCosts returns the calibrated defaults described in DESIGN.md.
func DefaultCosts() Costs {
	return Costs{
		MsgSend: 35 * sim.Microsecond,
		MsgRecv: 35 * sim.Microsecond,
		MTSig:   30 * sim.Microsecond,

		FaultEntry: 20 * sim.Microsecond,
		TwinMake:   20 * sim.Microsecond,
		DiffScanNs: 10,
		DiffMake:   20 * sim.Microsecond,
		DiffApply:  10 * sim.Microsecond,
		ApplyNs:    15,
		NoticeProc: 1 * sim.Microsecond,
		IntervalOp: 5 * sim.Microsecond,

		LockMgr:    25 * sim.Microsecond,
		GrantMake:  30 * sim.Microsecond,
		BarrierMgr: 40 * sim.Microsecond,

		PfIssue: 140 * sim.Microsecond,
		PfCheck: 2 * sim.Microsecond,
		PfSplit: 20 * sim.Microsecond,

		CtxSwitch: 110 * sim.Microsecond,

		HeaderBytes:  40,
		ReqBytes:     24,
		PerNoticeByt: 8,
	}
}

// Charging helpers. Every message leaving a node pays its CPU send cost
// (MsgSend and friends, charged through CPU.Service by the caller) before
// it reaches the wire. The two helpers below are the only sanctioned
// routes from protocol code to the network; dsmvet's chargecost analyzer
// flags direct Node.Send/Node.xmit calls anywhere else, so a message
// cannot leave a node for free.

// sendAfter schedules m to be transmitted once the sending CPU work
// charged for it completes at time t. Transmission goes through the
// transport choke point (a plain network send when no transport is
// enabled).
func (n *Node) sendAfter(t sim.Time, m *netsim.Message) {
	n.K.At(t, func() { n.xmit(m) }) //dsmvet:allow chargecost — choke point: t is the send charge's completion time
}

// sendUnreliable schedules the unsequenced message m to be transmitted at
// time done (the completion of its CPU charge), invoking onDrop in kernel
// context if the network drops it. Prefetch-class traffic uses it: loss is
// tolerated by design, so drops feed pacing counters instead of the
// reliable transport's retransmission machinery.
func (n *Node) sendUnreliable(done sim.Time, m *netsim.Message, onDrop func()) {
	n.K.At(done, func() {
		if n.Send(m) < 0 { //dsmvet:allow chargecost — choke point for lossy datagrams; charged by the caller
			onDrop()
		}
	})
}
