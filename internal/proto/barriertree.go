package proto

import (
	"godsm/internal/event"
	"godsm/internal/lrc"
	"godsm/internal/netsim"
	"godsm/internal/sim"
)

// Combining-tree barrier (Config.Barrier: "tree"). The centralized barrier
// (barrier.go) makes node 0 do O(N) work per episode: N arrivals to record
// and N-1 releases to build, each release scanning the arriver's missing
// intervals. The combining tree spreads that work over interior nodes: the
// processors form a k-ary heap (parent(i) = (i-1)/k), arrivals combine
// interval/VC payloads up the tree, and releases fan down, so no node
// touches more than fanout+1 messages per episode.
//
// Equivalence with the central barrier: a depth-one tree (fanout >= N-1)
// has node 0 as the parent of every other node, all of them leaves. Leaf
// arrivals then carry exactly the central barrier's wire format (MinVC and
// GCWant stay zero), the root's combine step performs the central manager's
// arrival bookkeeping verbatim (same recordDeferred calls, same BarrierMgr
// charging, same merge-flush-check sequence), and the root's release loop
// visits children 1..N-1 in ascending order with the same per-child
// missingIvs filter — so the run is byte-identical to the central barrier's.
// A regression test (barriertree_test.go) compares the full report
// fingerprints.
//
// Determinism: the tree shape is a pure function of (N, fanout); arrivals
// are processed in simulated-delivery order, which the kernel fixes; VC
// combining is element-wise max/min, which is order-independent. No
// randomness, no map iteration.
//
// Interior nodes act as servers the same way the central manager does:
// subtree records are taken in deferred (no local invalidation) until the
// node itself passes the barrier, at which point the release's intake
// flips them to invalidated.
type treeBarrier struct {
	n        *Node
	fanout   int
	parent   int
	children []int  // direct children, ascending
	leafKid  []bool // leafKid[i]: children[i] has no children of its own

	// Combining state for the episode in progress. Episodes cannot
	// overlap: a subtree member arrives at barrier B+1 only after B's
	// release traveled down through this node.
	barID   int
	selfVC  lrc.VC   // local arrival VC; nil until the local thread arrives
	childVC []lrc.VC // per child slot: subtree max VC; nil = not arrived
	childMn []lrc.VC // per child slot: subtree min VC
	arrived int
	accIvs  []*lrc.Interval // subtree records accumulated for the up-message
	accAcc  []PageAcc       // subtree access counters (dynamic policies only)
	gcWant  bool
	start   sim.Time // when the local thread arrived (stall metric origin)
	wait    func()   // local continuation

	// Saved by the up-send for the release fan-down (non-root only).
	relMin []lrc.VC
}

func newTreeBarrier(n *Node, fanout int) *treeBarrier {
	if fanout == 0 {
		fanout = DefaultBarrierFanout
	}
	tb := &treeBarrier{n: n, fanout: fanout, parent: (n.ID - 1) / fanout}
	for c := n.ID*fanout + 1; c <= n.ID*fanout+fanout && c < n.N; c++ {
		tb.children = append(tb.children, c)
		tb.leafKid = append(tb.leafKid, c*fanout+1 >= n.N)
	}
	tb.childVC = make([]lrc.VC, len(tb.children))
	tb.childMn = make([]lrc.VC, len(tb.children))
	return tb
}

// vcMinInto lowers dst to the element-wise minimum of dst and o.
func vcMinInto(dst, o lrc.VC) {
	for i := range dst {
		if o[i] < dst[i] {
			dst[i] = o[i]
		}
	}
}

// Barrier is the local thread's arrival. Leaves ship the central barrier's
// arrival message to their parent; combining nodes (and the root) fold the
// local arrival into their combine state directly, consulting the GC policy
// for the local storage figure exactly as the central manager does.
func (tb *treeBarrier) Barrier(id int, onRelease func()) {
	n := tb.n
	n.closeInterval()
	own := n.ownSinceBarrier
	n.ownSinceBarrier = nil
	n.bus.Emit(event.BarArrive(n.ID, id))
	tb.start = n.K.Now()
	tb.wait = onRelease

	acc := n.episodeAcc()
	if len(tb.children) == 0 && n.ID != 0 {
		size := n.C.HeaderBytes + 4*n.N + n.C.ivsWireSize(own, n.N) + accWireSize(acc)
		done := n.CPU.Service(n.C.MsgSend, sim.CatDSM)
		n.sendAfter(done, &netsim.Message{
			Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(tb.parent),
			Size: size, Reliable: true, Kind: KindBarArrive,
			Payload: &msgBarArrive{Barrier: id, From: n.ID, VC: n.vc.Clone(), Ivs: own,
				DiffBytes: n.diffBytes, Acc: acc},
		})
		return
	}
	tb.arrive(&msgBarArrive{Barrier: id, From: n.ID, VC: n.vc.Clone(), Ivs: own,
		DiffBytes: n.gc.ReportBytes(), Acc: acc})
}

// arrive folds one arrival (the local thread's or a child subtree's) into
// the combine state; the last arrival triggers the root release or the
// upward combined message.
func (tb *treeBarrier) arrive(a *msgBarArrive) {
	n := tb.n
	if tb.arrived == 0 {
		tb.barID = a.Barrier
	} else if tb.barID != a.Barrier {
		n.invariantf("node %d combining barrier %d got arrival for barrier %d",
			n.ID, tb.barID, a.Barrier)
	}

	if a.From == n.ID {
		if tb.selfVC != nil {
			n.invariantf("duplicate local barrier arrival at node %d", n.ID)
		}
		tb.selfVC = a.VC.Clone()
	} else {
		pos := -1
		for i, c := range tb.children {
			if c == a.From {
				pos = i
			}
		}
		if pos < 0 {
			n.invariantf("node %d got barrier arrival from %d, not a tree child", n.ID, a.From)
		}
		if tb.childVC[pos] != nil {
			n.invariantf("duplicate barrier arrival from %d", a.From)
		}
		tb.childVC[pos] = a.VC.Clone()
		mn := a.MinVC
		if mn == nil {
			mn = a.VC // a leaf's arrival VC is its subtree minimum
		}
		tb.childMn[pos] = mn.Clone()
		if a.GCWant {
			tb.gcWant = true
		}
	}
	if n.gc.Exceeds(a.DiffBytes) {
		tb.gcWant = true
	}

	cost := n.C.BarrierMgr
	for _, iv := range a.Ivs {
		cost += n.recordDeferred(iv)
	}
	tb.accIvs = append(tb.accIvs, a.Ivs...)
	tb.accAcc = append(tb.accAcc, a.Acc...)
	tb.arrived++
	if tb.arrived < len(tb.children)+1 {
		n.CPU.Service(cost, sim.CatDSM)
		return
	}
	if n.ID == 0 {
		tb.rootComplete(cost)
		return
	}
	tb.sendUp(cost)
}

// reset clears the combine state for the next episode, returning the slots
// the release fan-down still needs.
func (tb *treeBarrier) reset() (childVC, childMn []lrc.VC) {
	childVC, childMn = tb.childVC, tb.childMn
	tb.childVC = make([]lrc.VC, len(tb.children))
	tb.childMn = make([]lrc.VC, len(tb.children))
	tb.selfVC = nil
	tb.arrived = 0
	tb.accIvs = nil
	tb.accAcc = nil
	return childVC, childMn
}

// rootComplete runs the central manager's release sequence at the tree
// root: merge every subtree's VC, flush deferred invalidations, then fan
// releases to the direct children in ascending order, filtering each by its
// subtree's minimum VC (for a leaf child, its arrival VC — the central
// barrier's exact filter).
func (tb *treeBarrier) rootComplete(cost sim.Time) {
	n := tb.n
	n.vc.Merge(tb.selfVC)
	for i := range tb.children {
		n.vc.Merge(tb.childVC[i])
	}
	n.flushDeferred()
	n.checkContiguity()
	n.gossipCover(n.vc)
	moves := n.decideMoves(tb.accAcc)

	id := tb.barID
	gc := tb.gcWant
	start := tb.start
	wait := tb.wait
	tb.gcWant = false
	tb.wait = nil
	childVC, childMn := tb.reset()

	for i, c := range tb.children {
		var ivs []*lrc.Interval
		if tb.leafKid[i] {
			ivs = n.missingIvs(childVC[i], c)
		} else {
			ivs = n.missingIvs(childMn[i], -1)
		}
		size := n.C.HeaderBytes + 4*n.N + n.C.ivsWireSize(ivs, n.N) + movesWireSize(moves)
		cost += n.C.MsgSend
		done := n.CPU.Service(cost, sim.CatDSM)
		cost = 0
		n.sendAfter(done, &netsim.Message{
			Src: 0, Dst: netsim.NodeID(c),
			Size: size, Reliable: true, Kind: KindBarRelease,
			Payload: &msgBarRelease{Barrier: id, VC: n.vc.Clone(), Ivs: ivs, GC: gc,
				Moves: moves},
		})
	}
	n.applyMoves(moves)
	done := n.CPU.Service(cost, sim.CatDSM)
	n.bus.Emit(event.BarRelease(n.ID, id, done-start))
	if gc {
		n.K.At(done, func() { n.gc.Begin(wait) })
		return
	}
	n.K.At(done, wait)
}

// sendUp ships the combined subtree arrival to the parent: max VC for the
// global merge, min VC for release filtering, every subtree record, and the
// subtree's GC verdict. The local storage figure was already checked here,
// so DiffBytes is zero.
func (tb *treeBarrier) sendUp(cost sim.Time) {
	n := tb.n
	maxVC := tb.selfVC.Clone()
	minVC := tb.selfVC.Clone()
	for i := range tb.children {
		maxVC.Merge(tb.childVC[i])
		vcMinInto(minVC, tb.childMn[i])
	}
	id := tb.barID
	gcw := tb.gcWant
	ivs := tb.accIvs
	acc := tb.accAcc
	_, childMn := tb.reset()
	tb.relMin = childMn

	size := n.C.HeaderBytes + 8 + 8*n.N + n.C.ivsWireSize(ivs, n.N) + accWireSize(acc)
	cost += n.C.MsgSend
	done := n.CPU.Service(cost, sim.CatDSM)
	n.sendAfter(done, &netsim.Message{
		Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(tb.parent),
		Size: size, Reliable: true, Kind: KindBarArrive,
		Payload: &msgBarArrive{Barrier: id, From: n.ID, VC: maxVC, Ivs: ivs,
			MinVC: minVC, GCWant: gcw, Acc: acc},
	})
}

// handleRelease completes the barrier at this node: take in the parent's
// records and merged VC (which also flips this node's deferred subtree
// records to invalidated), forward the release down the tree, then resume
// the local waiter. At a leaf the loop is empty and the body is the central
// barrier's handleBarRelease verbatim.
func (tb *treeBarrier) handleRelease(r *msgBarRelease) {
	n := tb.n
	cost := n.intake(r.Ivs, r.VC)
	n.flushDeferred() // safety net: any deferred record not named in r.Ivs
	n.gossipCover(r.VC)

	relMin := tb.relMin
	tb.relMin = nil
	for i, c := range tb.children {
		if relMin == nil || relMin[i] == nil {
			n.invariantf("node %d releasing barrier %d without a combined arrival from %d",
				n.ID, r.Barrier, c)
		}
		var ivs []*lrc.Interval
		if tb.leafKid[i] {
			ivs = n.missingIvs(relMin[i], c)
		} else {
			ivs = n.missingIvs(relMin[i], -1)
		}
		size := n.C.HeaderBytes + 4*n.N + n.C.ivsWireSize(ivs, n.N) + movesWireSize(r.Moves)
		cost += n.C.MsgSend
		done := n.CPU.Service(cost, sim.CatDSM)
		cost = 0
		n.sendAfter(done, &netsim.Message{
			Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(c),
			Size: size, Reliable: true, Kind: KindBarRelease,
			Payload: &msgBarRelease{Barrier: r.Barrier, VC: n.vc.Clone(), Ivs: ivs, GC: r.GC,
				Moves: r.Moves},
		})
	}
	n.applyMoves(r.Moves)
	done := n.CPU.Service(cost, sim.CatDSM)
	n.bus.Emit(event.BarRelease(n.ID, r.Barrier, done-tb.start))
	cb := tb.wait
	tb.wait = nil
	if cb == nil {
		n.invariantf("node %d got barrier release with no waiter", n.ID)
	}
	if r.GC {
		n.K.At(done, func() { n.gc.Begin(cb) })
		return
	}
	n.K.At(done, cb)
}
