package proto

import (
	"godsm/internal/event"
	"godsm/internal/lrc"
	"godsm/internal/netsim"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// hlrcPrefetcher is the whole-page prefetch policy of the home-based
// backend: a prefetch asks the page's home for a copy covering the pending
// intervals, and the reply lands in a per-page cache consumed at the real
// access (the same separate-heap accounting as LRC's diff cache, one page
// per entry).
type hlrcPrefetcher struct {
	n        *Node
	coh      *hlrcCoherence
	throttle int  // drop every throttle-th prefetch (0 = never)
	counter  int  // dynamic prefetch count for the throttle
	reliable bool // send prefetch traffic reliably

	cache map[pagemem.PageID]*pfPage
}

// pfPage is one cached whole-page prefetch reply.
type pfPage struct {
	data   []byte
	covers map[lrc.IntervalID]bool // intervals the snapshot is known to cover
}

// take removes and returns the cached copy of p, if any, releasing its
// prefetch-heap accounting. A fault always consumes the entry: either it
// hits, or the copy is stale and worthless.
func (pf *hlrcPrefetcher) take(p pagemem.PageID) *pfPage {
	pg, ok := pf.cache[p]
	if !ok {
		return nil
	}
	delete(pf.cache, p)
	pf.n.pfHeap -= pagemem.PageSize
	return pg
}

// drop discards any cached copy of p: a home move or mode switch makes the
// snapshot's covers untrustworthy for the new era.
func (pf *hlrcPrefetcher) drop(p pagemem.PageID) { pf.take(p) }

// cacheReply stores an arriving prefetch reply. Duplicates (the lossy path
// can retransmit nothing, but a fault plan can duplicate) merge into the
// existing entry without double-counting the heap.
func (pf *hlrcPrefetcher) cacheReply(rep *msgPageReply) {
	n := pf.n
	if st, ok := n.pf[rep.Page]; ok && st.inflight > 0 {
		st.inflight--
	}
	pg, ok := pf.cache[rep.Page]
	if !ok {
		pg = &pfPage{covers: make(map[lrc.IntervalID]bool)}
		pf.cache[rep.Page] = pg
		n.pfHeap += pagemem.PageSize
	}
	pg.data = append(pg.data[:0], rep.Data...)
	if pf.coh.dyn {
		// Under a dynamic home policy successive replies can come from
		// different servers (the home moved mid-flight), so a union of
		// covers could claim intervals the latest data does not contain.
		// Keep each entry a self-consistent (data, covers) pair instead.
		pg.covers = make(map[lrc.IntervalID]bool, len(rep.Covers))
	}
	for _, id := range rep.Covers {
		pg.covers[id] = true
	}
}

// Prefetch issues a whole-page prefetch to p's home. Pages homed here never
// need one (home faults are message-free), and a cached copy that already
// covers everything pending makes a new request pointless.
func (pf *hlrcPrefetcher) Prefetch(p pagemem.PageID) int {
	n := pf.n
	n.bus.Emit(event.PfCall(n.ID, int64(p)))

	if pf.throttle > 0 {
		pf.counter++
		if pf.counter%pf.throttle == 0 {
			n.bus.Emit(event.PfThrottle(n.ID, int64(p)))
			n.CPU.Service(n.C.PfCheck, sim.CatPrefetchOv)
			return 0
		}
	}

	if n.PageValid(p) || n.fetches[p] != nil || pf.coh.home(p) == n.ID {
		n.bus.Emit(event.PfUnnecessary(n.ID, int64(p)))
		n.CPU.Service(n.C.PfCheck, sim.CatPrefetchOv)
		return 0
	}
	if st, ok := n.pf[p]; ok && st.inflight > 0 {
		n.bus.Emit(event.PfUnnecessary(n.ID, int64(p)))
		n.CPU.Service(n.C.PfCheck, sim.CatPrefetchOv)
		return 0
	}
	ps := n.page(p)
	if pg, ok := pf.cache[p]; ok && !anyOutsideSet(ps.pending, pg.covers) {
		n.bus.Emit(event.PfUnnecessary(n.ID, int64(p)))
		n.CPU.Service(n.C.PfCheck, sim.CatPrefetchOv)
		return 0
	}

	st, ok := n.pf[p]
	if !ok {
		st = &pfState{requested: make(map[lrc.IntervalID]bool)}
		n.pf[p] = st
	}
	need := append([]lrc.IntervalID(nil), ps.pending...)
	for _, id := range need {
		st.requested[id] = true
	}
	st.inflight++
	n.bus.Emit(event.PfIssue(n.ID, int64(p), 1))
	done := n.CPU.Service(n.C.PfIssue, sim.CatPrefetchOv)
	n.sendUnreliable(done, &netsim.Message{
		Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(pf.coh.home(p)),
		Size:     n.C.HeaderBytes + n.C.ReqBytes + 12*len(need),
		Reliable: pf.reliable,
		Kind:     KindPfReq,
		Payload:  &msgPageReq{From: n.ID, Page: p, Need: need, Prefetch: true},
	}, func() { n.bus.Emit(event.PfReqDrop(n.ID, int64(p))) })
	return 1
}
