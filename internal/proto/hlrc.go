package proto

import (
	"godsm/internal/event"
	"godsm/internal/lrc"
	"godsm/internal/netsim"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// Home-based lazy release consistency (the "hlrc" backend). Every page has
// a static home node (page id mod N). Writers flush their diffs to the home
// eagerly when an interval closes, so the home's frame is always the most
// complete copy; a faulting node fetches the whole page from the home
// instead of collecting diffs from every writer. Consistency metadata
// (intervals, write notices, vector times) still flows lazily through the
// synchronization messages exactly as under LRC — only the data movement
// changes. Since diffs are applied at the home on arrival and never stored,
// there is no diff accumulation and no garbage collection.
//
// Ordering argument: a flush precedes any later request by the same node to
// the same home (per-pair FIFO, preserved by the reliable transport), so by
// the time the home serves a request the requester's own writes are already
// in the home frame, and a writer's flushed intervals arrive in increasing
// sequence order — which lets the home compress "intervals applied" into a
// per-page vector time (applied), with max sequence equal to full coverage.

// msgHomeFlush carries one interval's diff of one page to the page's home.
type msgHomeFlush struct {
	From int
	ID   lrc.IntervalID
	Page pagemem.PageID
	Diff *pagemem.Diff // nil when the twin comparison found no changes
}

// msgPageReq asks the home for a copy of Page covering the Need intervals.
// Prefetch requests use the same shape, served immediately with whatever
// the home currently covers.
type msgPageReq struct {
	From     int
	Page     pagemem.PageID
	Need     []lrc.IntervalID
	Prefetch bool
}

// msgPageReply returns a whole-page snapshot and the intervals it covers.
type msgPageReply struct {
	Page     pagemem.PageID
	Data     []byte
	Covers   []lrc.IntervalID
	Prefetch bool
}

// hlrcCoherence implements the home-based coherence policy.
type hlrcCoherence struct {
	n          *Node
	pf         *hlrcPrefetcher
	pfReliable bool

	// Home assignment: the table replica plus the policy that moves it.
	// dyn enables the dynamic machinery (counters, transfers, the notice
	// filter); false keeps the engine byte-identical to fixed mod-N homes.
	// track enables per-page access counting for the barrier arrivals (off
	// when this instance is embedded in the adaptive backend, which counts
	// at its own layer).
	homes  *homeTable
	policy HomePolicy
	dyn    bool
	track  bool
	acc    *accSet

	// Home-side: applied[p][q] is the highest flushed interval sequence of
	// writer q applied to this node's frame of home page p.
	applied map[pagemem.PageID]lrc.VC

	// Home-side: demand requests waiting for flushes still in flight.
	parked map[pagemem.PageID][]*msgPageReq

	// Requester-side: every interval id already requested from the home
	// for the page's in-flight fetch (grows across re-requests).
	asked map[pagemem.PageID]map[lrc.IntervalID]bool

	// Dynamic-policy state (nil map reads are safe, so these stay nil under
	// the static policy): pages whose home base has not been installed here
	// yet, and pages this node was home for and transferred away.
	xin  map[pagemem.PageID]*xferIn
	away map[pagemem.PageID]bool
}

func (c *hlrcCoherence) home(p pagemem.PageID) int { return c.homes.home(p) }

// covered reports (at the home) whether interval id's writes to page p are
// already in the local frame. The home's own intervals are always covered:
// its writes go straight to its frame.
func (c *hlrcCoherence) covered(p pagemem.PageID, id lrc.IntervalID) bool {
	if id.Node == c.n.ID {
		return true
	}
	ap := c.applied[p]
	return ap != nil && ap[id.Node] >= id.Seq
}

// AfterClose eagerly turns every page written during the interval into a
// diff and flushes it to the page's home. Pages homed here need no message:
// the local frame already holds the writes (covered() knows). Twins are
// dropped either way — under HLRC a diff never needs to be recreated.
func (c *hlrcCoherence) AfterClose(iv *lrc.Interval) {
	n := c.n
	var cost sim.Time
	for _, p := range iv.Pages {
		cost = c.flushPage(iv.ID, p, cost)
	}
	if cost > 0 {
		n.CPU.Service(cost, sim.CatDSM)
	}
}

// flushPage diffs one just-closed page and flushes it to its home. cost is
// the running CPU charge accumulated by the caller; sends drain it and the
// remainder is returned for the caller to charge.
func (c *hlrcCoherence) flushPage(id lrc.IntervalID, p pagemem.PageID, cost sim.Time) sim.Time {
	n := c.n
	ps := n.page(p)
	if !ps.twinned {
		n.pageInvariantf(p, "interval page %d lost its twin before the flush", p)
	}
	d := pagemem.MakeDiff(p, n.Store.Twin(p), n.Store.Frame(p))
	db := 0
	if d != nil {
		db = d.DataBytes()
	}
	n.bus.Emit(event.DiffMake(n.ID, int64(p), db))
	cost += n.C.DiffMake + sim.Time(n.C.DiffScanNs*float64(pagemem.PageSize))
	n.Store.DropTwin(p)
	ps.twinned = false
	ps.hasUndiffed = false
	if c.track {
		cl := c.acc.cell(p)
		cl.writes++
	}
	home := c.home(p)
	if home == n.ID {
		if st := c.xin[p]; st != nil && !st.fill {
			// Our base is in flight here: the install would clobber these
			// writes, so route them through the buffered-flush replay.
			st.buf = append(st.buf, &msgHomeFlush{From: n.ID, ID: id, Page: p, Diff: d})
		}
		return cost
	}
	if c.track {
		c.acc.cells[p].bytes += int64(db)
	}
	n.bus.Emit(event.HomeFlush(n.ID, home, int64(p), db))
	cost += n.C.MsgSend
	done := n.CPU.Service(cost, sim.CatDSM)
	n.sendAfter(done, c.flushMsg(home, &msgHomeFlush{From: n.ID, ID: id, Page: p, Diff: d}))
	return 0
}

// Handle dispatches the home-based coherence messages.
func (c *hlrcCoherence) Handle(m *netsim.Message) bool {
	switch pl := m.Payload.(type) {
	case *msgHomeFlush:
		c.handleHomeFlush(pl)
	case *msgPageReq:
		c.handlePageReq(pl)
	case *msgPageReply:
		c.handlePageReply(pl)
	case *msgHomeXfer:
		c.handleHomeXfer(pl)
	default:
		return false
	}
	return true
}
