package proto

import (
	"testing"

	"godsm/internal/pagemem"
)

// Home-policy white-box tests: the page→home table's mod-N mapping at
// awkward cluster sizes, the access aggregation, and the per-policy Decide
// rules, plus end-to-end flush/fetch on non-power-of-two clusters.

// acc is a shorthand PageAcc constructor for Decide-rule tests.
func acc(page pagemem.PageID, node, writes, faults int, bytes int64) PageAcc {
	return PageAcc{Page: page, Node: int32(node),
		Writes: int32(writes), Faults: int32(faults), Bytes: bytes}
}

// The default mapping must be page mod N for every page — including page 0,
// the wrap-around pages right at multiples of N, and pages far beyond any
// allocation — and an override must displace exactly its own page.
func TestHomeTableNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{2, 3, 5, 7, 8} {
		tbl := newHomeTable(n)
		pages := []pagemem.PageID{0, 1, pagemem.PageID(n - 1), pagemem.PageID(n),
			pagemem.PageID(2*n + 1), 1<<20 + 3}
		for _, p := range pages {
			if got, want := tbl.home(p), int(p)%n; got != want {
				t.Errorf("n=%d: home(%d) = %d, want %d", n, p, got, want)
			}
		}
		tbl.overrides[pagemem.PageID(n)] = int32(n - 1)
		if got := tbl.home(pagemem.PageID(n)); got != n-1 {
			t.Errorf("n=%d: override ignored, home = %d", n, got)
		}
		if got := tbl.home(pagemem.PageID(2 * n)); got != 0 {
			t.Errorf("n=%d: override leaked to page %d (home %d)", n, 2*n, got)
		}
	}
}

// aggregateAcc must merge repeated records for the same page/node and sort
// the totals by page id.
func TestAggregateAccMergesAndSorts(t *testing.T) {
	agg := aggregateAcc(3, []PageAcc{
		acc(9, 2, 1, 0, 100),
		acc(4, 0, 0, 2, 50),
		acc(9, 2, 1, 3, 20),
		acc(9, 1, 0, 1, 0),
	})
	if len(agg) != 2 || agg[0].page != 4 || agg[1].page != 9 {
		t.Fatalf("aggregate pages = %+v, want [4 9]", agg)
	}
	w, f, _, b := agg[1].total()
	if w != 2 || f != 4 || b != 120 {
		t.Fatalf("page 9 totals = writes %d faults %d bytes %d, want 2/4/120", w, f, b)
	}
	wc, sole := agg[1].writers()
	if wc != 1 || sole != 2 {
		t.Fatalf("page 9 writers = %d (sole %d), want 1 (sole 2)", wc, sole)
	}
}

func TestNewHomePolicyNames(t *testing.T) {
	for _, name := range append([]string{""}, HomePolicies()...) {
		pol, err := newHomePolicy(name)
		if err != nil {
			t.Fatalf("newHomePolicy(%q): %v", name, err)
		}
		if name != "" && pol.Name() != name {
			t.Errorf("policy %q reports name %q", name, pol.Name())
		}
		if name == "" && pol.Name() != "static" {
			t.Errorf("empty policy name resolved to %q, want static", pol.Name())
		}
	}
	if _, err := newHomePolicy("bogus"); err == nil {
		t.Fatal("newHomePolicy accepted an unknown name")
	}
	if staticPol, _ := newHomePolicy("static"); staticPol.Dynamic() {
		t.Fatal("static policy claims to be dynamic")
	}
}

// First-touch claims a page once, for the node with the highest score
// (writes double), ties to the lowest node; a claimed page never moves again.
func TestFirstTouchDecide(t *testing.T) {
	tbl := newHomeTable(4)
	pol, _ := newHomePolicy("firsttouch")

	// Node 2's one write (score 2) beats node 1's one fault (score 1).
	moves := pol.Decide(tbl, aggregateAcc(4, []PageAcc{
		acc(7, 1, 0, 1, 0),
		acc(7, 2, 1, 0, 10),
	}))
	if len(moves) != 1 || moves[0].Page != 7 || moves[0].Home != 2 {
		t.Fatalf("moves = %+v, want page 7 -> node 2", moves)
	}
	tbl.overrides[7] = 2

	// Claimed: even a dominant new writer cannot move it.
	moves = pol.Decide(tbl, aggregateAcc(4, []PageAcc{
		acc(7, 3, 9, 9, 0),
	}))
	if len(moves) != 0 {
		t.Fatalf("claimed page moved again: %+v", moves)
	}

	// Tie on score goes to the lowest node id.
	moves = pol.Decide(tbl, aggregateAcc(4, []PageAcc{
		acc(8, 3, 1, 0, 0),
		acc(8, 1, 1, 0, 0),
	}))
	if len(moves) != 1 || moves[0].Home != 1 {
		t.Fatalf("tie moves = %+v, want page 8 -> node 1", moves)
	}
}

// Migrate needs a challenger with more than twice the current home's score
// and at least migrateMinScore, and at most one move per page every
// migrateHold episodes.
func TestMigrateDecide(t *testing.T) {
	tbl := newHomeTable(4)
	pol, _ := newHomePolicy("migrate")

	// Page 5 is homed at node 1 (5 mod 4). Node 3: 2 writes + 1 fault = 5,
	// home: 1 write = 2. 5 > 2*2 -> move.
	ep1 := []PageAcc{
		acc(5, 1, 1, 0, 0),
		acc(5, 3, 2, 1, 0),
	}
	moves := pol.Decide(tbl, aggregateAcc(4, ep1))
	if len(moves) != 1 || moves[0].Page != 5 || moves[0].Home != 3 {
		t.Fatalf("moves = %+v, want page 5 -> node 3", moves)
	}
	tbl.overrides[5] = 3

	// Hysteresis: the same dominance the very next episode is held.
	if moves = pol.Decide(tbl, aggregateAcc(4, []PageAcc{
		acc(5, 3, 0, 0, 0),
		acc(5, 0, 3, 0, 0),
	})); len(moves) != 0 {
		t.Fatalf("page moved again within the hold window: %+v", moves)
	}

	// After the hold expires the dominant node takes it.
	if moves = pol.Decide(tbl, aggregateAcc(4, []PageAcc{
		acc(5, 3, 0, 0, 0),
		acc(5, 0, 3, 0, 0),
	})); len(moves) != 1 || moves[0].Home != 0 {
		t.Fatalf("post-hold moves = %+v, want page 5 -> node 0", moves)
	}
	tbl.overrides[5] = 0

	// Mere improvement without 2x dominance stays put: 3 vs home's 2.
	if moves = pol.Decide(tbl, aggregateAcc(4, []PageAcc{
		acc(6, 2, 1, 0, 0),
		acc(6, 1, 1, 1, 0),
	})); len(moves) != 0 {
		t.Fatalf("non-dominant challenger moved the page: %+v", moves)
	}

	// A dominant but tiny score (1 fault vs idle home) is below the floor.
	if moves = pol.Decide(tbl, aggregateAcc(4, []PageAcc{
		acc(9, 0, 0, 1, 0),
	})); len(moves) != 0 {
		t.Fatalf("below-floor score moved the page: %+v", moves)
	}
}

// End to end on non-power-of-two clusters: the write must flush to the
// mod-N home and every other node must fetch the page from there.
func TestHLRCNonPowerOfTwoProcs(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		r := hlrcRig(n)

		// Every node's replica agrees on the mod-N map.
		for i, nd := range r.nodes {
			c := nd.coh.(*hlrcCoherence)
			for p := pagemem.PageID(0); p < pagemem.PageID(3*n); p++ {
				if got, want := c.home(p), int(p)%n; got != want {
					t.Fatalf("n=%d node %d: home(%d) = %d, want %d", n, i, p, got, want)
				}
			}
		}

		// Node 0 writes a page homed at the last node (wrap-around id).
		p := pagemem.PageID(2*n - 1)
		a := p.Base()
		r.k.At(0, func() { r.write(0, a, 9.5) })
		r.k.Run()
		r.barrierAll(0)

		flushes, _ := r.net.KindStats(KindHomeFlush)
		if flushes == 0 {
			t.Fatalf("n=%d: no home flush for page %d", n, p)
		}
		for i := 1; i < n; i++ {
			i := i
			if !r.nodes[i].PageValid(p) {
				done := false
				r.k.At(r.k.Now(), func() { r.nodes[i].Fault(p, func() { done = true }) })
				r.k.Run()
				if !done {
					t.Fatalf("n=%d node %d: fault on page %d never completed", n, i, p)
				}
			}
			if got := r.read(i, a); got != 9.5 {
				t.Fatalf("n=%d node %d: read %v, want 9.5", n, i, got)
			}
		}
		// The home itself resolved without page-request traffic.
		home := int(p) % n
		if got := r.read(home, a); got != 9.5 {
			t.Fatalf("n=%d: home read %v, want 9.5", n, got)
		}
	}
}
