package proto

import (
	"godsm/internal/event"
	"godsm/internal/lrc"
	"godsm/internal/netsim"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// lrcCoherence is the TreadMarks-style coherence policy: page faults fetch
// the missing diffs from their creators (request combining, causal apply),
// and diffs are created lazily on first demand. With eager set the same
// engine runs as eager release consistency: every interval close broadcasts
// its write notices to all nodes (Munin-style), while data still moves as
// lazily-fetched diffs.
type lrcCoherence struct {
	n          *Node
	eager      bool // broadcast write notices at every interval close (ERC)
	pfReliable bool // prefetch replies ride the reliable transport
}

// Fault resolves an access to an invalid page. onValid runs (in kernel
// context) once the page is valid; the caller is expected to park the
// faulting thread until then. Concurrent faults on the same page join the
// in-flight fetch (request combining). Must be called from kernel context
// with the page invalid.
func (c *lrcCoherence) Fault(p pagemem.PageID, onValid func()) {
	n := c.n
	if n.PageValid(p) {
		n.pageInvariantf(p, "Fault on valid page %d", p)
	}
	if f, ok := n.fetches[p]; ok {
		f.waiters = append(f.waiters, onValid)
		return
	}

	missing := n.missingDiffs(p)
	pfst := n.pf[p]
	delete(n.pf, p)

	if len(missing) == 0 {
		// Everything needed is already local (prefetch diff cache): apply
		// without any network traffic. This is the paper's "pf-hit".
		outcome := event.OutcomeNoPf
		if pfst != nil {
			outcome = event.OutcomePfHit
		}
		n.bus.Emit(event.FaultLocal(n.ID, int64(p), outcome))
		cost := n.C.FaultEntry + n.applyPending(p)
		done := n.CPU.Service(cost, sim.CatDSM)
		n.K.At(done, onValid)
		return
	}

	// Classify the fault for Figure 3.
	var outcome int64
	switch {
	case pfst == nil:
		outcome = event.OutcomeNoPf
	case anyOutside(missing, pfst.requested):
		outcome = event.OutcomePfInvalided
	default:
		outcome = event.OutcomePfLate
	}
	n.bus.Emit(event.FaultRemote(n.ID, int64(p), outcome, len(missing)))

	f := &fetch{
		page:    p,
		needed:  make(map[lrc.IntervalID]bool, len(missing)),
		waiters: []func(){onValid},
		start:   n.K.Now(),
	}
	n.fetches[p] = f
	c.issueDiffRequests(f, missing, n.C.FaultEntry)
}

func anyOutside(ids []lrc.IntervalID, set map[lrc.IntervalID]bool) bool {
	for _, id := range ids {
		if !set[id] {
			return true
		}
	}
	return false
}

// issueDiffRequests sends one reliable diff request per distinct creator
// for the missing intervals, charging extraCost plus per-message send cost.
func (c *lrcCoherence) issueDiffRequests(f *fetch, missing []lrc.IntervalID, extraCost sim.Time) {
	n := c.n
	nodes, groups := groupByNode(missing)
	var msgs []*netsim.Message
	for _, node := range nodes {
		ids := groups[node]
		for _, id := range ids {
			f.needed[id] = true
		}
		msgs = append(msgs, &netsim.Message{
			Src:      netsim.NodeID(n.ID),
			Dst:      netsim.NodeID(node),
			Size:     n.C.HeaderBytes + n.C.ReqBytes + 8*len(ids),
			Reliable: true,
			Kind:     KindDiffReq,
			Payload:  &msgDiffReq{From: n.ID, Page: f.page, Wants: ids},
		})
	}
	done := n.CPU.Service(extraCost+sim.Time(len(msgs))*n.C.MsgSend, sim.CatDSM)
	for _, m := range msgs {
		n.sendAfter(done, m)
	}
}

// groupByNode buckets interval ids by creator. The returned node list is in
// first-appearance order so that callers iterate deterministically.
func groupByNode(ids []lrc.IntervalID) ([]int, map[int][]lrc.IntervalID) {
	g := make(map[int][]lrc.IntervalID)
	var order []int
	for _, id := range ids {
		if _, ok := g[id.Node]; !ok {
			order = append(order, id.Node)
		}
		g[id.Node] = append(g[id.Node], id)
	}
	return order, g
}

// handleDiffReq services a demand or prefetch diff request: it lazily
// creates the diff for this node's undiffed write notice if that notice is
// requested, then replies with every requested diff.
func (c *lrcCoherence) handleDiffReq(req *msgDiffReq) {
	n := c.n
	ps := n.page(req.Page)
	var cost sim.Time
	items := make([]diffItem, 0, len(req.Wants))
	for _, id := range req.Wants {
		if id.Node != n.ID {
			n.pageInvariantf(req.Page, "node %d asked for diff created by node %d", n.ID, id.Node)
		}
		if ps.hasUndiffed && ps.undiffed == id {
			cost += n.makeOwnDiff(req.Page)
			if req.Prefetch {
				// The paper: prefetch requests are more expensive to
				// service since they split the interval on a dirty page.
				cost += n.C.PfSplit
			}
		}
		d, ok := n.storedDiff(id, req.Page)
		if !ok {
			n.pageInvariantf(req.Page, "node %d has no diff for %v page %d", n.ID, id, req.Page)
		}
		items = append(items, diffItem{ID: id, Diff: d})
	}
	reply := &msgDiffReply{Page: req.Page, Items: items, Prefetch: req.Prefetch}
	m := &netsim.Message{
		Src:      netsim.NodeID(n.ID),
		Dst:      netsim.NodeID(req.From),
		Size:     n.C.diffReplySize(items),
		Reliable: !req.Prefetch || c.pfReliable,
		Kind:     KindDiffReply,
		Payload:  reply,
	}
	if req.Prefetch {
		m.Kind = KindPfReply
	}
	done := n.CPU.Service(cost+n.C.MsgSend, sim.CatDSM)
	n.sendAfter(done, m)
}

// handleDiffReply stores arriving diffs and completes any in-flight demand
// fetch they satisfy.
func (c *lrcCoherence) handleDiffReply(rep *msgDiffReply) {
	n := c.n
	for _, it := range rep.Items {
		n.putDiff(it.ID, rep.Page, it.Diff, rep.Prefetch)
	}
	if pfst, ok := n.pf[rep.Page]; ok && rep.Prefetch && pfst.inflight > 0 {
		// Clamped: a fault-injected duplicate reply must not drive the
		// outstanding-request count negative.
		pfst.inflight--
	}

	f, ok := n.fetches[rep.Page]
	if !ok {
		return
	}
	for _, it := range rep.Items {
		delete(f.needed, it.ID)
	}
	if len(f.needed) > 0 {
		return
	}
	// All requested diffs arrived — but new write notices may have been
	// taken in while we waited (another thread acquiring a lock); if so,
	// keep fetching.
	if missing := n.missingDiffs(f.page); len(missing) > 0 {
		c.issueDiffRequests(f, missing, 0)
		return
	}
	cost := n.applyPending(f.page)
	done := n.CPU.Service(cost, sim.CatDSM)
	delete(n.fetches, f.page)
	n.bus.Emit(event.FetchDone(n.ID, int64(f.page), done-f.start))
	waiters := f.waiters
	n.K.At(done, func() {
		for _, w := range waiters {
			w()
		}
	})
}

// AfterClose publishes the just-closed interval's write notices: to the
// gossip engine when one is configured (which replaces ERC's O(N)
// broadcast and pre-spreads notices under plain LRC), else by broadcast
// when running as eager release consistency. The lazy default does nothing.
func (c *lrcCoherence) AfterClose(iv *lrc.Interval) {
	if c.n.gossip != nil {
		c.n.gossip.Publish(iv)
		return
	}
	if c.eager {
		c.broadcastNotice(iv)
	}
}

// broadcastNotice pushes a just-closed interval's write notices to every
// other node (eager release consistency).
func (c *lrcCoherence) broadcastNotice(iv *lrc.Interval) {
	n := c.n
	size := n.C.HeaderBytes + 8 + 4*n.N + n.C.PerNoticeByt*len(iv.Pages)
	var cost sim.Time
	for q := 0; q < n.N; q++ {
		if q == n.ID {
			continue
		}
		cost += n.C.MsgSend
		done := n.CPU.Service(cost, sim.CatDSM)
		cost = 0
		n.sendAfter(done, &netsim.Message{
			Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(q),
			Size: size, Reliable: true, Kind: KindEagerNotice,
			Payload: &msgEagerNotice{Iv: iv},
		})
	}
}

// handleEagerNotice records and applies an eagerly-pushed write notice.
// Only the creator's own vector entry is advanced: per-pair FIFO delivery
// guarantees the creator's records arrive contiguously, and advancing it
// keeps this node's subsequent intervals causally after the data they may
// come to depend on. Third-party entries of the interval's VC are NOT
// merged (their records may not have arrived yet).
func (c *lrcCoherence) handleEagerNotice(m *msgEagerNotice) {
	n := c.n
	iv := m.Iv
	cost := n.recordInterval(iv)
	if n.vc[iv.ID.Node] < iv.ID.Seq {
		n.vc[iv.ID.Node] = iv.ID.Seq
	}
	n.CPU.Service(cost, sim.CatDSM)
}

// Handle dispatches the diff-fetch and eager-notice messages.
func (c *lrcCoherence) Handle(m *netsim.Message) bool {
	switch pl := m.Payload.(type) {
	case *msgDiffReq:
		c.handleDiffReq(pl)
	case *msgDiffReply:
		c.handleDiffReply(pl)
	case *msgEagerNotice:
		c.handleEagerNotice(pl)
	default:
		return false
	}
	return true
}
