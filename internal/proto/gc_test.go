package proto

import (
	"testing"

	"godsm/internal/pagemem"
)

// gcRig writes distinct pages from both nodes across barriers with a tiny
// GC threshold, forcing collections, and checks correctness afterwards.
func TestGCCollectsAndPreservesData(t *testing.T) {
	r := newRigCfg(2, Config{GCThreshold: 1}) // collect at every barrier with any diff stored
	// Round 1: node 0 writes page 1, node 1 writes page 2; barrier; both
	// read both pages (creating diffs); barrier (GC fires).
	r.k.At(0, func() {
		r.write(0, pagemem.Addr(1*pagemem.PageSize), 11)
		r.write(1, pagemem.Addr(2*pagemem.PageSize), 22)
	})
	r.k.Run()
	r.barrierAll(0)
	done := 0
	r.k.At(r.k.Now(), func() {
		r.nodes[0].Fault(2, func() { done++ })
		r.nodes[1].Fault(1, func() { done++ })
	})
	r.k.Run()
	if done != 2 {
		t.Fatal("cross faults did not complete")
	}
	r.barrierAll(1) // GC triggers here (diffBytes > 1)

	if r.st[0].GCRuns == 0 || r.st[1].GCRuns == 0 {
		t.Fatalf("GC did not run: %d/%d", r.st[0].GCRuns, r.st[1].GCRuns)
	}
	for i, nd := range r.nodes {
		if nd.DiffHeapBytes() != 0 {
			t.Errorf("node %d still holds %d diff bytes after GC", i, nd.DiffHeapBytes())
		}
	}
	// Data must survive the collection.
	if got := r.read(0, pagemem.Addr(2*pagemem.PageSize)); got != 22 {
		t.Fatalf("node 0 lost data after GC: %v", got)
	}
	if got := r.read(1, pagemem.Addr(1*pagemem.PageSize)); got != 11 {
		t.Fatalf("node 1 lost data after GC: %v", got)
	}

	// Round 2: the protocol must keep working after the flush.
	r.k.At(r.k.Now(), func() { r.write(0, pagemem.Addr(1*pagemem.PageSize), 33) })
	r.k.Run()
	r.barrierAll(2)
	done2 := false
	r.k.At(r.k.Now(), func() { r.nodes[1].Fault(1, func() { done2 = true }) })
	r.k.Run()
	if !done2 {
		t.Fatal("post-GC fault never completed")
	}
	if got := r.read(1, pagemem.Addr(1*pagemem.PageSize)); got != 33 {
		t.Fatalf("post-GC read = %v, want 33", got)
	}
}

// TestGCValidatesPendingPages: a node with invalid pages at the GC barrier
// must fetch them during validation, not lose the notices.
func TestGCValidatesPendingPages(t *testing.T) {
	r := newRigCfg(3, Config{GCThreshold: 1})
	r.k.At(0, func() {
		r.write(0, pagemem.Addr(1*pagemem.PageSize), 5)
		r.write(1, pagemem.Addr(2*pagemem.PageSize), 6)
		r.write(2, pagemem.Addr(3*pagemem.PageSize), 7)
	})
	r.k.Run()
	r.barrierAll(0) // everyone has pending notices for the others' pages
	// One demand fetch creates a stored diff, arming the GC trigger; the
	// other pages stay pending so the collection has real validation work.
	fetched := false
	r.k.At(r.k.Now(), func() { r.nodes[0].Fault(2, func() { fetched = true }) })
	r.k.Run()
	if !fetched {
		t.Fatal("priming fault never completed")
	}
	r.barrierAll(1) // GC: validation must fetch everything

	for i := 0; i < 3; i++ {
		if !r.nodes[i].PageValid(1) || !r.nodes[i].PageValid(2) || !r.nodes[i].PageValid(3) {
			t.Fatalf("node %d still has invalid pages after GC validation", i)
		}
	}
	for i := 0; i < 3; i++ {
		if got := r.read(i, pagemem.Addr(1*pagemem.PageSize)); got != 5 {
			t.Errorf("node %d page1 = %v", i, got)
		}
		if got := r.read(i, pagemem.Addr(2*pagemem.PageSize)); got != 6 {
			t.Errorf("node %d page2 = %v", i, got)
		}
		if got := r.read(i, pagemem.Addr(3*pagemem.PageSize)); got != 7 {
			t.Errorf("node %d page3 = %v", i, got)
		}
	}
	if r.st[0].GCRuns != 1 {
		t.Fatalf("GC runs = %d, want 1", r.st[0].GCRuns)
	}
	if r.st[0].GCTime <= 0 {
		t.Fatal("no GC time recorded")
	}
}

// TestGCDisabledByDefault: with no threshold the collector never runs.
func TestGCDisabledByDefault(t *testing.T) {
	r := newRig(2)
	r.k.At(0, func() { r.write(0, pagemem.Addr(1*pagemem.PageSize), 1) })
	r.k.Run()
	r.barrierAll(0)
	r.barrierAll(1)
	if r.st[0].GCRuns != 0 {
		t.Fatal("GC ran without a threshold")
	}
}
