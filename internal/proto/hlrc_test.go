package proto

import (
	"testing"

	"godsm/internal/pagemem"
)

// HLRC white-box tests: diffs flush to each page's home at release, homes
// apply them eagerly, and faults fetch whole pages from the home.

func hlrcRig(n int) *rig { return newRigCfg(n, Config{Protocol: "hlrc"}) }

// A remote write must reach the page's home at the barrier, and a non-home
// reader must fetch the page (not diffs) from the home.
func TestHLRCFlushAndPageFetch(t *testing.T) {
	r := hlrcRig(3)
	// page 1 is homed at node 1; node 0 writes it.
	r.k.At(0, func() { r.write(0, page0, 42) })
	r.k.Run()
	r.barrierAll(0)

	// The home received the flush eagerly: its fault completes locally,
	// without any page-request traffic.
	homeDone := false
	r.k.At(r.k.Now(), func() { r.nodes[1].Fault(1, func() { homeDone = true }) })
	r.k.Run()
	if !homeDone {
		t.Fatal("home fault never completed")
	}
	if got := r.read(1, page0); got != 42 {
		t.Fatalf("home read = %v, want 42", got)
	}
	flushes, _ := r.net.KindStats(KindHomeFlush)
	if flushes == 0 {
		t.Fatal("no home-flush messages observed")
	}
	if reqs, _ := r.net.KindStats(KindPageReq); reqs != 0 {
		t.Fatalf("home fault sent %d page requests, want 0", reqs)
	}

	// A third node faults and fetches the whole page from the home.
	if r.nodes[2].PageValid(1) {
		t.Fatal("node 2 should have been invalidated by the barrier notice")
	}
	done := false
	r.k.At(r.k.Now(), func() { r.nodes[2].Fault(1, func() { done = true }) })
	r.k.Run()
	if !done {
		t.Fatal("page fetch never completed")
	}
	if got := r.read(2, page0); got != 42 {
		t.Fatalf("fetched read = %v, want 42", got)
	}
	reqs, _ := r.net.KindStats(KindPageReq)
	if reqs == 0 {
		t.Fatal("no page-request messages observed")
	}
}

// A home node faulting on its own page before the writer's flush arrives
// must park (message-free) and complete when the flush lands.
func TestHLRCHomeFaultWaitsForFlush(t *testing.T) {
	r := hlrcRig(2)
	// page 1 is homed at node 1; node 0 writes it twice across a barrier so
	// node 1 holds a pending notice, then reads at the home.
	r.k.At(0, func() { r.write(0, page0, 7) })
	r.k.Run()
	r.barrierAll(0)
	done := false
	r.k.At(r.k.Now(), func() { r.nodes[1].Fault(1, func() { done = true }) })
	r.k.Run()
	if !done {
		t.Fatal("home fault never completed")
	}
	if got := r.read(1, page0); got != 7 {
		t.Fatalf("home read = %v, want 7", got)
	}
	// The home never sends page requests for its own pages.
	reqs, _ := r.net.KindStats(KindPageReq)
	if reqs != 0 {
		t.Fatalf("home fault sent %d page requests, want 0", reqs)
	}
}

// Writers on distinct pages with interleaved barriers: every node converges
// on every page's final value (multi-writer flush ordering).
func TestHLRCConvergenceAcrossBarriers(t *testing.T) {
	r := hlrcRig(3)
	pages := []pagemem.Addr{
		pagemem.Addr(1 * pagemem.PageSize),
		pagemem.Addr(2 * pagemem.PageSize),
		pagemem.Addr(3 * pagemem.PageSize),
	}
	for round := 0; round < 3; round++ {
		round := round
		r.k.At(r.k.Now(), func() {
			for nd := 0; nd < 3; nd++ {
				a := pages[(nd+round)%3]
				p := pagemem.PageOf(a)
				nd := nd
				if !r.nodes[nd].PageValid(p) {
					r.nodes[nd].Fault(p, func() {
						r.write(nd, a, float64(10*round+nd))
					})
				} else {
					r.write(nd, a, float64(10*round+nd))
				}
			}
		})
		r.k.Run()
		r.barrierAll(round)
	}
	// Final round was round 2: node nd wrote pages[(nd+2)%3] = 20+nd.
	for nd := 0; nd < 3; nd++ {
		want := float64(20 + nd)
		a := pages[(nd+2)%3]
		for reader := 0; reader < 3; reader++ {
			reader := reader
			p := pagemem.PageOf(a)
			if !r.nodes[reader].PageValid(p) {
				ok := false
				r.k.At(r.k.Now(), func() { r.nodes[reader].Fault(p, func() { ok = true }) })
				r.k.Run()
				if !ok {
					t.Fatalf("reader %d fault on page %d never completed", reader, p)
				}
			}
			if got := r.read(reader, a); got != want {
				t.Fatalf("node %d reads page %d = %v, want %v", reader, p, got, want)
			}
		}
	}
}

// Locks carry write notices under HLRC exactly as under LRC: a reader
// acquiring the lock after a writer sees the write.
func TestHLRCLockCarriesNotices(t *testing.T) {
	r := hlrcRig(2)
	acquireRelease(t, r, 0, 1, 0, func() { r.write(0, page0, 5) })
	r.k.Run()
	seen := false
	r.k.At(r.k.Now()+1000, func() {
		node := r.nodes[1]
		run := func() {
			if node.PageValid(1) {
				seen = r.read(1, page0) == 5
				node.ReleaseLock(1)
				return
			}
			node.Fault(1, func() {
				seen = r.read(1, page0) == 5
				node.ReleaseLock(1)
			})
		}
		if node.AcquireLock(1, run) {
			run()
		}
	})
	r.k.Run()
	if !seen {
		t.Fatal("node 1 did not observe the lock-protected write")
	}
}
