package proto

import (
	"sort"

	"godsm/internal/event"
	"godsm/internal/lrc"
	"godsm/internal/netsim"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// Home migration for the "hlrc" backend's dynamic policies. When the
// barrier root decides a page moves, every replica updates its home table
// in lockstep at release intake; the demoted home then ships its frame (the
// base) plus the applied vector to the new home, and keeps forwarding any
// late flushes that still arrive addressed to it. The new home buffers
// flushes and parks demand requests until the base lands, installs it, and
// replays the buffer — the per-writer sequence guard in handleHomeFlush
// makes the replay idempotent against anything the base already covered.
//
// Ordering argument: a demand request can never reach a demoted home,
// because moves apply at barrier releases and no demand fetch is in flight
// across a barrier (the faulting thread has not arrived). Prefetch requests
// CAN span the episode; a node whose frame is not the live home copy
// answers them with an empty cover list, which the requester's cache check
// (pending ⊆ covers) can never accept for an invalid page.
//
// Back-to-back episodes can demote a home-elect before its base arrives
// (the release outruns the transfer). The install then degenerates to a
// forward: the intermediate node relays the base and its buffered flushes
// to the next home over one FIFO pair, preserving their order.

// msgHomeXfer ships a demoted home's base copy of a page to the new home.
type msgHomeXfer struct {
	From    int
	Page    pagemem.PageID
	Data    []byte
	Applied lrc.VC // per-writer flushed-interval coverage of Data
}

// xferIn tracks one page whose home base has not yet been installed here.
type xferIn struct {
	buf       []*msgHomeFlush // flushes buffered until the base installs
	xfer      *msgHomeXfer    // the base, when it arrives before our release
	expecting bool            // our release named us the new home
	forward   bool            // demoted again before install: relay instead
	fill      bool            // adaptive backend: base comes from a local diff fill
}

// ivNames reports whether interval iv wrote page p (Pages is sorted).
func ivNames(iv *lrc.Interval, p pagemem.PageID) bool {
	i := sort.Search(len(iv.Pages), func(i int) bool { return iv.Pages[i] >= p })
	return i < len(iv.Pages) && iv.Pages[i] == p
}

// coverVC returns, per writer, the highest sequence through which every
// interval naming p is reflected in the local frame. Intervals that do not
// name p are vacuously covered, so the count runs from the applied
// high-water mark up to the first unapplied interval that names the page.
// The node's own writes go straight to its frame, so its own entry is its
// full vector-time entry.
func (c *hlrcCoherence) coverVC(p pagemem.PageID) lrc.VC {
	n := c.n
	ap := c.applied[p]
	cv := lrc.NewVC(n.N)
	for q := 0; q < n.N; q++ {
		if q == n.ID {
			cv[q] = n.vc[q]
			continue
		}
		var s int32
		if ap != nil {
			s = ap[q]
		}
		for s < n.vc[q] {
			iv := n.ivs[q][s]
			if iv == nil || ivNames(iv, p) {
				break
			}
			s++
		}
		cv[q] = s
	}
	return cv
}

// flushMsg builds the wire message for one home flush addressed to `to`.
func (c *hlrcCoherence) flushMsg(to int, fl *msgHomeFlush) *netsim.Message {
	n := c.n
	return &netsim.Message{
		Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(to),
		Size:     n.C.HeaderBytes + 20 + fl.Diff.WireSize(),
		Reliable: true, Kind: KindHomeFlush,
		Payload: fl,
	}
}

// sendXfer ships the base copy of p to its new home, freezing this node's
// serving state. cost is the running CPU charge; the send drains it.
func (c *hlrcCoherence) sendXfer(p pagemem.PageID, to int, cost sim.Time) sim.Time {
	n := c.n
	c.away[p] = true
	data := append([]byte(nil), n.Store.Frame(p)...)
	cost += n.C.MsgSend + sim.Time(n.C.DiffScanNs*float64(pagemem.PageSize))
	done := n.CPU.Service(cost, sim.CatDSM)
	n.sendAfter(done, &netsim.Message{
		Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(to),
		Size:     n.C.HeaderBytes + pagemem.PageSize + 4*n.N + 8,
		Reliable: true, Kind: KindHomeXfer,
		Payload: &msgHomeXfer{From: n.ID, Page: p, Data: data, Applied: c.coverVC(p)},
	})
	return 0
}

// handleHomeXfer receives a base transfer. If our own release has not
// arrived yet the base is stashed; applyMoves completes the install.
func (c *hlrcCoherence) handleHomeXfer(x *msgHomeXfer) {
	n := c.n
	p := x.Page
	st := c.xin[p]
	if st == nil {
		st = &xferIn{}
		c.xin[p] = st
	}
	if st.xfer != nil || st.fill {
		n.pageInvariantf(p, "node %d got a second base transfer for page %d", n.ID, p)
	}
	st.xfer = x
	c.maybeInstall(p, st)
}

// maybeInstall completes a pending transfer once both the base and this
// node's own release decision are in.
func (c *hlrcCoherence) maybeInstall(p pagemem.PageID, st *xferIn) {
	if st.xfer == nil {
		return
	}
	if st.forward {
		c.forwardXfer(p, st)
		return
	}
	if !st.expecting {
		return
	}
	c.installXfer(p, st)
}

// forwardXfer relays a base (and the flushes buffered behind it) to the
// page's next home: this node was demoted again before its install. One
// FIFO pair keeps base-before-flushes ordering at the receiver.
func (c *hlrcCoherence) forwardXfer(p pagemem.PageID, st *xferIn) {
	n := c.n
	to := c.home(p)
	buf := st.buf
	x := st.xfer
	delete(c.xin, p)
	c.away[p] = true
	done := n.CPU.Service(n.C.MsgSend, sim.CatDSM)
	n.sendAfter(done, &netsim.Message{
		Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(to),
		Size:     n.C.HeaderBytes + pagemem.PageSize + 4*n.N + 8,
		Reliable: true, Kind: KindHomeXfer,
		Payload: x,
	})
	for _, fl := range buf {
		done = n.CPU.Service(n.C.MsgSend, sim.CatDSM)
		n.sendAfter(done, c.flushMsg(to, fl))
	}
}

// installXfer installs an arrived base: snapshot any open local writes,
// overwrite the frame, replay the buffered flushes in arrival order (they
// are mutually concurrent, hence byte-disjoint under race freedom), then
// re-apply the open writes on top and refresh the twin so the eventual
// local diff captures only them.
func (c *hlrcCoherence) installXfer(p pagemem.PageID, st *xferIn) {
	n := c.n
	ps := n.page(p)
	x := st.xfer
	var lm *pagemem.Diff
	if ps.twinned {
		lm = pagemem.MakeDiff(p, n.Store.Twin(p), n.Store.Frame(p))
	}
	copy(n.Store.Frame(p), x.Data)
	c.applied[p] = x.Applied.Clone()
	buf := st.buf
	delete(c.xin, p)

	n.bus.Emit(event.HomeMigrate(n.ID, x.From, int64(p), pagemem.PageSize))
	done := n.CPU.Service(n.C.DiffApply+sim.Time(n.C.ApplyNs*float64(pagemem.PageSize)), sim.CatDSM)
	for _, fl := range buf {
		c.handleHomeFlush(fl)
	}
	if ps.twinned {
		copy(n.Store.Twin(p), n.Store.Frame(p))
		if lm != nil && len(lm.Runs) > 0 {
			lm.Apply(n.Store.Frame(p))
		}
	}
	c.serveParked(p)
	c.completeHomeFetch(p, done)
}

// episodeAcc drains this node's per-page counters for a barrier arrival.
func (c *hlrcCoherence) episodeAcc() []PageAcc {
	if !c.track {
		return nil
	}
	return c.acc.drain(c.n.ID)
}

// decideMoves runs the configured policy at the barrier root.
func (c *hlrcCoherence) decideMoves(acc []PageAcc) []HomeMove {
	if !c.dyn {
		return nil
	}
	return c.policy.Decide(c.homes, aggregateAcc(c.n.N, acc))
}

// applyMoves updates this node's home-table replica and starts the base
// transfer for pages this node just lost. It runs after release intake on
// every node, before threads resume.
func (c *hlrcCoherence) applyMoves(moves []HomeMove) {
	n := c.n
	var cost sim.Time
	for _, mv := range moves {
		if mv.Mode != ModeNone {
			n.invariantf("hlrc got a mode-switch move for page %d", mv.Page)
		}
		p := mv.Page
		old := c.home(p)
		nh := int(mv.Home)
		c.homes.overrides[p] = mv.Home
		cost += n.C.IntervalOp
		if nh == old {
			continue // first-touch freezing the page on its static home
		}
		if old == n.ID {
			if len(c.parked[p]) > 0 {
				n.pageInvariantf(p, "node %d demoted from page %d with parked demand requests", n.ID, p)
			}
			if st := c.xin[p]; st != nil {
				// Demoted before our own base arrived: relay it when it lands.
				st.forward = true
				st.expecting = false
				c.maybeInstall(p, st)
				continue
			}
			cost = c.sendXfer(p, nh, cost)
			continue
		}
		if nh == n.ID {
			delete(c.away, p)
			delete(c.applied, p) // stale coverage from an earlier tenure
			c.pf.drop(p)         // cached copies predate the new tenure
			st := c.xin[p]
			if st == nil {
				st = &xferIn{}
				c.xin[p] = st
			}
			st.expecting = true
			c.maybeInstall(p, st)
		}
	}
	if cost > 0 {
		n.CPU.Service(cost, sim.CatDSM)
	}
}

// filterNotice implements the home-aware write-notice filter: a notice for
// a page homed here whose flush is already applied carries no new data, so
// the invalidation is suppressed. Inactive under the static policy to keep
// the fixed-home engine byte-identical.
func (c *hlrcCoherence) filterNotice(p pagemem.PageID, id lrc.IntervalID) bool {
	if !c.dyn {
		return false
	}
	if c.home(p) != c.n.ID || c.xin[p] != nil {
		return false
	}
	return c.covered(p, id)
}
