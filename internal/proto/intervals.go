package proto

import (
	"sort"

	"godsm/internal/event"
	"godsm/internal/lrc"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// Interval records and write-notice intake: the vector-time machinery every
// backend shares. Intervals close at release points; records propagate
// piggybacked on synchronization messages (and eagerly under ERC); intake
// invalidates the named pages and maintains the contiguity invariant.

// closeInterval ends the current open interval, publishing write notices
// for every page twinned during it, then hands the new record to the
// coherence policy's AfterClose hook (ERC broadcasts notices there, HLRC
// flushes diffs home). Returns the new interval record, or nil if the
// interval was empty (no pages twinned).
func (n *Node) closeInterval() *lrc.Interval {
	if len(n.pendingNotices) == 0 {
		return nil
	}
	pages := append([]pagemem.PageID(nil), n.pendingNotices...)
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	n.pendingNotices = n.pendingNotices[:0]

	n.vc[n.ID]++
	iv := &lrc.Interval{
		ID:    lrc.IntervalID{Node: n.ID, Seq: n.vc[n.ID]},
		VC:    n.vc.Clone(),
		Pages: pages,
	}
	n.bus.Emit(event.IntervalClose(n.ID, iv.ID.Seq, len(iv.Pages)))
	n.ivs[n.ID] = append(n.ivs[n.ID], iv)
	n.ownSinceBarrier = append(n.ownSinceBarrier, iv)
	for _, p := range pages {
		ps := n.page(p)
		if ps.hasUndiffed {
			n.pageInvariantf(p, "page %d already has an undiffed notice", p)
		}
		ps.undiffed = iv.ID
		ps.hasUndiffed = true
	}
	n.CPU.Service(n.C.IntervalOp, sim.CatDSM)
	n.coh.AfterClose(iv)
	return iv
}

// recordInterval adds a received interval record and invalidates the pages
// it names. Duplicate records are ignored, except that a record previously
// taken in deferred (server role — see recordDeferred) is invalidated now.
// Returns the CPU cost to charge.
func (n *Node) recordInterval(iv *lrc.Interval) sim.Time {
	q := iv.ID.Node
	if q == n.ID {
		return 0 // our own intervals are always already recorded
	}
	idx := int(iv.ID.Seq) - 1
	for len(n.ivs[q]) <= idx {
		n.ivs[q] = append(n.ivs[q], nil)
	}
	if n.ivs[q][idx] != nil {
		if n.deferredSet[iv.ID] {
			delete(n.deferredSet, iv.ID)
			n.invalidate(iv)
			return n.C.NoticeProc * sim.Time(1+len(iv.Pages))
		}
		return 0
	}
	n.ivs[q][idx] = iv
	n.bus.Emit(event.NoticeIn(n.ID, iv.ID.Node, iv.ID.Seq, len(iv.Pages)))
	n.invalidate(iv)
	return n.C.NoticeProc * sim.Time(1+len(iv.Pages))
}

// invalidate marks iv's pages pending at this node. The coherence policy's
// notice filter can prove a notice's data is already in the local frame (a
// home whose applied vector covers the flushed interval) and suppress the
// invalidation; static backends filter nothing.
func (n *Node) invalidate(iv *lrc.Interval) {
	for _, p := range iv.Pages {
		if n.nf != nil && n.nf.filterNotice(p, iv.ID) {
			continue
		}
		ps := n.page(p)
		ps.pending = append(ps.pending, iv.ID)
	}
}

// recordDeferred stores an interval record WITHOUT invalidating local pages.
// The barrier manager uses it for arrival intervals: acting as a server, it
// must be able to forward the records at release, but its own memory view
// must not change until it passes the barrier itself — otherwise diffs
// applied mid-critical-section would not be covered by its next interval's
// vector time, and third-party readers would order dependent writes
// backwards. flushDeferred performs the postponed invalidations.
func (n *Node) recordDeferred(iv *lrc.Interval) sim.Time {
	q := iv.ID.Node
	if q == n.ID {
		return 0
	}
	idx := int(iv.ID.Seq) - 1
	for len(n.ivs[q]) <= idx {
		n.ivs[q] = append(n.ivs[q], nil)
	}
	if n.ivs[q][idx] != nil {
		return 0 // already recorded (and invalidated) through a sync path
	}
	n.ivs[q][idx] = iv
	n.bus.Emit(event.NoticeIn(n.ID, iv.ID.Node, iv.ID.Seq, len(iv.Pages)))
	if n.deferredSet == nil {
		n.deferredSet = make(map[lrc.IntervalID]bool)
	}
	n.deferredSet[iv.ID] = true
	n.deferredInval = append(n.deferredInval, iv)
	return n.C.NoticeProc * sim.Time(1+len(iv.Pages))
}

// flushDeferred invalidates every deferred record that has not been
// invalidated through another path meanwhile.
func (n *Node) flushDeferred() {
	for _, iv := range n.deferredInval {
		if n.deferredSet[iv.ID] {
			delete(n.deferredSet, iv.ID)
			n.invalidate(iv)
		}
	}
	n.deferredInval = n.deferredInval[:0]
}

// intake processes a batch of interval records plus the sender's vector
// time, as delivered by a lock grant or barrier release. It returns the
// CPU cost to charge.
func (n *Node) intake(ivs []*lrc.Interval, v lrc.VC) sim.Time {
	var cost sim.Time
	for _, iv := range ivs {
		cost += n.recordInterval(iv)
	}
	n.vc.Merge(v)
	n.checkContiguity()
	return cost
}

// checkContiguity asserts the protocol invariant that the node holds a
// record for every interval its vector time covers.
func (n *Node) checkContiguity() {
	for q := 0; q < n.N; q++ {
		if q == n.ID {
			continue
		}
		if int32(len(n.ivs[q])) < n.vc[q] {
			n.invariantf("node %d VC[%d]=%d but only %d records",
				n.ID, q, n.vc[q], len(n.ivs[q]))
		}
		for s := n.gcBase[q]; s < n.vc[q]; s++ {
			if n.ivs[q][s] == nil {
				n.invariantf("node %d missing record (%d,%d) under VC %v",
					n.ID, q, s+1, n.vc)
			}
		}
	}
}

// missingIvs returns the interval records this node knows about that are
// not covered by v, excluding intervals created by `exclude` (pass -1 to
// exclude none). Used to build lock grants and barrier releases.
func (n *Node) missingIvs(v lrc.VC, exclude int) []*lrc.Interval {
	var out []*lrc.Interval
	for q := 0; q < n.N; q++ {
		if q == exclude {
			continue
		}
		for s := v[q]; s < n.vc[q]; s++ {
			iv := n.ivs[q][s]
			if iv == nil {
				n.invariantf("missingIvs hit a gap at (%d,%d)", q, s+1)
			}
			out = append(out, iv)
		}
	}
	return out
}
