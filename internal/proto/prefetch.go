package proto

import (
	"godsm/internal/event"
	"godsm/internal/lrc"
	"godsm/internal/netsim"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// lrcPrefetcher is the diff-based non-binding prefetch policy shared by the
// LRC and ERC backends: prefetch replies land diffs in the separate
// prefetch cache and are applied at the real access.
type lrcPrefetcher struct {
	n        *Node
	throttle int  // drop every throttle-th prefetch (0 = never)
	counter  int  // dynamic prefetch count for the throttle
	reliable bool // send prefetch traffic reliably
}

// Prefetch issues a software-controlled non-binding prefetch for page p,
// as inserted by the application (Section 3 of the paper). The call is
// non-blocking: replies land in the prefetch diff cache and are applied at
// the real access. Unnecessary prefetches — page valid, fetch already in
// flight, or all diffs already cached — are dropped after a cheap check.
// Prefetch request and reply messages are unreliable; if they are lost the
// real access simply performs a normal (reliable) fetch.
//
// It returns the number of request messages issued (0 for a dropped
// prefetch), which the caller can use for pacing decisions.
func (pf *lrcPrefetcher) Prefetch(p pagemem.PageID) int {
	n := pf.n
	n.bus.Emit(event.PfCall(n.ID, int64(p)))

	// Section 5.1: optional throttling (used for RADIX) discards a
	// fraction of dynamic prefetches to relieve the network.
	if pf.throttle > 0 {
		pf.counter++
		if pf.counter%pf.throttle == 0 {
			n.bus.Emit(event.PfThrottle(n.ID, int64(p)))
			n.CPU.Service(n.C.PfCheck, sim.CatPrefetchOv)
			return 0
		}
	}

	if n.PageValid(p) || n.fetches[p] != nil {
		n.bus.Emit(event.PfUnnecessary(n.ID, int64(p)))
		n.CPU.Service(n.C.PfCheck, sim.CatPrefetchOv)
		return 0
	}
	if st, ok := n.pf[p]; ok && st.inflight > 0 {
		n.bus.Emit(event.PfUnnecessary(n.ID, int64(p)))
		n.CPU.Service(n.C.PfCheck, sim.CatPrefetchOv)
		return 0
	}
	missing := n.missingDiffs(p)
	if len(missing) == 0 {
		// Invalid but fully cached already — nothing to request.
		n.bus.Emit(event.PfUnnecessary(n.ID, int64(p)))
		n.CPU.Service(n.C.PfCheck, sim.CatPrefetchOv)
		return 0
	}

	st, ok := n.pf[p]
	if !ok {
		st = &pfState{requested: make(map[lrc.IntervalID]bool)}
		n.pf[p] = st
	}
	nodes, groups := groupByNode(missing)
	var msgs []*netsim.Message
	for _, node := range nodes {
		ids := groups[node]
		for _, id := range ids {
			st.requested[id] = true
		}
		msgs = append(msgs, &netsim.Message{
			Src:      netsim.NodeID(n.ID),
			Dst:      netsim.NodeID(node),
			Size:     n.C.HeaderBytes + n.C.ReqBytes + 8*len(ids),
			Reliable: pf.reliable,
			Kind:     KindPfReq,
			Payload:  &msgDiffReq{From: n.ID, Page: p, Wants: ids, Prefetch: true},
		})
	}
	st.inflight += len(msgs)
	n.bus.Emit(event.PfIssue(n.ID, int64(p), len(msgs)))
	// The paper charges ~140 µs of software overhead per prefetch that
	// generates remote messages; additional messages to further writers of
	// the same page cost one send each.
	cost := n.C.PfIssue + sim.Time(len(msgs)-1)*n.C.MsgSend
	done := n.CPU.Service(cost, sim.CatPrefetchOv)
	for _, m := range msgs {
		n.sendUnreliable(done, m, func() { n.bus.Emit(event.PfReqDrop(n.ID, int64(p))) })
	}
	return len(msgs)
}
