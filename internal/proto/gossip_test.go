package proto

import (
	"fmt"
	"testing"

	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// Gossip dissemination property tests. The scenario gives gossip no help:
// every node acquires its own lock (distinct locks never exchange
// consistency information), writes its own page, and releases — closing one
// interval per node — and no barrier ever runs. The only channel by which
// node q can learn node c's write notice is the gossip push graph.

// runGossipProgram drives the scenario on n nodes under cfg and returns the
// drained rig.
func runGossipProgram(t *testing.T, n int, cfg Config) *rig {
	t.Helper()
	r := newRigCfg(n, cfg)
	for i := 0; i < n; i++ {
		addr := pagemem.Addr(i+1) * pagemem.PageSize
		node, a := i, addr
		acquireRelease(t, r, node, node, sim.Time(node)*10*sim.Microsecond,
			func() { r.write(node, a, float64(node)) })
	}
	r.k.Run()
	return r
}

// checkConverged asserts every notice reached every node exactly once:
// each node holds exactly one record per foreign creator, its vector time
// covers it, and the written page is invalidated.
func checkConverged(t *testing.T, r *rig) {
	t.Helper()
	n := len(r.nodes)
	for q := 0; q < n; q++ {
		for c := 0; c < n; c++ {
			if c == q {
				continue
			}
			ivs := r.nodes[q].ivs[c]
			if len(ivs) != 1 || ivs[0] == nil {
				t.Fatalf("node %d holds %d records from %d, want exactly 1", q, len(ivs), c)
			}
			if got := r.nodes[q].vc[c]; got != 1 {
				t.Fatalf("node %d vector time for %d = %d, want 1", q, c, got)
			}
			if r.nodes[q].PageValid(pagemem.PageID(c + 1)) {
				t.Fatalf("node %d did not invalidate node %d's page", q, c)
			}
		}
	}
}

// TestGossipConvergence: with the ring successor guaranteeing a strongly
// connected push graph, every record reaches every node, is applied once,
// and the total message count respects the k*N-per-record termination
// bound.
func TestGossipConvergence(t *testing.T) {
	const n = 8
	r := runGossipProgram(t, n, Config{Protocol: "erc", Gossip: true, GossipSeed: 11})
	checkConverged(t, r)

	msgs, _ := r.net.KindStats(KindGossip)
	if msgs == 0 {
		t.Fatal("no gossip messages at all; dissemination used another channel")
	}
	if limit := int64(DefaultGossipFanout * n * n); msgs > limit {
		t.Fatalf("%d gossip messages for %d records exceeds the k*N bound %d", msgs, n, limit)
	}
	// ERC's broadcast must be fully replaced, not supplemented.
	if bc, _ := r.net.KindStats(KindEagerNotice); bc != 0 {
		t.Fatalf("%d eager-notice broadcasts alongside gossip", bc)
	}
}

// gossipFingerprint summarizes everything observable about a run: final
// simulated time, per-kind traffic, and every node's collected statistics.
func gossipFingerprint(r *rig) string {
	msgs, bytes := r.net.KindStats(KindGossip)
	return fmt.Sprintf("now=%d gossip=%d/%d st=%+v", r.k.Now(), msgs, bytes, r.st)
}

// TestGossipDeterminism: equal seeds reproduce a run byte for byte;
// a different seed still converges (via a different peer graph).
func TestGossipDeterminism(t *testing.T) {
	cfg := Config{Protocol: "erc", Gossip: true, GossipSeed: 11}
	a := runGossipProgram(t, 8, cfg)
	b := runGossipProgram(t, 8, cfg)
	if fa, fb := gossipFingerprint(a), gossipFingerprint(b); fa != fb {
		t.Fatalf("same seed, different runs:\n1st: %s\n2nd: %s", fa, fb)
	}
	checkConverged(t, runGossipProgram(t, 8, Config{Protocol: "erc", Gossip: true, GossipSeed: 12}))
}

// TestGossipQuiescesAtBarriers: a barrier release hands every node the
// records it was missing and a vector time covering them; gossip must drop
// its pending pushes instead of re-disseminating what the barrier already
// delivered. The round interval is pinned well past the barrier's
// completion, so a correct implementation sends no gossip messages at all.
func TestGossipQuiescesAtBarriers(t *testing.T) {
	const n = 8
	r := newRigCfg(n, Config{Protocol: "erc", Gossip: true, GossipSeed: 11,
		GossipInterval: 10 * sim.Millisecond})
	for i := 0; i < n; i++ {
		addr := pagemem.Addr(i+1) * pagemem.PageSize
		node, a := i, addr
		acquireRelease(t, r, node, node, sim.Time(node)*10*sim.Microsecond,
			func() { r.write(node, a, float64(node)) })
	}
	r.k.At(200*sim.Microsecond, func() {
		for _, nd := range r.nodes {
			nd.Barrier(0, func() {})
		}
	})
	r.k.Run()

	checkConverged(t, r)
	if msgs, _ := r.net.KindStats(KindGossip); msgs != 0 {
		t.Fatalf("%d gossip messages re-disseminated records the barrier had already delivered", msgs)
	}
}
