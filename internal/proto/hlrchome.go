package proto

import (
	"godsm/internal/event"
	"godsm/internal/lrc"
	"godsm/internal/netsim"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// The home side of the "hlrc" backend: applying arriving flushes to the
// home frame, parking demand requests until their covering flushes land,
// and serving whole-page copies (see hlrc.go for the protocol overview).

// handleHomeFlush applies an arriving diff to the home frame and advances
// the applied vector, then serves whatever the new coverage unblocks.
// Duplicates (fault-injected retransmissions that slipped past the
// transport) are dropped by the sequence guard.
func (c *hlrcCoherence) handleHomeFlush(fl *msgHomeFlush) {
	n := c.n
	if st := c.xin[fl.Page]; st != nil {
		// Our base is still in flight: buffer until the install replays us.
		st.buf = append(st.buf, fl)
		return
	}
	if c.home(fl.Page) != n.ID {
		if c.dyn {
			if c.away[fl.Page] {
				// Late flush for a page transferred away: relay it.
				done := n.CPU.Service(n.C.MsgSend, sim.CatDSM)
				n.sendAfter(done, c.flushMsg(c.home(fl.Page), fl))
				return
			}
			// The writer's release (naming us the new home) outran ours:
			// start buffering; our own release completes the picture.
			st := &xferIn{buf: []*msgHomeFlush{fl}}
			c.xin[fl.Page] = st
			return
		}
		n.pageInvariantf(fl.Page, "node %d got a home flush for page %d homed at %d",
			n.ID, fl.Page, c.home(fl.Page))
	}
	ap := c.applied[fl.Page]
	if ap == nil {
		ap = lrc.NewVC(n.N)
		c.applied[fl.Page] = ap
	}
	if fl.ID.Seq <= ap[fl.ID.Node] {
		return
	}
	ap[fl.ID.Node] = fl.ID.Seq

	// Apply to the frame only. If the home is itself collecting writes the
	// twin is NOT patched, so the home's next diff of this page will also
	// carry these bytes — harmless, because a home's diffs of its own home
	// pages never leave the node.
	var cost sim.Time
	if fl.Diff != nil && len(fl.Diff.Runs) > 0 {
		n.bus.Emit(event.DiffApply(n.ID, int64(fl.Page), fl.Diff.DataBytes()))
		fl.Diff.Apply(n.Store.Frame(fl.Page))
		cost = n.C.DiffApply + sim.Time(n.C.ApplyNs*float64(fl.Diff.DataBytes()))
	} else {
		cost = n.C.DiffApply / 2
	}
	done := n.CPU.Service(cost, sim.CatDSM)
	c.serveParked(fl.Page)
	c.completeHomeFetch(fl.Page, done)
}

// serveParked replies to every parked demand request the current coverage
// now satisfies.
func (c *hlrcCoherence) serveParked(p pagemem.PageID) {
	q := c.parked[p]
	if len(q) == 0 {
		return
	}
	var still []*msgPageReq
	for _, req := range q {
		if anyUncovered(c, p, req.Need) {
			still = append(still, req)
			continue
		}
		c.replyPage(req, req.Need)
	}
	if len(still) == 0 {
		delete(c.parked, p)
	} else {
		c.parked[p] = still
	}
}

func anyUncovered(c *hlrcCoherence, p pagemem.PageID, ids []lrc.IntervalID) bool {
	for _, id := range ids {
		if !c.covered(p, id) {
			return true
		}
	}
	return false
}

// completeHomeFetch finishes a home node's own parked fault once flush
// arrivals cover everything pending. No data moves: the frame is already
// current; only the pending list empties.
func (c *hlrcCoherence) completeHomeFetch(p pagemem.PageID, done sim.Time) {
	n := c.n
	f, ok := n.fetches[p]
	if !ok || f.hybrid || f.fill {
		// The adaptive backend's hybrid fetches and fills track needs the
		// coverage rule here would misread; adp.go owns their completion.
		return
	}
	for id := range f.needed {
		if c.covered(p, id) {
			delete(f.needed, id)
		}
	}
	if len(f.needed) > 0 {
		return
	}
	ps := n.page(p)
	fresh := false
	for _, id := range ps.pending {
		if !c.covered(p, id) {
			f.needed[id] = true
			fresh = true
		}
	}
	if fresh {
		return
	}
	ps.pending = ps.pending[:0]
	delete(n.fetches, p)
	n.bus.Emit(event.FetchDone(n.ID, int64(p), done-f.start))
	waiters := f.waiters
	n.K.At(done, func() {
		for _, w := range waiters {
			w()
		}
	})
}

// handlePageReq serves a page request at the home. Demand requests whose
// Need is not fully covered park until the flushes arrive; prefetch
// requests are answered immediately with whatever is covered now.
func (c *hlrcCoherence) handlePageReq(req *msgPageReq) {
	n := c.n
	if c.home(req.Page) != n.ID || c.xin[req.Page] != nil {
		if !c.dyn && c.xin[req.Page] == nil {
			n.pageInvariantf(req.Page, "node %d got a page request for page %d homed at %d",
				n.ID, req.Page, c.home(req.Page))
		}
		if req.Prefetch {
			// An in-flight prefetch can target a stale home (or a home-elect
			// whose base has not landed). This frame is not the live home
			// copy, so claim nothing: the requester's cache check
			// (pending ⊆ covers) can never accept the entry for an invalid
			// page, which keeps stale data from regressing a newer frame.
			c.replyPage(req, nil)
			return
		}
		if c.xin[req.Page] != nil {
			// Demand request from a node whose release (like ours) named us
			// the home: park until the base installs.
			c.parked[req.Page] = append(c.parked[req.Page], req)
			return
		}
		n.pageInvariantf(req.Page, "node %d got a demand page request for page %d homed at %d",
			n.ID, req.Page, c.home(req.Page))
	}
	if req.Prefetch {
		var covers []lrc.IntervalID
		for _, id := range req.Need {
			if c.covered(req.Page, id) {
				covers = append(covers, id)
			}
		}
		c.replyPage(req, covers)
		return
	}
	if anyUncovered(c, req.Page, req.Need) {
		c.parked[req.Page] = append(c.parked[req.Page], req)
		return
	}
	c.replyPage(req, req.Need)
}

// replyPage snapshots the home frame and ships it to the requester. The
// snapshot copy is charged like a page-length scan; prefetch replies ride
// the lossy path (xmit emits the drop event) unless PfReliable.
func (c *hlrcCoherence) replyPage(req *msgPageReq, covers []lrc.IntervalID) {
	n := c.n
	data := append([]byte(nil), n.Store.Frame(req.Page)...)
	m := &netsim.Message{
		Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(req.From),
		Size:     n.C.HeaderBytes + pagemem.PageSize + 12*len(covers),
		Reliable: !req.Prefetch || c.pfReliable,
		Kind:     KindPageReply,
		Payload:  &msgPageReply{Page: req.Page, Data: data, Covers: covers, Prefetch: req.Prefetch},
	}
	if req.Prefetch {
		m.Kind = KindPfReply
	}
	done := n.CPU.Service(n.C.MsgSend+sim.Time(n.C.DiffScanNs*float64(pagemem.PageSize)), sim.CatDSM)
	n.sendAfter(done, m)
}
