package proto

import (
	"godsm/internal/event"
	"godsm/internal/lrc"
	"godsm/internal/netsim"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// The requester side of the "hlrc" backend: resolving faults by fetching
// whole pages from the home, and the home node's own message-free parked
// faults (see hlrc.go for the protocol overview).

// Fault resolves an access to an invalid page: home pages wait (message-
// free) for the covering flushes; remote pages fetch a whole-page copy from
// the home, after flushing any local writes so the copy cannot clobber
// them. Concurrent faults join the in-flight fetch as under LRC.
func (c *hlrcCoherence) Fault(p pagemem.PageID, onValid func()) {
	n := c.n
	if n.PageValid(p) {
		n.pageInvariantf(p, "Fault on valid page %d", p)
	}
	if f, ok := n.fetches[p]; ok {
		f.waiters = append(f.waiters, onValid)
		return
	}
	ps := n.page(p)
	pfst := n.pf[p]
	delete(n.pf, p)
	if c.track {
		c.acc.cell(p).faults++
	}

	if c.home(p) == n.ID {
		c.homeFault(p, ps, onValid)
		return
	}

	// Whole-page prefetch cache hit: the cached copy must cover every
	// pending interval AND the page must carry no unflushed local writes
	// (the stale copy would clobber them).
	if pg := c.pf.take(p); pg != nil && !ps.twinned && !anyOutsideSet(ps.pending, pg.covers) {
		copy(n.Store.Frame(p), pg.data)
		ps.pending = ps.pending[:0]
		n.bus.Emit(event.FaultLocal(n.ID, int64(p), event.OutcomePfHit))
		cost := n.C.FaultEntry + n.C.DiffApply + sim.Time(n.C.ApplyNs*float64(pagemem.PageSize))
		done := n.CPU.Service(cost, sim.CatDSM)
		n.K.At(done, onValid)
		return
	}

	// Classify the fault for Figure 3.
	var outcome int64
	switch {
	case pfst == nil:
		outcome = event.OutcomeNoPf
	case anyOutside(ps.pending, pfst.requested):
		outcome = event.OutcomePfInvalided
	default:
		outcome = event.OutcomePfLate
	}

	if ps.twinned {
		// Close the interval so our diff is flushed home ahead of the
		// request (per-pair FIFO): the reply's page copy then includes our
		// own writes, and the twin is gone before the copy overwrites the
		// frame.
		n.closeInterval()
	}

	need := append([]lrc.IntervalID(nil), ps.pending...)
	n.bus.Emit(event.FaultRemote(n.ID, int64(p), outcome, len(need)))
	f := &fetch{
		page:    p,
		needed:  make(map[lrc.IntervalID]bool, len(need)),
		waiters: []func(){onValid},
		start:   n.K.Now(),
	}
	asked := make(map[lrc.IntervalID]bool, len(need))
	for _, id := range need {
		f.needed[id] = true
		asked[id] = true
	}
	n.fetches[p] = f
	c.asked[p] = asked
	if c.track {
		c.acc.cell(p).msgs++
	}
	done := n.CPU.Service(n.C.FaultEntry+n.C.MsgSend, sim.CatDSM)
	n.sendAfter(done, &netsim.Message{
		Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(c.home(p)),
		Size:     n.C.HeaderBytes + n.C.ReqBytes + 12*len(need),
		Reliable: true, Kind: KindPageReq,
		Payload: &msgPageReq{From: n.ID, Page: p, Need: need},
	})
}

func anyOutsideSet(ids []lrc.IntervalID, set map[lrc.IntervalID]bool) bool {
	return anyOutside(ids, set)
}

// homeFault handles a fault on a page homed at this node: the frame is
// already the most complete copy, so either every pending interval has been
// flushed in (validate locally, no traffic) or the fault parks until the
// missing flushes arrive.
func (c *hlrcCoherence) homeFault(p pagemem.PageID, ps *pageState, onValid func()) {
	n := c.n
	var uncovered []lrc.IntervalID
	for _, id := range ps.pending {
		if !c.covered(p, id) {
			uncovered = append(uncovered, id)
		}
	}
	if len(uncovered) == 0 {
		ps.pending = ps.pending[:0]
		n.bus.Emit(event.FaultLocal(n.ID, int64(p), event.OutcomeNoPf))
		done := n.CPU.Service(n.C.FaultEntry, sim.CatDSM)
		n.K.At(done, onValid)
		return
	}
	n.bus.Emit(event.FaultRemote(n.ID, int64(p), event.OutcomeNoPf, len(uncovered)))
	f := &fetch{
		page:    p,
		needed:  make(map[lrc.IntervalID]bool, len(uncovered)),
		waiters: []func(){onValid},
		start:   n.K.Now(),
	}
	for _, id := range uncovered {
		f.needed[id] = true
	}
	n.fetches[p] = f
	n.CPU.Service(n.C.FaultEntry, sim.CatDSM)
}

// handlePageReply completes (or extends) an in-flight whole-page fetch.
func (c *hlrcCoherence) handlePageReply(rep *msgPageReply) {
	n := c.n
	if rep.Prefetch {
		c.pf.cacheReply(rep)
		return
	}
	f, ok := n.fetches[rep.Page]
	if !ok {
		return
	}
	for _, id := range rep.Covers {
		delete(f.needed, id)
	}
	if len(f.needed) > 0 {
		return
	}
	// New notices may have been taken in while we waited; anything not yet
	// asked of the home needs another round trip (the reply predates it).
	ps := n.page(rep.Page)
	asked := c.asked[rep.Page]
	var fresh []lrc.IntervalID
	for _, id := range ps.pending {
		if !asked[id] {
			fresh = append(fresh, id)
		}
	}
	if len(fresh) > 0 {
		for _, id := range fresh {
			f.needed[id] = true
			asked[id] = true
		}
		if c.track {
			c.acc.cell(rep.Page).msgs++
		}
		done := n.CPU.Service(n.C.MsgSend, sim.CatDSM)
		n.sendAfter(done, &netsim.Message{
			Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(c.home(rep.Page)),
			Size:     n.C.HeaderBytes + n.C.ReqBytes + 12*len(fresh),
			Reliable: true, Kind: KindPageReq,
			Payload: &msgPageReq{From: n.ID, Page: rep.Page, Need: fresh},
		})
		return
	}
	// Complete: the final reply's snapshot is the newest and the home frame
	// only grows, so it covers every earlier reply too; all pending
	// intervals were asked and covered, so the whole list clears.
	copy(n.Store.Frame(rep.Page), rep.Data)
	ps.pending = ps.pending[:0]
	cost := n.C.DiffApply + sim.Time(n.C.ApplyNs*float64(pagemem.PageSize))
	done := n.CPU.Service(cost, sim.CatDSM)
	delete(n.fetches, rep.Page)
	delete(c.asked, rep.Page)
	n.bus.Emit(event.HomeFetch(n.ID, c.home(rep.Page), int64(rep.Page), pagemem.PageSize))
	n.bus.Emit(event.FetchDone(n.ID, int64(rep.Page), done-f.start))
	waiters := f.waiters
	n.K.At(done, func() {
		for _, w := range waiters {
			w()
		}
	})
}
