package proto

import (
	"math/rand"
	"sort"

	"godsm/internal/event"
	"godsm/internal/lrc"
	"godsm/internal/netsim"
	"godsm/internal/sim"
)

// Deterministic gossip write-notice dissemination (Config.Gossip). ERC's
// release broadcast sends N-1 messages per interval close, so total notice
// traffic grows as O(N) per release and the sender serializes N-1 MsgSend
// charges on its own CPU. Gossip caps the per-node cost: each node pushes
// freshly-learned records to a fixed fanout-k peer set in periodic rounds,
// and a record reaches all N nodes in O(log N) rounds while every node
// sends at most k messages per round.
//
// Determinism. The peer set is fixed at construction from
// rand.New(rand.NewSource(Config.GossipSeed + node-id mixing)) — the
// netsim.FaultPlan pattern — so it is a pure function of (N, fanout, seed).
// Rounds fire on a sim.Timer at a fixed interval, batches are sorted by
// (creator, seq) before sending, and peers are walked in slice order, so
// the whole message schedule is a deterministic function of the
// simulation's event order. dsmvet's globalrand analyzer enforces the
// seeded-source idiom; no map iteration or wall-clock input is involved.
//
// Termination. A record enters the hot list at most once per node: at its
// creator when the interval closes (Publish), or at the first receipt of
// its record (handle). A node therefore pushes each record at most once,
// the total message count for one record is bounded by k*N, and the round
// timer is only armed while undisseminated records exist — an idle node's
// timer stays idle and the kernel's run loop drains.
//
// Quiescence at barriers. A barrier release hands every node a vector time
// covering every interval closed at the arrivals, with the records each
// node was missing — global dissemination, done. The release path reports
// that vector time here (Cover), and both fire and handle drop records at
// or below it: relaying a record the barrier already delivered everywhere
// is pure waste. Gossip traffic therefore flows only while it is ahead of
// synchronization — between barriers, and during the arrival-skew window
// within one — which is what lets it undercut the broadcast even when few
// nodes write.
//
// GC safety. Diff GC truncates records below gcBase at barriers. Gossip
// never creates interval records during a GC round: new intervals only
// close at sync operations, and every node is parked at the barrier while
// validate/flush runs. A gossiped record that arrives after the collection
// that subsumed it carries Seq <= gcBase[creator] and is skipped; fire()
// applies the same filter to its own backlog.
type gossiper struct {
	n        *Node
	peers    []int // fixed push targets; peers[0] is the ring successor
	interval sim.Time
	hot      []*lrc.Interval // records learned but not yet pushed
	covered  lrc.VC          // barrier-released supremum: globally known records
	timer    *sim.Timer
	round    int64
}

// gossipSeedMix decorrelates per-node peer choices drawn from one seed.
const gossipSeedMix = 0x9e3779b9

// newGossiper builds node n's gossip engine, or returns nil when the
// cluster has no peers to gossip with.
func newGossiper(n *Node, cfg Config) *gossiper {
	if n.N < 2 {
		return nil
	}
	k := cfg.GossipFanout
	if k == 0 {
		k = DefaultGossipFanout
	}
	if k > n.N-1 {
		k = n.N - 1
	}
	interval := cfg.GossipInterval
	if interval == 0 {
		interval = DefaultGossipInterval
	}
	g := &gossiper{n: n, interval: interval, covered: lrc.NewVC(n.N)}

	// The ring successor guarantees the push graph is strongly connected
	// (every record can reach every node); the remaining k-1 peers are
	// seeded random picks that give the O(log N) expander behavior.
	g.peers = append(g.peers, (n.ID+1)%n.N)
	rng := rand.New(rand.NewSource(cfg.GossipSeed + int64(n.ID)*gossipSeedMix))
	for len(g.peers) < k {
		p := rng.Intn(n.N)
		dup := p == n.ID
		for _, q := range g.peers {
			if q == p {
				dup = true
			}
		}
		if !dup {
			g.peers = append(g.peers, p)
		}
	}
	g.timer = n.K.NewTimer(g.fire)
	return g
}

// Publish queues a locally-closed interval's record for the next round.
func (g *gossiper) Publish(iv *lrc.Interval) {
	g.hot = append(g.hot, iv)
	if !g.timer.Active() {
		g.timer.Arm(g.interval)
	}
}

// Cover records a barrier release's vector time: everything at or below it
// has been handed to every node by the release path, so pending pushes of
// those records are dropped. Called by both barrier implementations on
// every release (manager and leaf sides).
func (g *gossiper) Cover(vc lrc.VC) {
	for q, s := range vc {
		if s > g.covered[q] {
			g.covered[q] = s
		}
	}
}

// gossipCover forwards a barrier release's vector time to the gossiper, if
// the node has one.
func (n *Node) gossipCover(vc lrc.VC) {
	if n.gossip != nil {
		n.gossip.Cover(vc)
	}
}

// fire runs one gossip round: push every hot record to each peer, then go
// idle. The timer is re-armed by the next Publish or fresh receipt, never
// here — an unconditional re-arm would keep the kernel's queue non-empty
// forever.
func (g *gossiper) fire() {
	n := g.n
	batch := g.hot[:0]
	for _, iv := range g.hot {
		if iv.ID.Seq <= n.gcBase[iv.ID.Node] {
			continue // collected since it was queued; every peer skips it too
		}
		if iv.ID.Seq <= g.covered[iv.ID.Node] {
			continue // a barrier release delivered it everywhere already
		}
		batch = append(batch, iv)
	}
	g.hot = nil
	if len(batch) == 0 {
		return
	}
	sort.Slice(batch, func(i, j int) bool {
		if batch[i].ID.Node != batch[j].ID.Node {
			return batch[i].ID.Node < batch[j].ID.Node
		}
		return batch[i].ID.Seq < batch[j].ID.Seq
	})
	g.round++
	n.bus.Emit(event.GossipPush(n.ID, g.round, len(batch), len(g.peers)))

	size := n.C.HeaderBytes + 8 + n.C.ivsWireSize(batch, n.N)
	pl := &msgGossip{From: n.ID, Ivs: batch}
	var cost sim.Time
	for _, q := range g.peers {
		cost += n.C.MsgSend
		done := n.CPU.Service(cost, sim.CatDSM)
		cost = 0
		n.sendAfter(done, &netsim.Message{
			Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(q),
			Size: size, Reliable: true, Kind: KindGossip,
			Payload: pl,
		})
	}
}

// handle takes in one gossip push: record fresh intervals (invalidating
// their pages), queue them for relay, and advance this node's vector time
// over any now-contiguous prefix of each creator's records.
//
// Unlike ERC's handleEagerNotice, the creator's vector entry must NOT jump
// straight to the received Seq: relayed records arrive out of creator
// order (peer A may learn (q,5) before (q,4)), and a vector time covering
// a record this node has not seen breaks the contiguity invariant. The
// walk below advances each entry only across records that are present and
// not held deferred (a deferred record's pages are not invalidated yet, so
// claiming coverage of it would let stale data survive).
func (g *gossiper) handle(m *msgGossip) {
	n := g.n
	var cost sim.Time
	fresh := false
	for _, iv := range m.Ivs {
		q := iv.ID.Node
		if q == n.ID || iv.ID.Seq <= n.gcBase[q] {
			continue
		}
		idx := int(iv.ID.Seq) - 1
		isNew := idx >= len(n.ivs[q]) || n.ivs[q][idx] == nil
		cost += n.recordInterval(iv)
		if isNew && iv.ID.Seq > g.covered[q] {
			g.hot = append(g.hot, iv)
			fresh = true
		}
	}
	for _, iv := range m.Ivs {
		q := iv.ID.Node
		if q == n.ID {
			continue
		}
		for int(n.vc[q]) < len(n.ivs[q]) &&
			n.ivs[q][n.vc[q]] != nil &&
			!n.deferredSet[lrc.IntervalID{Node: q, Seq: n.vc[q] + 1}] {
			n.vc[q]++
		}
	}
	n.CPU.Service(cost, sim.CatDSM)
	if fresh && !g.timer.Active() {
		g.timer.Arm(g.interval)
	}
}
