package proto

import (
	"testing"

	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// Lock-protocol unit tests, including the NoTokenCache (centralized locks)
// ablation paths: token return, redirect of a forward that raced with the
// return, and manager-held retry queueing.

// acquireRelease acquires lock id on node nd at the current time, runs
// body while holding it, then releases. It drives the kernel to completion.
func acquireRelease(t *testing.T, r *rig, nd int, id int, at sim.Time, body func()) {
	t.Helper()
	r.k.At(at, func() {
		node := r.nodes[nd]
		run := func() {
			if body != nil {
				body()
			}
			node.ReleaseLock(id)
		}
		if node.AcquireLock(id, run) {
			run()
		}
	})
}

func TestNoTokenCacheReturnsToManager(t *testing.T) {
	r := newRigCfg(3, Config{NoTokenCache: true})
	// Lock 1's manager is node 1. Node 0 acquires and releases; the token
	// must go home, so node 2's later acquire is served by the manager
	// (not forwarded to node 0).
	acquireRelease(t, r, 0, 1, 0, func() { r.write(0, page0, 1) })
	r.k.Run()
	acquireRelease(t, r, 2, 1, r.k.Now()+50*sim.Millisecond, nil)
	r.k.Run()

	if got := r.st[2].RemoteLockAcqs; got != 1 {
		t.Fatalf("node 2 remote acquires = %d", got)
	}
	// Node 2 must have received node 0's critical-section write notice via
	// the returned token's consistency info.
	if r.nodes[2].PageValid(1) {
		t.Fatal("node 2 missing the write notice carried through the token return")
	}
	retMsgs, _ := r.net.KindStats(KindLockReturn)
	if retMsgs == 0 {
		t.Fatal("no token-return messages observed")
	}
}

func TestNoTokenCacheNoLocalReacquire(t *testing.T) {
	r := newRigCfg(2, Config{NoTokenCache: true})
	// Node 0 is lock 0's manager; with caching its acquires are free.
	// Without caching they still complete but count as remote.
	done := 0
	acquireRelease(t, r, 0, 0, 0, func() { done++ })
	r.k.Run()
	acquireRelease(t, r, 0, 0, r.k.Now()+sim.Millisecond, func() { done++ })
	r.k.Run()
	if done != 2 {
		t.Fatalf("acquires completed = %d", done)
	}
	if r.st[0].LocalLockAcqs != 0 {
		t.Fatalf("local acquires = %d, want 0 under NoTokenCache", r.st[0].LocalLockAcqs)
	}
	if r.st[0].RemoteLockAcqs != 2 {
		t.Fatalf("remote acquires = %d, want 2", r.st[0].RemoteLockAcqs)
	}
}

func TestNoTokenCacheRedirectRace(t *testing.T) {
	r := newRigCfg(3, Config{NoTokenCache: true})
	// Node 0 holds lock 1 (manager node 1) and releases; node 2's request
	// is forwarded to node 0 around the same time the token returns. Every
	// interleaving must end with node 2 acquiring.
	got2 := false
	acquireRelease(t, r, 0, 1, 0, nil)
	r.k.At(100, func() {
		r.nodes[2].AcquireLock(1, func() {
			got2 = true
			r.nodes[2].ReleaseLock(1)
		})
	})
	r.k.Run()
	if !got2 {
		t.Fatal("node 2 never acquired after the redirect race")
	}
}

func TestNoTokenCacheChainUnderContention(t *testing.T) {
	r := newRigCfg(4, Config{NoTokenCache: true})
	// All four nodes repeatedly increment a lock-protected cell; mutual
	// exclusion and consistency must hold through returns and redirects.
	const rounds = 6
	cell := pagemem.Addr(pagemem.PageSize)
	// Each node chains its rounds (a node's acquires must be serialized),
	// with staggered start times so the lock bounces between nodes.
	for nd := 0; nd < 4; nd++ {
		nd := nd
		node := r.nodes[nd]
		var round func(i int)
		round = func(i int) {
			if i == rounds {
				return
			}
			body := func() {
				incr := func() {
					node.EnsureWritable(pagemem.PageOf(cell))
					f := node.Frame(pagemem.PageOf(cell))
					pagemem.PutU64(f, 0, pagemem.GetU64(f, 0)+1)
					node.ReleaseLock(2)
					r.k.After(300*sim.Microsecond, func() { round(i + 1) })
				}
				if node.PageValid(pagemem.PageOf(cell)) {
					incr()
					return
				}
				node.Fault(pagemem.PageOf(cell), incr)
			}
			if node.AcquireLock(2, body) {
				body()
			}
		}
		r.k.At(sim.Time(nd)*200*sim.Microsecond, func() { round(0) })
	}
	r.k.Run()
	// Read back through the lock (acquire synchronizes the final value).
	var got uint64
	doneRead := false
	r.k.At(r.k.Now(), func() {
		nd := r.nodes[3]
		body := func() {
			read := func() {
				got = pagemem.GetU64(nd.Frame(1), 0)
				doneRead = true
				nd.ReleaseLock(2)
			}
			if nd.PageValid(1) {
				read()
				return
			}
			nd.Fault(1, read)
		}
		if nd.AcquireLock(2, body) {
			body()
		}
	})
	r.k.Run()
	if !doneRead {
		t.Fatal("final read incomplete")
	}
	if got != rounds*4 {
		t.Fatalf("counter = %d, want %d", got, rounds*4)
	}
}
