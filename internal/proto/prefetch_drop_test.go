package proto

import (
	"testing"

	"godsm/internal/netsim"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// Prefetch traffic is unreliable by design, and the report splits its losses
// by direction: a dropped request is charged to the prefetching node, a
// dropped reply to the node that served it. Exercise both directions with
// deterministic brown-out windows and check the split lands on the right
// counters.
func TestPrefetchDropSplit(t *testing.T) {
	const (
		t1 = 100 * sim.Millisecond // phase 1: prefetch whose request dies
		t2 = 150 * sim.Millisecond // phase 2: prefetch whose reply dies
		t3 = 300 * sim.Millisecond // demand faults recover both pages
	)
	pageA := pagemem.Addr(1 * pagemem.PageSize)
	pageB := pagemem.Addr(2 * pagemem.PageSize)
	r := newFaultRig(2, netsim.FaultPlan{
		Brownouts: []netsim.LinkFault{
			// Phase 1: node 1's link is dark while its request is on the wire.
			{Node: 1, From: t1, To: t1 + 10*sim.Millisecond},
			// Phase 2: node 0's link goes dark only after the request has
			// already landed (its CPU is kept busy, delaying the reply into
			// the window).
			{Node: 0, From: t2 + 4*sim.Millisecond, To: t2 + 20*sim.Millisecond},
		},
	})

	r.k.At(0, func() {
		r.write(0, pageA, 3)
		r.write(0, pageB, 7)
	})
	r.k.Run()
	r.barrierAll(0)

	issued1, issued2 := 0, 0
	r.k.At(t1, func() { issued1 = r.nodes[1].Prefetch(pagemem.PageOf(pageA)) })
	r.k.At(t2, func() {
		// Pin node 0's CPU so its prefetch reply is serviced inside the
		// brown-out window, while the request's wire time stays before it.
		r.nodes[0].CPU.Service(8*sim.Millisecond, sim.CatBusy)
		issued2 = r.nodes[1].Prefetch(pagemem.PageOf(pageB))
	})
	r.k.Run()

	if issued1 != 1 || issued2 != 1 {
		t.Fatalf("prefetches issued %d and %d request messages, want 1 and 1", issued1, issued2)
	}
	if got := r.st[1].PfReqDropped; got != 1 {
		t.Errorf("node 1 PfReqDropped = %d, want 1 (phase-1 request died in its brown-out)", got)
	}
	if got := r.st[0].PfReplyDropped; got != 1 {
		t.Errorf("node 0 PfReplyDropped = %d, want 1 (phase-2 reply died in node 0's brown-out)", got)
	}
	if got := r.st[0].PfReqDropped + r.st[1].PfReplyDropped; got != 0 {
		t.Errorf("drops charged to the wrong side: node0 req=%d node1 reply=%d",
			r.st[0].PfReqDropped, r.st[1].PfReplyDropped)
	}

	// Both prefetches were lost, so the real accesses must fall back to
	// ordinary demand misses and still see the written values.
	got := make(chan float64, 2)
	r.k.At(t3, func() {
		for _, a := range []pagemem.Addr{pageA, pageB} {
			a := a
			r.nodes[1].Fault(pagemem.PageOf(a), func() { got <- r.read(1, a) })
		}
	})
	r.k.Run()
	if vA, vB := <-got, <-got; vA+vB != 10 {
		t.Fatalf("demand faults after lost prefetches read %v and %v, want 3 and 7", vA, vB)
	}
}
