package proto

import (
	"godsm/internal/lrc"
	"godsm/internal/netsim"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// Config declaratively selects a protocol backend and its policy knobs.
// The zero value is the default TreadMarks-style lazy release consistency
// engine with every knob off. A Config is validated once (ValidateConfig)
// and then used to build one Subsystems set per node.
type Config struct {
	// Protocol names a registered backend ("lrc", "erc", "hlrc", "adp");
	// empty selects the default "lrc". Lookup lists the registered names.
	Protocol string

	// HomePolicy selects the page→home assignment policy of the home-based
	// backend: "static" (fixed page mod N; empty selects it, keeping the
	// default path byte-identical), "firsttouch" (a page's home is fixed at
	// the node that first shows traffic on it), or "migrate" (homes follow
	// the dominant accessor across barrier episodes). Only meaningful for
	// "hlrc"; the other backends reject a non-empty value ("adp" keeps
	// homes static and adapts the per-page protocol mode instead).
	HomePolicy string

	// ThrottlePf > 0 drops every ThrottlePf-th prefetch at issue time
	// (Section 5.1's RADIX optimization).
	ThrottlePf int

	// GCThreshold triggers diff garbage collection at barriers once a
	// node's diff storage exceeds it (bytes). Zero disables GC. Only
	// meaningful for diff-based backends; HLRC rejects it.
	GCThreshold int64

	// NoTokenCache returns the lock token to its manager at every release
	// (centralized locks): no last-holder re-acquire, and every acquire
	// pays the manager round trip.
	NoTokenCache bool

	// PfReliable makes prefetch messages reliable (never dropped), so
	// congested prefetches queue instead of falling back to demand fetches.
	PfReliable bool

	// PfHeapSharedGC counts the prefetch diff cache toward the GC trigger,
	// removing the paper's separate-heap relief (footnote 6). HLRC rejects
	// it along with the other diff-GC knobs.
	PfHeapSharedGC bool

	// Barrier selects the barrier implementation: "central" (the paper's
	// single manager on node 0; empty selects it, keeping the default path
	// byte-identical) or "tree" (a deterministic combining tree whose
	// arrivals combine interval/VC payloads upward and whose releases fan
	// down; see barriertree.go).
	Barrier string

	// BarrierFanout is the combining tree's arity; zero means
	// DefaultBarrierFanout. A fanout >= N-1 degenerates the tree to depth
	// one, which reproduces the central barrier's behaviour exactly.
	BarrierFanout int

	// Gossip replaces broadcast write-notice dissemination with seeded
	// deterministic gossip rounds (gossip.go): each interval close joins a
	// per-node hot set that is pushed, batched, to a fixed fanout of peers;
	// receivers relay records they had not seen. Diff-based backends only;
	// HLRC rejects it (notices travel through homes there).
	Gossip bool

	// GossipFanout is the number of peers each gossip round pushes to;
	// zero means DefaultGossipFanout. The first peer is always the ring
	// successor (guaranteeing every notice reaches every node); the rest
	// are a seeded deterministic sample.
	GossipFanout int

	// GossipSeed seeds the per-node long-link selection. Runs with equal
	// seeds are byte-identical.
	GossipSeed int64

	// GossipInterval is the batching delay between a record entering the
	// hot set and the round that pushes it; zero means
	// DefaultGossipInterval. The default spans a few message flight times,
	// so the records a node learns from several peers coalesce into one
	// push — with an interval at or below the flight time every trickled-in
	// record fires its own round and gossip degenerates to per-record
	// forwarding, costing more messages than the broadcast it replaces.
	GossipInterval sim.Time
}

// Defaults for the scalable-machine knobs.
const (
	DefaultBarrierFanout  = 4
	DefaultGossipFanout   = 2
	DefaultGossipInterval = 2 * sim.Millisecond
)

// The protocol engine is decomposed into four policy subsystems behind the
// interfaces below. The Node (node.go) is the shared chassis: it owns the
// vector time, interval records, page table, diff store, in-flight fetch
// table and transport, and delegates every policy decision to the
// subsystem set its backend built. Implementations are matched per
// backend — a backend's coherence half may reach into its own prefetcher
// directly — but the Node only ever calls through these seams.

// Coherence is the fault/validate/write-notice policy: what happens on an
// access to an invalid page, what happens when an interval closes, and how
// the backend's own wire messages are handled.
type Coherence interface {
	// Fault resolves an access to an invalid page. onValid runs (in
	// kernel context) once the page is valid; the caller parks the
	// faulting thread until then. Concurrent faults on the same page must
	// join the in-flight fetch (request combining).
	Fault(p pagemem.PageID, onValid func())

	// AfterClose runs immediately after the chassis closes a non-empty
	// interval: eager backends push write notices or flush diffs here.
	AfterClose(iv *lrc.Interval)

	// Handle dispatches one in-order coherence message; it reports false
	// for kinds the subsystem does not own.
	Handle(m *netsim.Message) bool
}

// SyncManager implements the synchronization side of the protocol: locks
// and barriers, including the consistency metadata they piggyback.
type SyncManager interface {
	// AcquireLock acquires lock id, reporting true if the acquire
	// completed immediately (cached token); otherwise onGranted runs (in
	// kernel context) when the grant arrives.
	AcquireLock(id int, onGranted func()) bool

	// ReleaseLock releases lock id, closing the current interval (the
	// release-consistency boundary).
	ReleaseLock(id int)

	// Barrier arrives at barrier id; onRelease runs (in kernel context)
	// when the barrier releases.
	Barrier(id int, onRelease func())

	// Handle dispatches one in-order synchronization message.
	Handle(m *netsim.Message) bool
}

// Prefetcher is the non-binding prefetch issue policy.
type Prefetcher interface {
	// Prefetch issues a software-controlled non-binding prefetch for page
	// p, returning the number of request messages sent (0 when dropped).
	Prefetch(p pagemem.PageID) int
}

// DiffGC is the consistency-record garbage collection policy, driven from
// the barrier code: arrivals report storage, the manager decides whether a
// collection runs before the release completes.
type DiffGC interface {
	// ReportBytes returns the storage figure this node reports with its
	// barrier arrival.
	ReportBytes() int64

	// Exceeds reports whether a reported figure should trigger a
	// collection at the next release.
	Exceeds(reported int64) bool

	// Begin starts a collection after a GC-flagged barrier release;
	// resume runs (in kernel context) once the global collection
	// completes.
	Begin(resume func())

	// Handle dispatches one in-order collection message.
	Handle(m *netsim.Message) bool
}

// Subsystems bundles the four policy implementations one backend built for
// one node.
type Subsystems struct {
	Coherence Coherence
	Prefetch  Prefetcher
	Sync      SyncManager
	GC        DiffGC
}
