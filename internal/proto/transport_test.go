package proto

import (
	"strings"
	"testing"

	"godsm/internal/netsim"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
	"godsm/internal/stats"
)

// newFaultRig wires a cluster over a faulty network with the reliable
// transport enabled, mirroring the core wiring under an active fault plan.
func newFaultRig(n int, plan netsim.FaultPlan) *rig {
	r := &rig{k: sim.NewKernel(), costs: DefaultCosts()}
	r.st = make([]stats.Node, n)
	r.k.Bus().Subscribe(stats.NewCollector(r.st))
	cfg := netsim.DefaultConfig()
	cfg.Faults = plan
	r.net = netsim.New(r.k, n, cfg, func(m *netsim.Message) {
		r.nodes[m.Dst].Deliver(m)
	})
	for i := 0; i < n; i++ {
		nd := NewNode(i, n, r.k, sim.NewCPU(r.k), &r.costs, Config{})
		nd.Send = r.net.Send
		nd.EnableTransport()
		r.nodes = append(r.nodes, nd)
	}
	return r
}

func sumXport(st []stats.Node) (retx, timeouts, dups int64) {
	for i := range st {
		retx += st[i].Retransmits
		timeouts += st[i].Timeouts
		dups += st[i].DupSuppressed
	}
	return
}

// A brown-out eats the first barrier arrival; the retransmission timer must
// recover it and the barrier must still complete.
func TestTransportRecoversBrownoutLoss(t *testing.T) {
	r := newFaultRig(2, netsim.FaultPlan{
		Brownouts: []netsim.LinkFault{{Node: 1, From: 0, To: 2 * sim.Millisecond}},
	})
	released := 0
	r.k.At(0, func() { r.write(1, page0, 9) })
	r.k.At(sim.Millisecond, func() {
		for _, nd := range r.nodes {
			nd.Barrier(0, func() { released++ })
		}
	})
	r.k.Run()
	if released != 2 {
		t.Fatalf("barrier released %d nodes, want 2", released)
	}
	retx, timeouts, _ := sumXport(r.st)
	if retx == 0 || timeouts == 0 {
		t.Fatalf("brown-out recovered without retransmission? retx=%d timeouts=%d", retx, timeouts)
	}
	if r.nodes[0].PageValid(1) {
		t.Fatal("node 1's write notice never reached node 0")
	}
}

// With every message duplicated, handlers must still run exactly once: the
// run completing without a duplicate-barrier-arrival invariant failure is
// the assertion, plus nonzero suppression counters.
func TestTransportSuppressesDuplicates(t *testing.T) {
	r := newFaultRig(3, netsim.FaultPlan{Seed: 5, Dup: 1.0})
	for round := 0; round < 3; round++ {
		r.k.At(r.k.Now(), func() { r.write(0, page0, float64(round)) })
		r.k.Run()
		r.barrierAll(round)
	}
	if _, _, dups := sumXport(r.st); dups == 0 {
		t.Fatal("Dup=1.0 produced no suppressed duplicates")
	}
}

// Heavy reordering: the transport must restore per-pair FIFO so interval
// records stay contiguous (checkContiguity would panic otherwise).
func TestTransportRepairsReordering(t *testing.T) {
	r := newFaultRig(4, netsim.FaultPlan{Seed: 11, Reorder: 0.8, MaxJitter: 20 * sim.Millisecond})
	for round := 0; round < 4; round++ {
		r.k.At(r.k.Now(), func() {
			for i := range r.nodes {
				r.write(i, page0+pagemem8k(round, i), float64(i))
			}
		})
		r.k.Run()
		r.barrierAll(round)
	}
}

// pagemem8k spreads writers over distinct pages per (round, node).
func pagemem8k(round, node int) pagemem.Addr {
	return pagemem.Addr(round*4+node) * pagemem.PageSize
}

// A permanently dead link exhausts the retry cap and must raise a structured
// InvariantError with the event trace attached by the kernel run loop.
func TestTransportRetryCapRaisesInvariant(t *testing.T) {
	r := newFaultRig(2, netsim.FaultPlan{
		Brownouts: []netsim.LinkFault{{Node: 1, From: 0, To: 1 << 60}},
	})
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("dead link did not raise the retry-cap invariant")
		}
		ie, ok := rec.(*InvariantError)
		if !ok {
			t.Fatalf("panic value is %T, want *InvariantError", rec)
		}
		if !strings.Contains(ie.Msg, "retransmission timeouts") {
			t.Fatalf("unexpected invariant: %s", ie.Msg)
		}
		if len(ie.Events) == 0 {
			t.Fatal("kernel did not attach the dispatch trace")
		}
		if !strings.Contains(ie.Error(), "events:") {
			t.Fatalf("rendering lacks the event trace:\n%s", ie.Error())
		}
	}()
	r.k.At(0, func() { r.write(1, page0, 1) })
	r.k.Run()
	for _, nd := range r.nodes {
		nd.Barrier(0, func() {})
	}
	r.k.Run()
}
