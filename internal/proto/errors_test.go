package proto

import (
	"reflect"
	"strings"
	"testing"

	"godsm/internal/event"
	"godsm/internal/pagemem"
)

// InvariantError dumps are read by humans diffing two failures of the same
// seed, so the rendering must be byte-stable: map-derived state has to come
// out sorted no matter what order the runtime iterates the maps in.
func TestInvariantErrorStableRendering(t *testing.T) {
	r := newRig(2)
	n := r.nodes[1]
	for _, p := range []pagemem.PageID{9, 3, 17, 5} {
		n.fetches[p] = &fetch{page: p}
	}
	for _, p := range []pagemem.PageID{12, 4, 8} {
		n.pf[p] = &pfState{}
	}

	first := n.newInvariantError(7, "test failure %d", 42)
	if want := []int64{3, 5, 9, 17}; !reflect.DeepEqual(first.InFlight, want) {
		t.Fatalf("InFlight = %v, want sorted %v", first.InFlight, want)
	}
	if want := []int64{4, 8, 12}; !reflect.DeepEqual(first.Prefetching, want) {
		t.Fatalf("Prefetching = %v, want sorted %v", first.Prefetching, want)
	}

	first.AttachEventTrace([]event.Event{
		event.Dispatch(1, nil),
		event.FaultRemote(1, 7, event.OutcomeNoPf, 2),
	})
	ref := first.Error()
	for _, frag := range []string{
		"test failure 42",
		"page=7",
		"in-flight fetches: [3 5 9 17]",
		"outstanding prefetches: [4 8 12]",
		"last 2 events:",
	} {
		if !strings.Contains(ref, frag) {
			t.Errorf("rendering lacks %q:\n%s", frag, ref)
		}
	}

	// Rebuild the error many times from the same node state: every capture
	// must render identically despite randomized map iteration order.
	for i := 0; i < 50; i++ {
		ie := n.newInvariantError(7, "test failure %d", 42)
		ie.Time = first.Time // capture time is the only legitimately varying field
		ie.AttachEventTrace(first.Events)
		if got := ie.Error(); got != ref {
			t.Fatalf("rendering unstable on rebuild %d:\n--- first\n%s\n--- now\n%s", i, ref, got)
		}
	}
}

// AttachEventTrace must be first-writer-wins: the innermost kernel that
// catches the panic owns the history.
func TestAttachEventTraceFirstWins(t *testing.T) {
	ie := &InvariantError{Node: 0, Page: -1, Msg: "x"}
	a := []event.Event{event.Dispatch(1, nil)}
	b := []event.Event{event.Dispatch(2, nil), event.Dispatch(3, nil)}
	ie.AttachEventTrace(a)
	ie.AttachEventTrace(b)
	if len(ie.Events) != 1 {
		t.Fatalf("second attach overwrote the trace: %d events", len(ie.Events))
	}
}
