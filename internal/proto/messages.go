package proto

import (
	"godsm/internal/lrc"
	"godsm/internal/netsim"
	"godsm/internal/pagemem"
)

// Message kinds for traffic statistics.
const (
	KindDiffReq netsim.Kind = iota
	KindDiffReply
	KindPfReq
	KindPfReply
	KindLockAcq
	KindLockForward
	KindLockGrant
	KindBarArrive
	KindBarRelease
	KindGCDone
	KindGCFlush
	KindLockReturn
	KindLockRetry
	KindEagerNotice
	KindAck // pure transport acknowledgment (no protocol payload)
	KindHomeFlush
	KindPageReq
	KindPageReply
	KindGossip   // batched write-notice gossip round (gossip.go)
	KindHomeXfer // base page transfer to a migrated home (homemigrate.go)
	numKinds
)

// KindName returns a human-readable label for a message kind.
func KindName(k netsim.Kind) string {
	switch k {
	case KindDiffReq:
		return "diff-req"
	case KindDiffReply:
		return "diff-reply"
	case KindPfReq:
		return "pf-req"
	case KindPfReply:
		return "pf-reply"
	case KindLockAcq:
		return "lock-acq"
	case KindLockForward:
		return "lock-fwd"
	case KindLockGrant:
		return "lock-grant"
	case KindBarArrive:
		return "bar-arrive"
	case KindBarRelease:
		return "bar-release"
	case KindGCDone:
		return "gc-done"
	case KindGCFlush:
		return "gc-flush"
	case KindLockReturn:
		return "lock-return"
	case KindLockRetry:
		return "lock-retry"
	case KindEagerNotice:
		return "eager-notice"
	case KindAck:
		return "xp-ack"
	case KindHomeFlush:
		return "home-flush"
	case KindPageReq:
		return "page-req"
	case KindPageReply:
		return "page-reply"
	case KindGossip:
		return "gossip"
	case KindHomeXfer:
		return "home-xfer"
	default:
		configInvariantf("KindName: unknown message kind %d", int(k))
		return ""
	}
}

// msgDiffReq asks the creator of some intervals for their diffs of Page.
// Prefetch requests use the same shape but are unreliable and tagged.
type msgDiffReq struct {
	From     int
	Page     pagemem.PageID
	Wants    []lrc.IntervalID
	Prefetch bool
}

// diffItem is one diff keyed by the interval that produced it.
type diffItem struct {
	ID   lrc.IntervalID
	Diff *pagemem.Diff // nil when the interval turned out to have no changes
}

// msgDiffReply returns the requested diffs.
type msgDiffReply struct {
	Page     pagemem.PageID
	Items    []diffItem
	Prefetch bool
}

// msgLockAcq is an acquire request, sent to the lock's manager (and
// forwarded by the manager to the previous requester).
type msgLockAcq struct {
	Lock      int
	Requester int
	VC        lrc.VC // requester's vector time at the request
	Seq       int    // requester's per-lock acquire sequence number
	PrevSeq   int    // set on forward: the predecessor tenure this chains after
}

// msgLockGrant transfers lock ownership, piggybacking the write notices the
// requester has not yet seen.
type msgLockGrant struct {
	Lock int
	VC   lrc.VC // granter's vector time
	Ivs  []*lrc.Interval
}

// msgEagerNotice broadcasts a just-closed interval's write notices at
// release time (eager release consistency mode).
type msgEagerNotice struct {
	Iv *lrc.Interval
}

// msgGossip carries one gossip round's batch of hot interval records
// (gossip.go). The batch is sorted by (Node, Seq) and shared read-only
// between the round's peers.
type msgGossip struct {
	From int
	Ivs  []*lrc.Interval
}

// msgBarArrive announces arrival at a barrier, carrying the arriver's new
// intervals since its previous barrier. Under the combining tree
// (barriertree.go) an interior node's upward message additionally carries
// the element-wise minimum of its subtree's arrival VCs (for release
// filtering) and the combined GC verdict; both stay zero on the central
// barrier's wire format.
type msgBarArrive struct {
	Barrier   int
	From      int
	VC        lrc.VC
	Ivs       []*lrc.Interval
	DiffBytes int64  // local diff-storage size, for the GC trigger
	MinVC     lrc.VC // combining tree only: min over the subtree's arrival VCs
	GCWant    bool   // combining tree only: some subtree member tripped the GC trigger

	// Acc carries the arriver's (or, on the tree, the subtree's) per-page
	// access counters when a dynamic home policy or the adaptive backend
	// runs; nil otherwise, adding nothing to the wire size.
	Acc []PageAcc
}

// msgBarRelease releases a barrier, carrying the merged vector time and the
// intervals the receiver lacks.
type msgBarRelease struct {
	Barrier int
	VC      lrc.VC
	Ivs     []*lrc.Interval
	GC      bool // a global diff garbage collection runs before resuming

	// Moves carries the root's home-move / mode-switch decisions for this
	// episode; every node applies them before resuming its threads, which
	// keeps the home-table replicas in lockstep. Nil when no dynamic policy
	// runs (zero wire bytes).
	Moves []HomeMove
}

// ivsWireSize estimates the on-wire size of a batch of interval records.
func (c *Costs) ivsWireSize(ivs []*lrc.Interval, nprocs int) int {
	n := 0
	for _, iv := range ivs {
		n += 8 + 4*nprocs + c.PerNoticeByt*len(iv.Pages)
	}
	return n
}

func (c *Costs) diffReplySize(items []diffItem) int {
	n := c.HeaderBytes
	for _, it := range items {
		n += 12 + it.Diff.WireSize()
	}
	return n
}
