package proto

import (
	"fmt"
	"sort"

	"godsm/internal/lrc"
	"godsm/internal/pagemem"
)

// Pluggable home assignment for the home-based backends. A homeTable maps
// every page to its current home node; it starts as the static mod-N map
// and is updated in lockstep at barrier releases, so every node's replica
// is identical at every point where the assignment is consulted. A
// HomePolicy decides, at the barrier root, which pages move where, from
// per-page access counters the arrivals piggyback.

// PageAcc is one node's access record for one page over one barrier
// episode, piggybacked on barrier arrivals when a dynamic policy runs.
// Static policies attach none, keeping the arrival wire format (and the
// whole run) byte-identical to the fixed mod-N engine.
type PageAcc struct {
	Page   pagemem.PageID
	Node   int32
	Writes int32 // intervals closed here that wrote the page
	Faults int32 // faults taken here on the page
	Msgs   int32 // data-carrying message round trips the faults needed
	Bytes  int64 // diff bytes this node shipped for the page
}

// pageAccWire is the estimated on-wire size of one PageAcc record.
const pageAccWire = 24

// Home-move modes (HomeMove.Mode). Pure home-policy moves use ModeNone;
// the adaptive backend uses ModeHome/ModeDiff to switch a page's protocol.
const (
	ModeNone uint8 = iota
	ModeHome
	ModeDiff
)

// HomeMove is one root decision distributed with the barrier releases:
// either "page's home is now Home" (home policies) or "page now runs in
// mode Mode" (the adaptive backend; Home is ignored there).
type HomeMove struct {
	Page pagemem.PageID
	Home int32
	Mode uint8
}

// homeMoveWire is the estimated on-wire size of one HomeMove record.
const homeMoveWire = 16

func accWireSize(acc []PageAcc) int   { return pageAccWire * len(acc) }
func movesWireSize(mv []HomeMove) int { return homeMoveWire * len(mv) }

// homeTable is one node's replica of the page → home assignment.
type homeTable struct {
	n         int
	overrides map[pagemem.PageID]int32 // absent: static mod-N
}

func newHomeTable(n int) *homeTable {
	return &homeTable{n: n, overrides: make(map[pagemem.PageID]int32)}
}

func (t *homeTable) home(p pagemem.PageID) int {
	if h, ok := t.overrides[p]; ok {
		return int(h)
	}
	return int(p) % t.n
}

// pageTotals aggregates every node's episode counters for one page.
type pageTotals struct {
	page   pagemem.PageID
	writes []int64 // per node
	faults []int64
	msgs   []int64
	bytes  []int64
}

func (t *pageTotals) total() (writes, faults, msgs, bytes int64) {
	for q := range t.writes {
		writes += t.writes[q]
		faults += t.faults[q]
		msgs += t.msgs[q]
		bytes += t.bytes[q]
	}
	return
}

// writers returns how many nodes wrote the page and the lowest-numbered one.
func (t *pageTotals) writers() (count, sole int) {
	sole = -1
	for q := range t.writes {
		if t.writes[q] > 0 {
			count++
			if sole < 0 {
				sole = q
			}
		}
	}
	return
}

// score is the policies' access weight: writes count double since each one
// implies a diff the home must receive.
func (t *pageTotals) score(q int) int64 { return 2*t.writes[q] + t.faults[q] }

// aggregateAcc merges the per-node records into per-page totals, sorted by
// page id so every consumer iterates deterministically.
func aggregateAcc(nprocs int, acc []PageAcc) []pageTotals {
	byPage := make(map[pagemem.PageID]int)
	var out []pageTotals
	for _, a := range acc {
		i, ok := byPage[a.Page]
		if !ok {
			i = len(out)
			byPage[a.Page] = i
			out = append(out, pageTotals{
				page:   a.Page,
				writes: make([]int64, nprocs),
				faults: make([]int64, nprocs),
				msgs:   make([]int64, nprocs),
				bytes:  make([]int64, nprocs),
			})
		}
		t := &out[i]
		t.writes[a.Node] += int64(a.Writes)
		t.faults[a.Node] += int64(a.Faults)
		t.msgs[a.Node] += int64(a.Msgs)
		t.bytes[a.Node] += int64(a.Bytes)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].page < out[j].page })
	return out
}

// HomePolicy decides page→home assignment for the home-based backends.
// Decide runs only at the barrier root, once per episode; the moves it
// returns ride the releases and are applied by every replica in lockstep.
type HomePolicy interface {
	Name() string

	// Dynamic reports whether the policy may ever move a home. False keeps
	// every dynamic code path (counter collection, the barrier wire
	// extensions, the notice filter) disabled, so the run stays
	// byte-identical to the fixed mod-N engine.
	Dynamic() bool

	// Decide returns the home moves for this episode given the aggregated
	// access totals and the current (pre-move) table.
	Decide(tbl *homeTable, agg []pageTotals) []HomeMove
}

// staticPolicy is the fixed page-mod-N assignment (the paper's HLRC).
type staticPolicy struct{}

func (staticPolicy) Name() string                               { return "static" }
func (staticPolicy) Dynamic() bool                              { return false }
func (staticPolicy) Decide(*homeTable, []pageTotals) []HomeMove { return nil }

// firstTouchPolicy assigns each page's home once, to the node with the
// highest access score in the episode where the page first shows traffic
// (ties go to the lowest node id). The assignment then freezes: an override
// present in the table means the page has been claimed.
type firstTouchPolicy struct{}

func (firstTouchPolicy) Name() string  { return "firsttouch" }
func (firstTouchPolicy) Dynamic() bool { return true }

func (firstTouchPolicy) Decide(tbl *homeTable, agg []pageTotals) []HomeMove {
	var moves []HomeMove
	for i := range agg {
		t := &agg[i]
		if _, claimed := tbl.overrides[t.page]; claimed {
			continue
		}
		best, bestScore := -1, int64(0)
		for q := range t.writes {
			if s := t.score(q); s > bestScore {
				best, bestScore = q, s
			}
		}
		if best < 0 {
			continue
		}
		moves = append(moves, HomeMove{Page: t.page, Home: int32(best)})
	}
	return moves
}

// migratePolicy re-homes a page whenever some node's access score dominates
// the current home's by more than 2x (with a minimum absolute score, and at
// most one move per page every migrateHold episodes — hysteresis against
// ping-ponging and against a move being decided while the previous
// transfer is still in flight).
type migratePolicy struct {
	episode  int64
	lastMove map[pagemem.PageID]int64
}

const (
	migrateMinScore = 2
	migrateHold     = 2
)

func (*migratePolicy) Name() string  { return "migrate" }
func (*migratePolicy) Dynamic() bool { return true }

func (m *migratePolicy) Decide(tbl *homeTable, agg []pageTotals) []HomeMove {
	m.episode++
	var moves []HomeMove
	for i := range agg {
		t := &agg[i]
		if last, ok := m.lastMove[t.page]; ok && m.episode-last < migrateHold {
			continue
		}
		cur := tbl.home(t.page)
		best, bestScore := cur, t.score(cur)
		for q := range t.writes {
			if s := t.score(q); s > bestScore {
				best, bestScore = q, s
			}
		}
		if best == cur || bestScore < migrateMinScore || bestScore <= 2*t.score(cur) {
			continue
		}
		moves = append(moves, HomeMove{Page: t.page, Home: int32(best)})
		m.lastMove[t.page] = m.episode
	}
	return moves
}

// HomePolicies returns the selectable home-policy names in presentation
// order (front ends list them in flag help).
func HomePolicies() []string { return []string{"static", "firsttouch", "migrate"} }

// newHomePolicy resolves a policy name; empty selects static.
func newHomePolicy(name string) (HomePolicy, error) {
	switch name {
	case "", "static":
		return staticPolicy{}, nil
	case "firsttouch":
		return firstTouchPolicy{}, nil
	case "migrate":
		return &migratePolicy{lastMove: make(map[pagemem.PageID]int64)}, nil
	default:
		return nil, fmt.Errorf("unknown home policy %q (have: static, firsttouch, migrate)", name)
	}
}

// accCell is one page's local counters for the episode in progress.
type accCell struct {
	writes, faults, msgs int32
	bytes                int64
}

// accSet collects this node's per-page access counters between barriers.
// Pages are tracked in first-touch order and sorted at drain time, so the
// piggybacked records are deterministic without ranging over the map.
type accSet struct {
	cells map[pagemem.PageID]*accCell
	order []pagemem.PageID
}

func newAccSet() *accSet {
	return &accSet{cells: make(map[pagemem.PageID]*accCell)}
}

func (s *accSet) cell(p pagemem.PageID) *accCell {
	c, ok := s.cells[p]
	if !ok {
		c = &accCell{}
		s.cells[p] = c
		s.order = append(s.order, p)
	}
	return c
}

// drain empties the set into wire records sorted by page.
func (s *accSet) drain(node int) []PageAcc {
	if len(s.order) == 0 {
		return nil
	}
	sort.Slice(s.order, func(i, j int) bool { return s.order[i] < s.order[j] })
	out := make([]PageAcc, 0, len(s.order))
	for _, p := range s.order {
		c := s.cells[p]
		out = append(out, PageAcc{
			Page: p, Node: int32(node),
			Writes: c.writes, Faults: c.faults, Msgs: c.msgs, Bytes: c.bytes,
		})
		delete(s.cells, p)
	}
	s.order = s.order[:0]
	return out
}

// The barrier code consults these optional chassis hooks so it stays
// agnostic of which backend (if any) adapts at episode boundaries.

// homeHooks is implemented by coherence backends whose page→home or
// page→mode assignment adapts at barrier episodes.
type homeHooks interface {
	// episodeAcc drains this node's access counters for the arrival.
	episodeAcc() []PageAcc
	// decideMoves runs at the barrier root with every node's records.
	decideMoves(acc []PageAcc) []HomeMove
	// applyMoves applies the root's decisions to this node's replica; it
	// runs on every node after release intake, before threads resume.
	applyMoves(moves []HomeMove)
}

// noticeFilter is implemented by backends that can prove a write notice's
// data is already in the local frame (a home whose applied vector covers
// the interval), suppressing the invalidation.
type noticeFilter interface {
	filterNotice(p pagemem.PageID, id lrc.IntervalID) bool
}

func (n *Node) episodeAcc() []PageAcc {
	if h, ok := n.coh.(homeHooks); ok {
		return h.episodeAcc()
	}
	return nil
}

func (n *Node) decideMoves(acc []PageAcc) []HomeMove {
	if h, ok := n.coh.(homeHooks); ok {
		return h.decideMoves(acc)
	}
	return nil
}

func (n *Node) applyMoves(moves []HomeMove) {
	if len(moves) == 0 {
		return
	}
	h, ok := n.coh.(homeHooks)
	if !ok {
		n.invariantf("node %d received %d home moves but runs a fixed-home backend",
			n.ID, len(moves))
	}
	h.applyMoves(moves)
}
