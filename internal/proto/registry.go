package proto

import (
	"fmt"
	"sort"

	"godsm/internal/lrc"
	"godsm/internal/pagemem"
)

// Backend is one registered coherence protocol: a name, a one-line
// description, an optional config validator, and a builder producing the
// per-node subsystem set.
type Backend struct {
	Name string
	Doc  string

	// Validate rejects Config combinations the backend cannot honor; nil
	// accepts everything.
	Validate func(cfg Config) error

	// Build constructs the backend's subsystems for one node. It runs
	// during NewNode, after the chassis state is initialized.
	Build func(n *Node, cfg Config) Subsystems
}

// The registry is populated at init time (and by tests); simulations only
// read it, so no locking is needed beyond Go's init ordering.
var registry = map[string]*Backend{}

// Register adds a backend to the protocol registry. It panics on a
// duplicate or empty name — registration happens at init time, where a
// conflict is a programming error.
func Register(b *Backend) {
	if b.Name == "" {
		configInvariantf("proto: Register with empty backend name")
	}
	if _, dup := registry[b.Name]; dup {
		configInvariantf("proto: duplicate backend %s", b.Name)
	}
	registry[b.Name] = b
}

// Lookup resolves a protocol name to its backend. The empty name resolves
// to the default ("lrc"). Unknown names return an error listing the
// registered protocols.
func Lookup(name string) (*Backend, error) {
	if name == "" {
		name = "lrc"
	}
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("unknown protocol %q (registered: %v)", name, Names())
	}
	return b, nil
}

// Names returns the registered protocol names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ValidateConfig checks that cfg names a registered backend and that the
// backend accepts its knob combination.
func ValidateConfig(cfg Config) error {
	b, err := Lookup(cfg.Protocol)
	if err != nil {
		return err
	}
	if err := validateCommon(cfg); err != nil {
		return err
	}
	if b.Validate != nil {
		return b.Validate(cfg)
	}
	return nil
}

// validateCommon checks the backend-independent machine knobs (barrier
// topology, gossip parameters).
func validateCommon(cfg Config) error {
	switch cfg.Barrier {
	case "", "central", "tree":
	default:
		return fmt.Errorf("unknown barrier %q (have: central, tree)", cfg.Barrier)
	}
	if cfg.BarrierFanout != 0 && cfg.BarrierFanout < 2 {
		return fmt.Errorf("barrier fanout %d: a combining tree needs arity >= 2", cfg.BarrierFanout)
	}
	if cfg.GossipFanout < 0 {
		return fmt.Errorf("gossip fanout %d must be >= 0 (0 selects the default)", cfg.GossipFanout)
	}
	if cfg.GossipInterval < 0 {
		return fmt.Errorf("gossip interval %d must be >= 0 (0 selects the default)", cfg.GossipInterval)
	}
	return nil
}

// rejectHomePolicy is the validation shared by every backend without
// pluggable homes.
func rejectHomePolicy(proto string, cfg Config) error {
	if cfg.HomePolicy != "" {
		return fmt.Errorf("protocol %s has no home assignment; HomePolicy must be empty, got %q", proto, cfg.HomePolicy)
	}
	return nil
}

func init() {
	Register(&Backend{
		Name:     "lrc",
		Doc:      "TreadMarks-style lazy release consistency: distributed diff fetch at fault time, diff GC at barriers",
		Validate: func(cfg Config) error { return rejectHomePolicy("lrc", cfg) },
		Build:    buildDiffBased(false),
	})
	Register(&Backend{
		Name:     "erc",
		Doc:      "eager release consistency (Munin-style): write notices broadcast at every release; data still moves as lazy diffs",
		Validate: func(cfg Config) error { return rejectHomePolicy("erc", cfg) },
		Build:    buildDiffBased(true),
	})
	Register(&Backend{
		Name:     "hlrc",
		Doc:      "home-based LRC: writers flush diffs to each page's home at release; faults fetch the whole page from home; no diff GC",
		Validate: validateHLRC,
		Build:    buildHLRC,
	})
	Register(&Backend{
		Name:     "adp",
		Doc:      "adaptive coherence: per-page switching between diff-based (lrc) and home-based (hlrc) regimes at barrier episodes",
		Validate: validateADP,
		Build:    buildADP,
	})
}

// buildDiffBased builds the shared LRC/ERC subsystem set; eager selects the
// eager-release-consistency notice broadcast at interval close.
func buildDiffBased(eager bool) func(n *Node, cfg Config) Subsystems {
	return func(n *Node, cfg Config) Subsystems {
		coh := &lrcCoherence{n: n, eager: eager, pfReliable: cfg.PfReliable}
		if cfg.Gossip {
			n.gossip = newGossiper(n, cfg) // nil on one-node clusters
		}
		return Subsystems{
			Coherence: coh,
			Prefetch:  &lrcPrefetcher{n: n, throttle: cfg.ThrottlePf, reliable: cfg.PfReliable},
			Sync:      newSyncManager(n, cfg),
			GC:        &lrcGC{n: n, threshold: cfg.GCThreshold, sharedPfHeap: cfg.PfHeapSharedGC},
		}
	}
}

func validateHLRC(cfg Config) error {
	if cfg.GCThreshold != 0 {
		return fmt.Errorf("protocol hlrc has no diff GC (homes apply diffs eagerly); GCThreshold must be 0, got %d", cfg.GCThreshold)
	}
	if cfg.PfHeapSharedGC {
		return fmt.Errorf("protocol hlrc has no diff GC; PfHeapSharedGC does not apply")
	}
	if cfg.Gossip {
		return fmt.Errorf("protocol hlrc distributes notices through page homes; Gossip does not apply")
	}
	if _, err := newHomePolicy(cfg.HomePolicy); err != nil {
		return err
	}
	return nil
}

// newHLRC builds the home-based coherence pair. The adaptive backend embeds
// one with the static policy and tracking off (it counts at its own layer).
func newHLRC(n *Node, cfg Config, policy HomePolicy) (*hlrcCoherence, *hlrcPrefetcher) {
	pf := &hlrcPrefetcher{
		n: n, throttle: cfg.ThrottlePf, reliable: cfg.PfReliable,
		cache: make(map[pagemem.PageID]*pfPage),
	}
	coh := &hlrcCoherence{
		n: n, pf: pf, pfReliable: cfg.PfReliable,
		homes:   newHomeTable(n.N),
		policy:  policy,
		dyn:     policy.Dynamic(),
		applied: make(map[pagemem.PageID]lrc.VC),
		parked:  make(map[pagemem.PageID][]*msgPageReq),
		asked:   make(map[pagemem.PageID]map[lrc.IntervalID]bool),
	}
	if coh.dyn {
		coh.track = true
		coh.acc = newAccSet()
		coh.xin = make(map[pagemem.PageID]*xferIn)
		coh.away = make(map[pagemem.PageID]bool)
	}
	pf.coh = coh
	return coh, pf
}

func buildHLRC(n *Node, cfg Config) Subsystems {
	policy, err := newHomePolicy(cfg.HomePolicy)
	if err != nil {
		configInvariantf("proto: %v", err)
	}
	coh, pf := newHLRC(n, cfg, policy)
	return Subsystems{
		Coherence: coh,
		Prefetch:  pf,
		Sync:      newSyncManager(n, cfg),
		GC:        noGC{n: n},
	}
}
