package proto

import (
	"fmt"

	"godsm/internal/event"
	"godsm/internal/lrc"
	"godsm/internal/netsim"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// The adaptive backend ("adp"): every page runs in one of two per-page
// protocol modes and can switch between them at barrier episodes.
//
//   - diff mode (the default): TreadMarks-style lazy release consistency.
//     Twins are kept at interval close, diffs are created on demand and
//     fetched from their writers at fault time.
//   - home mode: home-based LRC. Writers flush diffs to the page's home
//     (static mod-N; adp never moves homes) at interval close; faults fetch
//     the whole page from the home.
//
// Per-page access counters piggyback on barrier arrivals; the barrier root
// decides mode switches from the aggregated episode totals (decideMoves) and
// distributes them on the releases, so every replica's mode map flips in
// lockstep. Since no demand fetch is ever in flight across a barrier (the
// faulting thread cannot have arrived), a switch never races a demand fetch.
//
// The transition machinery is where the two regimes meet:
//
//   - diff -> home: intervals closed before the switch left their diffs at
//     the writers. The home runs a "fill": it fetches the missing diffs for
//     its pending notices, applies them, and declares its frame current
//     through the switch VC (applied = fillVC). Flushes arriving during the
//     fill are buffered (xferIn.fill) and replayed after the install, and
//     remote demand requests park at the home until the fill completes.
//   - home -> diff: intervals closed before the switch were flushed to the
//     home and dropped at the writers — no diff exists for them anywhere.
//     Every node snapshots the switch VC (exCover); a later fault whose
//     pending list mixes such flush-era intervals with new diff-era ones
//     runs a "hybrid" fetch: one whole-page request to the home (whose
//     applied vector covers everything at or below exCover) installed as a
//     base, plus ordinary diff requests for the post-switch intervals,
//     applied causally on top. The barrier cut guarantees every post-switch
//     interval is causally after every pre-switch one, so base-then-diffs is
//     a causal order.
//
// The home keeps its applied vector across a home -> diff switch, so it can
// serve flush-era base requests for as long as stale pendings surface.
type adpCoherence struct {
	n   *Node
	hl  *hlrcCoherence // the embedded home-based engine (static homes, no tracking)
	lc  *lrcCoherence  // the embedded diff-based engine
	hpf *hlrcPrefetcher

	// mode holds ModeHome entries only; an absent page runs in diff mode.
	mode map[pagemem.PageID]uint8

	// exCover[p] is the vector time at p's most recent home -> diff switch:
	// an interval at or below it was flushed to the home during the home
	// tenure (or covered by the fill) and has no writer-held diff.
	exCover map[pagemem.PageID]lrc.VC

	// acc collects this node's per-page counters for the episode in progress.
	acc *accSet

	// Barrier-root decision state.
	episode    int64
	lastSwitch map[pagemem.PageID]int64
	// burned marks pages evicted from home mode because the home regime was
	// losing on them; they never re-enter (the apps are phase-regular, so one
	// bad tenure predicts the next, and the bar prevents oscillation).
	burned map[pagemem.PageID]bool
	// everMulti marks pages that have had two or more writers in some
	// episode. Such pages never enter home mode: phase-regular apps will
	// write them that way again, and a multi-writer episode under the home
	// regime pays a flush round trip per writer.
	everMulti map[pagemem.PageID]bool
}

// Decision thresholds (decideMoves). A page switches at most once per
// adpHold episodes — hysteresis against ping-ponging, and enough slack that
// a fill's diff requests are long resolved before the page can switch again.
const (
	adpHold      = 2
	adpMinFaults = 3
	// adpPageFrac sets the "diffs are effectively page-sized" cut: a page
	// whose gathered diff volume reaches PageSize/adpPageFrac per gather
	// moves data at page granularity already, so the home regime's
	// whole-page replies cost little extra and its eager flush application
	// removes the gather latency. A quarter page leaves margin below the
	// full-page producer/consumer signature (a near-page diff per gather,
	// with issued prefetches and the demand fault both counted as gathers)
	// while staying far above fine-grained diff traffic.
	adpPageFrac = 4
)

func validateADP(cfg Config) error {
	if cfg.GCThreshold != 0 {
		return fmt.Errorf("protocol adp has no diff GC; GCThreshold must be 0, got %d", cfg.GCThreshold)
	}
	if cfg.PfHeapSharedGC {
		return fmt.Errorf("protocol adp has no diff GC; PfHeapSharedGC does not apply")
	}
	if cfg.Gossip {
		return fmt.Errorf("protocol adp distributes notices through synchronization; Gossip does not apply")
	}
	if cfg.HomePolicy != "" {
		return fmt.Errorf("protocol adp keeps homes static and adapts the per-page mode instead; HomePolicy must be empty, got %q", cfg.HomePolicy)
	}
	return nil
}

func buildADP(n *Node, cfg Config) Subsystems {
	hl, hpf := newHLRC(n, cfg, staticPolicy{})
	hl.xin = make(map[pagemem.PageID]*xferIn) // fills buffer arriving flushes here
	lc := &lrcCoherence{n: n, pfReliable: cfg.PfReliable}
	lpf := &lrcPrefetcher{n: n, throttle: cfg.ThrottlePf, reliable: cfg.PfReliable}
	coh := &adpCoherence{
		n: n, hl: hl, lc: lc, hpf: hpf,
		mode:       make(map[pagemem.PageID]uint8),
		exCover:    make(map[pagemem.PageID]lrc.VC),
		acc:        newAccSet(),
		lastSwitch: make(map[pagemem.PageID]int64),
		burned:     make(map[pagemem.PageID]bool),
		everMulti:  make(map[pagemem.PageID]bool),
	}
	return Subsystems{
		Coherence: coh,
		Prefetch:  &adpPrefetcher{c: coh, hpf: hpf, lpf: lpf},
		Sync:      newSyncManager(n, cfg),
		GC:        noGC{n: n},
	}
}

func (c *adpCoherence) homeMode(p pagemem.PageID) bool { return c.mode[p] == ModeHome }

// preSwitch returns p's pending intervals that closed at or before the
// page's last home -> diff switch: their diffs were flushed to the home and
// dropped at the writers, so only the home's frame can resolve them.
func (c *adpCoherence) preSwitch(p pagemem.PageID) []lrc.IntervalID {
	ex, ok := c.exCover[p]
	if !ok {
		return nil
	}
	var old []lrc.IntervalID
	for _, id := range c.n.page(p).pending {
		if id.Seq <= ex[id.Node] {
			old = append(old, id)
		}
	}
	return old
}

// Fault resolves an access to an invalid page under the page's current mode.
func (c *adpCoherence) Fault(p pagemem.PageID, onValid func()) {
	n := c.n
	if n.PageValid(p) {
		n.pageInvariantf(p, "Fault on valid page %d", p)
	}
	if f, ok := n.fetches[p]; ok {
		// A plain fetch without waiters can only be a coverage-wait residual
		// left behind by an earlier home tenure (an lrc demand fetch carries
		// its first waiter from birth to completion). If the page has since
		// switched to the diff regime, flushes alone cannot resolve its new
		// notices: upgrade it to a hybrid fetch so post-switch diffs are
		// requested too. Scrub any diff-era ids the hlrc coverage loop re-armed
		// into needed — they were never requested as diffs and are now ours.
		residual := !f.fill && !f.hybrid && len(f.waiters) == 0
		f.waiters = append(f.waiters, onValid)
		if residual && !c.homeMode(p) {
			f.hybrid = true
			if ex := c.exCover[p]; ex != nil {
				for id := range f.needed {
					if id.Seq > ex[id.Node] {
						delete(f.needed, id)
					}
				}
			}
			c.acc.cell(p).faults++
			c.tryCompleteHybrid(p)
		}
		return
	}

	if !c.homeMode(p) {
		if old := c.preSwitch(p); len(old) > 0 {
			c.hybridFault(p, old, onValid)
			return
		}
		cl := c.acc.cell(p)
		cl.faults++
		if missing := n.missingDiffs(p); len(missing) > 0 {
			nodes, _ := groupByNode(missing)
			cl.msgs += int32(len(nodes))
		}
		c.lc.Fault(p, onValid)
		return
	}

	// Home regime. Count at this layer (the embedded engine's tracking is
	// off); one round trip unless the fault resolves from the local frame or
	// the whole-page prefetch cache.
	ps := n.page(p)
	cl := c.acc.cell(p)
	cl.faults++
	home := c.hl.home(p)
	if home != n.ID {
		if pg := c.hpf.cache[p]; pg == nil || ps.twinned || anyOutsideSet(ps.pending, pg.covers) {
			cl.msgs++
		}
	}
	if ps.twinned && ps.hasUndiffed {
		// A diff-era twin survived into the home regime (its interval closed
		// lazily, later writes kept folding in). Commit it and flush the
		// diff home ahead of the page request — per-pair FIFO then puts these
		// writes in the reply's copy instead of under it.
		id := ps.undiffed
		cost := n.makeOwnDiff(p)
		if home == n.ID {
			n.CPU.Service(cost, sim.CatDSM)
		} else {
			d, ok := n.storedDiff(id, p)
			if !ok {
				n.pageInvariantf(p, "page %d lost its own diff for %v", p, id)
			}
			cost += n.C.MsgSend
			done := n.CPU.Service(cost, sim.CatDSM)
			n.sendAfter(done, c.hl.flushMsg(home, &msgHomeFlush{From: n.ID, ID: id, Page: p, Diff: d}))
		}
	}
	c.hl.Fault(p, onValid)
}

// hybridFault starts a fetch that combines a whole-page base request to the
// home (for the flush-era pendings in old) with diff requests for the
// post-switch pendings.
func (c *adpCoherence) hybridFault(p pagemem.PageID, old []lrc.IntervalID, onValid func()) {
	n := c.n
	ps := n.page(p)
	pfst := n.pf[p]
	delete(n.pf, p)
	cl := c.acc.cell(p)
	cl.faults++

	var outcome int64
	switch {
	case pfst == nil:
		outcome = event.OutcomeNoPf
	case anyOutside(ps.pending, pfst.requested):
		outcome = event.OutcomePfInvalided
	default:
		outcome = event.OutcomePfLate
	}
	n.bus.Emit(event.FaultRemote(n.ID, int64(p), outcome, len(ps.pending)))

	f := &fetch{
		page:    p,
		needed:  make(map[lrc.IntervalID]bool),
		waiters: []func(){onValid},
		start:   n.K.Now(),
		hybrid:  true,
	}
	n.fetches[p] = f

	if home := c.hl.home(p); home != n.ID {
		// One base request naming only the flush-era intervals: the home's
		// applied vector reaches exCover once its in-flight flushes land, so
		// the request parks at worst briefly and can never park on an
		// interval the home will not learn of.
		cl.msgs++
		done := n.CPU.Service(n.C.FaultEntry+n.C.MsgSend, sim.CatDSM)
		n.sendAfter(done, &netsim.Message{
			Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(home),
			Size:     n.C.HeaderBytes + n.C.ReqBytes + 12*len(old),
			Reliable: true, Kind: KindPageReq,
			Payload: &msgPageReq{From: n.ID, Page: p, Need: old},
		})
	} else {
		// The flush-era data lands in this frame by itself (we are the home);
		// only the post-switch diffs move.
		n.CPU.Service(n.C.FaultEntry, sim.CatDSM)
	}
	c.tryCompleteHybrid(p)
}

// tryCompleteHybrid re-evaluates a hybrid fetch: the flush-era side must be
// satisfied (base installed, or — at the home — every flush-era pending
// covered), and every post-switch pending must have a stored diff. Missing
// post-switch diffs not yet asked for are requested here, which also picks
// up notices taken in while the fetch was in flight.
func (c *adpCoherence) tryCompleteHybrid(p pagemem.PageID) {
	n := c.n
	f, ok := n.fetches[p]
	if !ok || !f.hybrid {
		return
	}
	ps := n.page(p)
	home := c.hl.home(p)
	ex := c.exCover[p]
	var post []lrc.IntervalID
	for _, id := range ps.pending {
		if ex != nil && id.Seq <= ex[id.Node] {
			if home == n.ID && !c.hl.covered(p, id) {
				return // the covering flush is still in flight
			}
			continue
		}
		post = append(post, id)
	}
	if home != n.ID && f.pageData == nil {
		return
	}
	var fresh []lrc.IntervalID
	missing := false
	for _, id := range post {
		if _, ok := n.storedDiff(id, p); !ok {
			missing = true
			if !f.needed[id] {
				fresh = append(fresh, id)
			}
		}
	}
	if missing {
		if len(fresh) > 0 {
			nodes, _ := groupByNode(fresh)
			c.acc.cell(p).msgs += int32(len(nodes))
			c.lc.issueDiffRequests(f, fresh, 0)
		}
		return
	}
	c.finishHybrid(p, f, post)
}

// finishHybrid installs a completed hybrid fetch: commit any open local
// writes, lay down the base (which covers every flush-era pending), apply
// the post-switch diffs causally on top, and re-apply the local writes last
// (they are concurrent with the post-switch intervals, hence byte-disjoint
// under race freedom).
func (c *adpCoherence) finishHybrid(p pagemem.PageID, f *fetch, post []lrc.IntervalID) {
	n := c.n
	ps := n.page(p)
	var cost sim.Time
	var lm *pagemem.Diff
	if ps.twinned {
		lm = pagemem.MakeDiff(p, n.Store.Twin(p), n.Store.Frame(p))
		cost += n.makeOwnDiff(p)
	}
	if f.pageData != nil {
		copy(n.Store.Frame(p), f.pageData)
		n.bus.Emit(event.HomeFetch(n.ID, c.hl.home(p), int64(p), pagemem.PageSize))
		cost += n.C.DiffApply + sim.Time(n.C.ApplyNs*float64(pagemem.PageSize))
	}
	cost += c.applyIDs(p, post)
	if f.pageData != nil && lm != nil && len(lm.Runs) > 0 {
		lm.Apply(n.Store.Frame(p))
	}
	ps.pending = ps.pending[:0]
	delete(n.fetches, p)
	done := n.CPU.Service(cost, sim.CatDSM)
	n.bus.Emit(event.FetchDone(n.ID, int64(p), done-f.start))
	waiters := f.waiters
	n.K.At(done, func() {
		for _, w := range waiters {
			w()
		}
	})
}

// applyIDs applies the stored diffs of the given pending intervals to p's
// frame in causal order — a subset apply; the caller resolves the rest of
// the pending list by other means. Returns the CPU cost.
func (c *adpCoherence) applyIDs(p pagemem.PageID, ids []lrc.IntervalID) sim.Time {
	n := c.n
	if len(ids) == 0 {
		return 0
	}
	ivs := make([]*lrc.Interval, 0, len(ids))
	for _, id := range ids {
		iv := n.ivs[id.Node][id.Seq-1]
		if iv == nil {
			n.pageInvariantf(p, "pending interval %v on page %d without record", id, p)
		}
		ivs = append(ivs, iv)
	}
	lrc.SortCausally(ivs)
	frame := n.Store.Frame(p)
	var cost sim.Time
	for _, iv := range ivs {
		d, ok := n.storedDiff(iv.ID, p)
		if !ok {
			n.pageInvariantf(p, "node %d applying page %d without diff for %v", n.ID, p, iv.ID)
		}
		if d != nil && len(d.Runs) > 0 {
			n.bus.Emit(event.DiffApply(n.ID, int64(p), d.DataBytes()))
			d.Apply(frame)
			cost += n.C.DiffApply + sim.Time(n.C.ApplyNs*float64(d.DataBytes()))
		} else {
			cost += n.C.DiffApply / 2
		}
	}
	return cost
}

// AfterClose counts the interval's writes and flushes home-mode pages; diff-
// mode pages stay lazy (their twins are kept, diffs made on demand).
func (c *adpCoherence) AfterClose(iv *lrc.Interval) {
	n := c.n
	var cost sim.Time
	for _, p := range iv.Pages {
		cl := c.acc.cell(p)
		cl.writes++
		if c.homeMode(p) {
			if c.hl.home(p) != n.ID {
				// Size the flush before flushPage drops the twin, so the
				// decide rule can compare flush volume against page-sized
				// replies (self-home flushes move nothing).
				if d := pagemem.MakeDiff(p, n.Store.Twin(p), n.Store.Frame(p)); d != nil {
					cl.bytes += int64(d.DataBytes())
				}
			}
			cost = c.hl.flushPage(iv.ID, p, cost)
		}
	}
	if cost > 0 {
		n.CPU.Service(cost, sim.CatDSM)
	}
}

// Handle dispatches both engines' message kinds, routing replies that belong
// to a transition fetch (hybrid or fill) to the adaptive completion logic.
func (c *adpCoherence) Handle(m *netsim.Message) bool {
	n := c.n
	switch pl := m.Payload.(type) {
	case *msgHomeFlush:
		c.hl.handleHomeFlush(pl)
		if f := n.fetches[pl.Page]; f != nil && f.hybrid {
			c.tryCompleteHybrid(pl.Page)
		}
	case *msgPageReq:
		// Serving a hybrid base for an evicted page: commit any open local
		// writes first (interval split), so the served frame holds only
		// closed-interval data. Diffs are byte-granular, so a diff applied
		// onto a base that already holds part of a newer interval of the
		// same words would leave merged values behind.
		if !c.homeMode(pl.Page) {
			if ps := n.page(pl.Page); ps.twinned {
				n.CPU.Service(n.makeOwnDiff(pl.Page), sim.CatDSM)
			}
		}
		c.hl.handlePageReq(pl)
	case *msgPageReply:
		if f := n.fetches[pl.Page]; f != nil && f.hybrid && !pl.Prefetch {
			f.pageData = append([]byte(nil), pl.Data...)
			c.tryCompleteHybrid(pl.Page)
			return true
		}
		c.hl.handlePageReply(pl)
	case *msgDiffReq:
		c.lc.handleDiffReq(pl)
	case *msgDiffReply:
		c.handleDiffReply(pl)
	case *msgEagerNotice:
		c.lc.handleEagerNotice(pl)
	case *msgHomeXfer:
		n.pageInvariantf(pl.Page, "node %d got a home transfer under adp (homes are static)", n.ID)
	default:
		return false
	}
	return true
}

// handleDiffReply routes an arriving diff reply. Replies feeding a hybrid
// fetch or a fill complete through the adaptive logic; a stale prefetch
// reply racing a home-mode whole-page fetch is banked (stored, inflight
// decremented) without touching that fetch's bookkeeping, whose needs are
// interval coverage, not diffs.
func (c *adpCoherence) handleDiffReply(rep *msgDiffReply) {
	n := c.n
	// Gather volume is counted here, at the receiver: a node cannot pass the
	// next barrier until its demand fetches complete, so receiver-side counts
	// land in the episode that caused them. (Counting at the server loses the
	// requests it serves after its own arrival drained its counters.)
	cl := c.acc.cell(rep.Page)
	for _, it := range rep.Items {
		if it.Diff != nil {
			cl.bytes += int64(it.Diff.DataBytes())
		}
	}
	f := n.fetches[rep.Page]
	if f != nil && (f.hybrid || f.fill) {
		for _, it := range rep.Items {
			n.putDiff(it.ID, rep.Page, it.Diff, rep.Prefetch)
		}
		if pfst, ok := n.pf[rep.Page]; ok && rep.Prefetch && pfst.inflight > 0 {
			pfst.inflight--
		}
		for _, it := range rep.Items {
			delete(f.needed, it.ID)
		}
		if f.fill {
			c.tryCompleteFill(rep.Page)
		} else {
			c.tryCompleteHybrid(rep.Page)
		}
		return
	}
	if f != nil && c.homeMode(rep.Page) {
		for _, it := range rep.Items {
			n.putDiff(it.ID, rep.Page, it.Diff, rep.Prefetch)
		}
		if pfst, ok := n.pf[rep.Page]; ok && rep.Prefetch && pfst.inflight > 0 {
			pfst.inflight--
		}
		return
	}
	c.lc.handleDiffReply(rep)
}

// startFill begins the home's side of a diff -> home switch: fetch the
// diff-era pendings' missing diffs, then declare the frame current through
// the switch (applied = switchVC). prevEx is the previous home -> diff
// switch VC; pendings at or below it are flush-era — their data arrives as
// (possibly still in-flight) home flushes, not as writer-held diffs.
// Returns any CPU cost for the caller to charge.
func (c *adpCoherence) startFill(p pagemem.PageID, switchVC, prevEx lrc.VC) sim.Time {
	n := c.n
	hl := c.hl
	if f := n.fetches[p]; f != nil {
		if f.fill || f.hybrid || len(f.waiters) > 0 {
			n.pageInvariantf(p, "mode switch to home for page %d with a demand fetch in flight", p)
		}
		// A waiterless coverage-wait from an earlier tenure (its flush still
		// in flight); the fill supersedes it.
		delete(n.fetches, p)
	}
	if hl.xin[p] != nil {
		n.pageInvariantf(p, "mode switch to home for page %d with a fill already pending", p)
	}
	ps := n.page(p)
	if len(ps.pending) == 0 {
		// The frame is already current: nothing to collect.
		hl.applied[p] = switchVC.Clone()
		return 0
	}
	var want []lrc.IntervalID
	for _, id := range ps.pending {
		if prevEx != nil && id.Seq <= prevEx[id.Node] {
			continue
		}
		if _, ok := n.storedDiff(id, p); !ok {
			want = append(want, id)
		}
	}
	hl.xin[p] = &xferIn{fill: true}
	f := &fetch{
		page:   p,
		needed: make(map[lrc.IntervalID]bool, len(want)),
		start:  n.K.Now(),
		fill:   true,
		fillVC: switchVC.Clone(),
		fillEx: prevEx,
	}
	n.fetches[p] = f
	if len(want) > 0 {
		c.lc.issueDiffRequests(f, want, 0)
		return 0
	}
	c.tryCompleteFill(p)
	return 0
}

// tryCompleteFill installs a fill once every requested diff has arrived:
// apply the diff-era pendings causally, set applied to the switch VC, replay
// the flushes buffered while the fill ran, and leave an hlrc-style coverage
// wait behind for flush-era pendings whose flushes are still in flight.
func (c *adpCoherence) tryCompleteFill(p pagemem.PageID) {
	n := c.n
	hl := c.hl
	f, ok := n.fetches[p]
	if !ok || !f.fill {
		return
	}
	if len(f.needed) > 0 {
		return
	}
	ps := n.page(p)
	var apply []lrc.IntervalID
	for _, id := range ps.pending {
		if f.fillEx != nil && id.Seq <= f.fillEx[id.Node] {
			continue
		}
		if _, ok := n.storedDiff(id, p); !ok {
			// Every diff-era pending was known at the switch barrier (its
			// record propagated with the releases), so the fill asked for it.
			n.pageInvariantf(p, "fill for page %d missing the diff for %v", p, id)
		}
		apply = append(apply, id)
	}
	var cost sim.Time
	if ps.twinned && len(apply) > 0 {
		cost += n.makeOwnDiff(p)
	}
	cost += c.applyIDs(p, apply)
	rest := ps.pending[:0]
	for _, id := range ps.pending {
		if f.fillEx != nil && id.Seq <= f.fillEx[id.Node] {
			rest = append(rest, id)
		}
	}
	ps.pending = rest
	hl.applied[p] = f.fillVC.Clone()
	delete(n.fetches, p)
	done := n.CPU.Service(cost, sim.CatDSM)
	if st := hl.xin[p]; st != nil {
		buf := st.buf
		delete(hl.xin, p)
		for _, fl := range buf {
			hl.handleHomeFlush(fl)
		}
	}
	hl.serveParked(p)
	var uncovered []lrc.IntervalID
	for _, id := range ps.pending {
		if !hl.covered(p, id) {
			uncovered = append(uncovered, id)
		}
	}
	if len(uncovered) > 0 {
		// Flush-era stragglers: wait for their flushes like a home fault.
		f2 := &fetch{
			page:    p,
			needed:  make(map[lrc.IntervalID]bool, len(uncovered)),
			waiters: f.waiters,
			start:   f.start,
		}
		for _, id := range uncovered {
			f2.needed[id] = true
		}
		n.fetches[p] = f2
		return
	}
	ps.pending = ps.pending[:0]
	n.bus.Emit(event.FetchDone(n.ID, int64(p), done-f.start))
	waiters := f.waiters
	n.K.At(done, func() {
		for _, w := range waiters {
			w()
		}
	})
}

// episodeAcc drains this node's per-page counters for a barrier arrival.
func (c *adpCoherence) episodeAcc() []PageAcc { return c.acc.drain(c.n.ID) }

// decideMoves picks this episode's mode switches at the barrier root.
//
//   - diff -> home when the page was purely consumed this episode (no
//     writers), took enough faults to matter (adpMinFaults — under
//     prefetching a single reader's demand fault and its issued prefetch
//     both count as gathers, so 3 excludes single-reader pages), and its
//     gathers pulled near-page volume (bytes >= faults*PageSize/adpPageFrac):
//     the home collapses those page-sized gathers into one eager-applied
//     transfer (the FFT/LU transpose pattern). Pages that ever had two or
//     more writers in an episode (everMulti) never enter: their writers
//     would each pay a flush round trip through the home every episode, the
//     regime hlrc loses on for OCEAN/WATER.
//   - home -> diff when the page turns out to be multi-writer after all
//     (wc >= 2), or when it has a single writer that is not the home and its
//     flushes move far less than page-sized replies: readers would fetch
//     those byte-sized diffs straight from the writer, but through the home
//     they pay a page-sized reply plus the flush detour (the SOR boundary-
//     page pattern). An evicted page is burned — it never re-enters, so a
//     wrong entry costs one episode and evictions cannot oscillate.
func (c *adpCoherence) decideMoves(acc []PageAcc) []HomeMove {
	c.episode++
	agg := aggregateAcc(c.n.N, acc)
	var moves []HomeMove
	for i := range agg {
		t := &agg[i]
		wc, sole := t.writers()
		if wc >= 2 {
			c.everMulti[t.page] = true
		}
		writes, faults, _, bytes := t.total()
		if c.homeMode(t.page) {
			smallDiffs := wc == 1 && sole != int(t.page)%c.n.N &&
				bytes < writes*pagemem.PageSize/adpPageFrac
			if wc >= 2 || smallDiffs {
				moves = append(moves, HomeMove{Page: t.page, Mode: ModeDiff})
				c.lastSwitch[t.page] = c.episode
				c.burned[t.page] = true
			}
			continue
		}
		// Hysteresis applies only to entering home mode: a page that never
		// switched cannot ping-pong, short apps need the first decision at
		// the first barrier, and an eviction must be allowed at the very
		// next decide so a wrong entry costs one episode.
		if last, ok := c.lastSwitch[t.page]; ok && c.episode-last < adpHold {
			continue
		}
		if c.burned[t.page] || c.everMulti[t.page] {
			continue
		}
		// wc == 0 restricts the switch to pages that were purely consumed
		// this episode — the settled producer/consumer signature (FFT/LU:
		// written in an earlier phase, now gathered by many readers). Pages
		// still being written each episode (SOR boundary rows, the WATER
		// molecular arrays, OCEAN stencil borders) stay diff-based.
		if wc == 0 && faults >= adpMinFaults &&
			bytes >= faults*pagemem.PageSize/adpPageFrac {
			moves = append(moves, HomeMove{Page: t.page, Mode: ModeHome})
			c.lastSwitch[t.page] = c.episode
		}
	}
	return moves
}

// applyMoves flips the mode map in lockstep on every node at release intake.
// The merged release VC (identical on every node at this point) timestamps
// the switch: it becomes the fill's coverage target on a diff -> home switch
// and the page's exCover on a home -> diff switch.
func (c *adpCoherence) applyMoves(moves []HomeMove) {
	n := c.n
	var cost sim.Time
	for _, mv := range moves {
		p := mv.Page
		switch mv.Mode {
		case ModeHome:
			if c.homeMode(p) {
				n.pageInvariantf(p, "page %d switched to home mode twice", p)
			}
			c.mode[p] = ModeHome
			prevEx := c.exCover[p]
			delete(c.exCover, p)
			cost += n.C.IntervalOp
			n.bus.Emit(event.ModeSwitch(n.ID, int64(p), true))
			if ps := n.page(p); ps.twinned {
				// A diff-era twin survived into the switch (its interval
				// closed lazily, keeping the twin for on-demand diffing).
				// Commit it now: home-mode closes only flush pages their
				// interval names, so a later write folding into this twin
				// would never publish a notice or flush again and readers
				// would keep stale copies for the rest of the tenure. All
				// intervals are closed at this point (applyMoves runs
				// between release intake and thread resume), so the twin
				// belongs to the undiffed closed interval exactly.
				cost += n.makeOwnDiff(p)
			}
			if c.hl.home(p) == n.ID {
				cost += c.startFill(p, n.vc.Clone(), prevEx)
			}
		case ModeDiff:
			if !c.homeMode(p) {
				n.pageInvariantf(p, "page %d switched to diff mode while not home-based", p)
			}
			delete(c.mode, p)
			c.exCover[p] = n.vc.Clone()
			cost += n.C.IntervalOp
			n.bus.Emit(event.ModeSwitch(n.ID, int64(p), false))
			// Whole-page prefetch snapshots predate the switch; the home
			// keeps its applied vector to serve flush-era base requests.
			c.hpf.drop(p)
		default:
			n.invariantf("adp got a home move for page %d (homes are static)", p)
		}
	}
	if cost > 0 {
		n.CPU.Service(cost, sim.CatDSM)
	}
}

// filterNotice suppresses the invalidation for a notice whose flush the home
// has already applied: the data is in this frame. Only home-mode pages homed
// here qualify, and never while a fill is collecting (the frame is not yet
// the authoritative copy).
func (c *adpCoherence) filterNotice(p pagemem.PageID, id lrc.IntervalID) bool {
	if !c.homeMode(p) || c.hl.home(p) != c.n.ID || c.hl.xin[p] != nil {
		return false
	}
	return c.hl.covered(p, id)
}

// adpPrefetcher dispatches prefetches to the engine matching the page's
// mode: whole-page prefetches from the home in home mode, diff prefetches
// from the writers in diff mode.
type adpPrefetcher struct {
	c   *adpCoherence
	hpf *hlrcPrefetcher
	lpf *lrcPrefetcher
}

func (pf *adpPrefetcher) Prefetch(p pagemem.PageID) int {
	c := pf.c
	if c.homeMode(p) {
		sent := pf.hpf.Prefetch(p)
		if sent > 0 {
			cl := c.acc.cell(p)
			cl.faults++
			cl.msgs += int32(sent)
		}
		return sent
	}
	if len(c.preSwitch(p)) > 0 {
		// Flush-era pendings have no writer-held diffs; a diff prefetch
		// would ask the writers for diffs they dropped at flush time. The
		// demand fault resolves these through the hybrid path instead.
		n := c.n
		n.bus.Emit(event.PfCall(n.ID, int64(p)))
		n.bus.Emit(event.PfUnnecessary(n.ID, int64(p)))
		n.CPU.Service(n.C.PfCheck, sim.CatPrefetchOv)
		return 0
	}
	// An issued prefetch is a remote gather like a fault: count it, so the
	// diff->home rule sees multi-writer collection even when prefetching
	// hides the faults themselves.
	sent := pf.lpf.Prefetch(p)
	if sent > 0 {
		cl := c.acc.cell(p)
		cl.faults++
		cl.msgs += int32(sent)
	}
	return sent
}
