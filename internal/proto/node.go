// Package proto implements a TreadMarks-style software DSM protocol engine:
// lazy release consistency maintained with vector timestamps, intervals and
// write notices; a multiple-writer twin/diff scheme; distributed queue-based
// locks with ownership caching; a centralized barrier manager; non-binding
// prefetching with a separate prefetch diff cache; and diff garbage
// collection.
//
// Each simulated processor owns one Node. Nodes communicate only through
// the simulated network and execute protocol work on their simulated CPU,
// so all protocol costs land in the right processor-time categories.
package proto

import (
	"sort"

	"godsm/internal/event"
	"godsm/internal/lrc"
	"godsm/internal/netsim"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// Node is one processor's protocol engine.
type Node struct {
	ID int
	N  int // number of processors

	K   *sim.Kernel
	CPU *sim.CPU
	C   *Costs
	bus *event.Bus // the kernel's event bus; counters and traces derive from it

	// Send transmits a message on the simulated network; injected by the
	// cluster wiring. Returns the delivery time or -1 if dropped.
	Send func(*netsim.Message) sim.Time

	Store *pagemem.Store

	mt bool // multithreading active: arrivals pay the async-signal surcharge

	// Lazy release consistency state.
	vc  lrc.VC
	ivs [][]*lrc.Interval // ivs[node][seq-1]: all known interval records

	// Diff store: diffs[creator interval][page]. Holds both locally created
	// diffs and diffs fetched from other nodes; nil entries mark intervals
	// that produced no changes for the page.
	diffs map[lrc.IntervalID]map[pagemem.PageID]*pagemem.Diff

	// Per-page protocol state (created lazily; absence means valid+clean).
	pages map[pagemem.PageID]*pageState

	// Pages twinned during the current (open) interval; becomes the next
	// interval's write notices.
	pendingNotices []pagemem.PageID

	// Own intervals not yet shipped to the barrier manager.
	ownSinceBarrier []*lrc.Interval

	// In-flight demand fetches, by page (request combining).
	fetches map[pagemem.PageID]*fetch

	// Prefetch state, by page.
	pf        map[pagemem.PageID]*pfState
	pfHeap    int64 // bytes in the prefetch diff cache (the "separate heap")
	diffBytes int64 // bytes of ordinary stored diffs (GC accounting)

	locks    map[int]*lockState
	barrier  *barrierState // non-nil only on the barrier manager (node 0)
	barWait  func()        // continuation for an in-progress barrier wait
	barStart sim.Time      // when this node arrived at the barrier

	// Deferred invalidations (barrier-manager server role; see
	// recordDeferred).
	deferredInval []*lrc.Interval
	deferredSet   map[lrc.IntervalID]bool

	// Garbage collection state (gc.go).
	gcBase   lrc.VC   // records below this vector time have been collected
	gcResume func()   // stashed barrier release during a collection
	gcStart  sim.Time // when the current collection began

	// ThrottlePf > 0 drops every ThrottlePf-th prefetch at issue time
	// (Section 5.1's RADIX optimization).
	ThrottlePf int
	pfCounter  int

	// GCThreshold triggers diff garbage collection at barriers once
	// diffBytes exceeds it. Zero disables GC.
	GCThreshold int64

	// Ablation switches (see the harness's ablation experiment).

	// NoTokenCache returns the lock token to its manager at every release
	// (centralized locks): no last-holder re-acquire, and every acquire
	// pays the manager round trip.
	NoTokenCache bool
	// PfReliable makes prefetch messages reliable (never dropped), so
	// congested prefetches queue instead of falling back to demand fetches.
	PfReliable bool
	// PfHeapSharedGC counts the prefetch diff cache toward the GC trigger,
	// removing the paper's separate-heap relief (footnote 6).
	PfHeapSharedGC bool

	// EagerRC broadcasts write notices to every node at each release —
	// eager release consistency (Munin-style), the protocol TreadMarks's
	// laziness is measured against (Keleher et al.). Invalidations arrive
	// ahead of synchronization; the consistency metadata still flows
	// through the synchronization messages.
	EagerRC bool

	// Reliable transport state, one peer per remote node; nil until
	// EnableTransport (transport.go). Nil means fiat delivery.
	xp []*xpPeer
}

// pageState tracks one page's coherence state at this node.
type pageState struct {
	// pending are write-notice intervals (by other nodes) whose diffs have
	// not yet been applied to the local frame. Non-empty means invalid.
	pending []lrc.IntervalID

	// twinned: the page has a twin and is collecting local modifications.
	twinned bool

	// undiffed: the (single) own write notice whose diff has not yet been
	// created; zero Node+Seq when none. See DESIGN.md §4.
	undiffed    lrc.IntervalID
	hasUndiffed bool
}

type fetch struct {
	page    pagemem.PageID
	needed  map[lrc.IntervalID]bool
	waiters []func()
	start   sim.Time
}

type pfState struct {
	requested map[lrc.IntervalID]bool // diffs the prefetch asked for
	inflight  int                     // outstanding request messages
}

// NewNode constructs a protocol node. Wire Send before use. Protocol
// occurrences are emitted on k's event bus; subscribe a stats.Collector to
// derive per-node counters.
func NewNode(id, n int, k *sim.Kernel, cpu *sim.CPU, c *Costs) *Node {
	nd := &Node{
		ID:      id,
		N:       n,
		K:       k,
		CPU:     cpu,
		C:       c,
		bus:     k.Bus(),
		Store:   pagemem.NewStore(),
		vc:      lrc.NewVC(n),
		ivs:     make([][]*lrc.Interval, n),
		diffs:   make(map[lrc.IntervalID]map[pagemem.PageID]*pagemem.Diff),
		pages:   make(map[pagemem.PageID]*pageState),
		fetches: make(map[pagemem.PageID]*fetch),
		pf:      make(map[pagemem.PageID]*pfState),
		locks:   make(map[int]*lockState),
		gcBase:  lrc.NewVC(n),
	}
	if id == 0 {
		nd.barrier = &barrierState{}
	}
	return nd
}

// SetMT enables or disables the multithreading arrival surcharge.
func (n *Node) SetMT(on bool) { n.mt = on }

// VC returns the node's current vector time (read-only; do not mutate).
func (n *Node) VC() lrc.VC { return n.vc }

func (n *Node) page(p pagemem.PageID) *pageState {
	ps, ok := n.pages[p]
	if !ok {
		ps = &pageState{}
		n.pages[p] = ps
	}
	return ps
}

// PageValid reports whether page p may be read locally without a fault.
func (n *Node) PageValid(p pagemem.PageID) bool {
	ps, ok := n.pages[p]
	return !ok || len(ps.pending) == 0
}

// PageWritable reports whether p is valid and already twinned, i.e. a write
// needs no protocol action.
func (n *Node) PageWritable(p pagemem.PageID) bool {
	ps, ok := n.pages[p]
	return ok && len(ps.pending) == 0 && ps.twinned
}

// Frame exposes the local frame for direct data access by the env layer.
func (n *Node) Frame(p pagemem.PageID) []byte { return n.Store.Frame(p) }

// EnsureWritable prepares a valid page for local modification: on the first
// write since the page was last clean it creates the twin and records the
// pending write notice for the current open interval. The page must be
// valid. Returns the CPU cost charged (already applied as DSM overhead).
func (n *Node) EnsureWritable(p pagemem.PageID) {
	ps := n.page(p)
	if len(ps.pending) != 0 {
		n.pageInvariantf(p, "EnsureWritable on invalid page %d (node %d)", p, n.ID)
	}
	if ps.twinned {
		return
	}
	n.Store.MakeTwin(p)
	n.bus.Emit(event.Twin(n.ID, int64(p)))
	ps.twinned = true
	n.pendingNotices = append(n.pendingNotices, p)
	n.CPU.Service(n.C.TwinMake, sim.CatDSM)
}

// closeInterval ends the current open interval, publishing write notices
// for every page twinned during it. Returns the new interval record, or nil
// if the interval was empty (no pages twinned).
func (n *Node) closeInterval() *lrc.Interval {
	if len(n.pendingNotices) == 0 {
		return nil
	}
	pages := append([]pagemem.PageID(nil), n.pendingNotices...)
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	n.pendingNotices = n.pendingNotices[:0]

	n.vc[n.ID]++
	iv := &lrc.Interval{
		ID:    lrc.IntervalID{Node: n.ID, Seq: n.vc[n.ID]},
		VC:    n.vc.Clone(),
		Pages: pages,
	}
	n.bus.Emit(event.IntervalClose(n.ID, iv.ID.Seq, len(iv.Pages)))
	n.ivs[n.ID] = append(n.ivs[n.ID], iv)
	n.ownSinceBarrier = append(n.ownSinceBarrier, iv)
	for _, p := range pages {
		ps := n.page(p)
		if ps.hasUndiffed {
			n.pageInvariantf(p, "page %d already has an undiffed notice", p)
		}
		ps.undiffed = iv.ID
		ps.hasUndiffed = true
	}
	n.CPU.Service(n.C.IntervalOp, sim.CatDSM)
	if n.EagerRC {
		n.broadcastNotice(iv)
	}
	return iv
}

// broadcastNotice pushes a just-closed interval's write notices to every
// other node (eager release consistency).
func (n *Node) broadcastNotice(iv *lrc.Interval) {
	size := n.C.HeaderBytes + 8 + 4*n.N + n.C.PerNoticeByt*len(iv.Pages)
	var cost sim.Time
	for q := 0; q < n.N; q++ {
		if q == n.ID {
			continue
		}
		cost += n.C.MsgSend
		done := n.CPU.Service(cost, sim.CatDSM)
		cost = 0
		n.sendAfter(done, &netsim.Message{
			Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(q),
			Size: size, Reliable: true, Kind: KindEagerNotice,
			Payload: &msgEagerNotice{Iv: iv},
		})
	}
}

// handleEagerNotice records and applies an eagerly-pushed write notice.
// Only the creator's own vector entry is advanced: per-pair FIFO delivery
// guarantees the creator's records arrive contiguously, and advancing it
// keeps this node's subsequent intervals causally after the data they may
// come to depend on. Third-party entries of the interval's VC are NOT
// merged (their records may not have arrived yet).
func (n *Node) handleEagerNotice(m *msgEagerNotice) {
	iv := m.Iv
	cost := n.recordInterval(iv)
	if n.vc[iv.ID.Node] < iv.ID.Seq {
		n.vc[iv.ID.Node] = iv.ID.Seq
	}
	n.CPU.Service(cost, sim.CatDSM)
}

// recordInterval adds a received interval record and invalidates the pages
// it names. Duplicate records are ignored, except that a record previously
// taken in deferred (server role — see recordDeferred) is invalidated now.
// Returns the CPU cost to charge.
func (n *Node) recordInterval(iv *lrc.Interval) sim.Time {
	q := iv.ID.Node
	if q == n.ID {
		return 0 // our own intervals are always already recorded
	}
	idx := int(iv.ID.Seq) - 1
	for len(n.ivs[q]) <= idx {
		n.ivs[q] = append(n.ivs[q], nil)
	}
	if n.ivs[q][idx] != nil {
		if n.deferredSet[iv.ID] {
			delete(n.deferredSet, iv.ID)
			n.invalidate(iv)
			return n.C.NoticeProc * sim.Time(1+len(iv.Pages))
		}
		return 0
	}
	n.ivs[q][idx] = iv
	n.bus.Emit(event.NoticeIn(n.ID, iv.ID.Node, iv.ID.Seq, len(iv.Pages)))
	n.invalidate(iv)
	return n.C.NoticeProc * sim.Time(1+len(iv.Pages))
}

// invalidate marks iv's pages pending at this node.
func (n *Node) invalidate(iv *lrc.Interval) {
	for _, p := range iv.Pages {
		ps := n.page(p)
		ps.pending = append(ps.pending, iv.ID)
	}
}

// recordDeferred stores an interval record WITHOUT invalidating local pages.
// The barrier manager uses it for arrival intervals: acting as a server, it
// must be able to forward the records at release, but its own memory view
// must not change until it passes the barrier itself — otherwise diffs
// applied mid-critical-section would not be covered by its next interval's
// vector time, and third-party readers would order dependent writes
// backwards. flushDeferred performs the postponed invalidations.
func (n *Node) recordDeferred(iv *lrc.Interval) sim.Time {
	q := iv.ID.Node
	if q == n.ID {
		return 0
	}
	idx := int(iv.ID.Seq) - 1
	for len(n.ivs[q]) <= idx {
		n.ivs[q] = append(n.ivs[q], nil)
	}
	if n.ivs[q][idx] != nil {
		return 0 // already recorded (and invalidated) through a sync path
	}
	n.ivs[q][idx] = iv
	n.bus.Emit(event.NoticeIn(n.ID, iv.ID.Node, iv.ID.Seq, len(iv.Pages)))
	if n.deferredSet == nil {
		n.deferredSet = make(map[lrc.IntervalID]bool)
	}
	n.deferredSet[iv.ID] = true
	n.deferredInval = append(n.deferredInval, iv)
	return n.C.NoticeProc * sim.Time(1+len(iv.Pages))
}

// flushDeferred invalidates every deferred record that has not been
// invalidated through another path meanwhile.
func (n *Node) flushDeferred() {
	for _, iv := range n.deferredInval {
		if n.deferredSet[iv.ID] {
			delete(n.deferredSet, iv.ID)
			n.invalidate(iv)
		}
	}
	n.deferredInval = n.deferredInval[:0]
}

// intake processes a batch of interval records plus the sender's vector
// time, as delivered by a lock grant or barrier release. It returns the
// CPU cost to charge.
func (n *Node) intake(ivs []*lrc.Interval, v lrc.VC) sim.Time {
	var cost sim.Time
	for _, iv := range ivs {
		cost += n.recordInterval(iv)
	}
	n.vc.Merge(v)
	n.checkContiguity()
	return cost
}

// checkContiguity asserts the protocol invariant that the node holds a
// record for every interval its vector time covers.
func (n *Node) checkContiguity() {
	for q := 0; q < n.N; q++ {
		if q == n.ID {
			continue
		}
		if int32(len(n.ivs[q])) < n.vc[q] {
			n.invariantf("node %d VC[%d]=%d but only %d records",
				n.ID, q, n.vc[q], len(n.ivs[q]))
		}
		for s := n.gcBase[q]; s < n.vc[q]; s++ {
			if n.ivs[q][s] == nil {
				n.invariantf("node %d missing record (%d,%d) under VC %v",
					n.ID, q, s+1, n.vc)
			}
		}
	}
}

// missingIvs returns the interval records this node knows about that are
// not covered by v, excluding intervals created by `exclude` (pass -1 to
// exclude none). Used to build lock grants and barrier releases.
func (n *Node) missingIvs(v lrc.VC, exclude int) []*lrc.Interval {
	var out []*lrc.Interval
	for q := 0; q < n.N; q++ {
		if q == exclude {
			continue
		}
		for s := v[q]; s < n.vc[q]; s++ {
			iv := n.ivs[q][s]
			if iv == nil {
				n.invariantf("missingIvs hit a gap at (%d,%d)", q, s+1)
			}
			out = append(out, iv)
		}
	}
	return out
}

// storedDiff fetches a stored diff; ok distinguishes "stored as empty".
func (n *Node) storedDiff(id lrc.IntervalID, p pagemem.PageID) (*pagemem.Diff, bool) {
	m, ok := n.diffs[id]
	if !ok {
		return nil, false
	}
	d, ok := m[p]
	return d, ok
}

func (n *Node) putDiff(id lrc.IntervalID, p pagemem.PageID, d *pagemem.Diff, prefetched bool) {
	m, ok := n.diffs[id]
	if !ok {
		m = make(map[pagemem.PageID]*pagemem.Diff)
		n.diffs[id] = m
	}
	if _, dup := m[p]; dup {
		return
	}
	m[p] = d
	if prefetched {
		n.pfHeap += int64(d.WireSize())
	} else {
		n.diffBytes += int64(d.WireSize())
	}
}

// makeOwnDiff lazily creates the diff for this node's undiffed write notice
// on page p (if any), clearing the twin. Returns the CPU cost incurred.
func (n *Node) makeOwnDiff(p pagemem.PageID) sim.Time {
	ps := n.page(p)
	if !ps.twinned {
		return 0
	}
	twin := n.Store.Twin(p)
	frame := n.Store.Frame(p)
	d := pagemem.MakeDiff(p, twin, frame)
	db := 0
	if d != nil {
		db = d.DataBytes()
	}
	n.bus.Emit(event.DiffMake(n.ID, int64(p), db))
	cost := n.C.DiffMake + sim.Time(n.C.DiffScanNs*float64(pagemem.PageSize))
	n.Store.DropTwin(p)
	ps.twinned = false

	// Attribute the diff to the undiffed notice. If the page was twinned
	// during the still-open interval (no closed notice yet), close the
	// interval now — the paper's "interval split" on prefetch of a dirty
	// page; demand requests can only name closed notices, so for them the
	// undiffed notice always exists.
	if !ps.hasUndiffed {
		if iv := n.closeInterval(); iv == nil || !ps.hasUndiffed {
			n.pageInvariantf(p, "dirty page %d without a notice after interval close", p)
		}
	}
	id := ps.undiffed
	ps.hasUndiffed = false
	if d == nil {
		d = &pagemem.Diff{Page: p} // store an explicit empty diff
	}
	n.putDiff(id, p, d, false)
	return cost
}

// applyPending applies every pending diff for p, in causal order, to the
// local frame. All pending diffs must be present locally. Returns the CPU
// cost.
//
// If the page is locally dirty, the node's own modifications are committed
// as a diff FIRST (TreadMarks's rule). Otherwise later local writes —
// which may causally depend on the remote data being applied now — would
// ride in the old (concurrent) interval's lazily-created diff, and a third
// node applying diffs in causal order would order the dependency backwards.
func (n *Node) applyPending(p pagemem.PageID) sim.Time {
	ps := n.page(p)
	if len(ps.pending) == 0 {
		return 0
	}
	var cost sim.Time
	if ps.twinned {
		cost += n.makeOwnDiff(p)
	}

	ivs := make([]*lrc.Interval, 0, len(ps.pending))
	for _, id := range ps.pending {
		iv := n.ivs[id.Node][id.Seq-1]
		if iv == nil {
			n.pageInvariantf(p, "pending interval %v on page %d without record", id, p)
		}
		ivs = append(ivs, iv)
	}
	lrc.SortCausally(ivs)

	frame := n.Store.Frame(p)
	for _, iv := range ivs {
		d, ok := n.storedDiff(iv.ID, p)
		if !ok {
			n.pageInvariantf(p, "node %d applying page %d without diff for %v",
				n.ID, p, iv.ID)
		}
		if d != nil && len(d.Runs) > 0 {
			n.bus.Emit(event.DiffApply(n.ID, int64(p), d.DataBytes()))
			d.Apply(frame)
			cost += n.C.DiffApply + sim.Time(n.C.ApplyNs*float64(d.DataBytes()))
		} else {
			cost += n.C.DiffApply / 2
		}
	}
	ps.pending = ps.pending[:0]
	return cost
}

// missingDiffs lists the pending intervals for p whose diffs are not yet
// held locally.
func (n *Node) missingDiffs(p pagemem.PageID) []lrc.IntervalID {
	ps := n.page(p)
	var out []lrc.IntervalID
	for _, id := range ps.pending {
		if _, ok := n.storedDiff(id, p); !ok {
			out = append(out, id)
		}
	}
	return out
}

// Deliver receives an arriving network message. It charges receive-side
// CPU costs (plus the async-signal surcharge under multithreading), filters
// the message through the reliable transport when one is enabled (ack
// processing, duplicate suppression, reordering repair), and dispatches
// whatever becomes deliverable.
func (n *Node) Deliver(m *netsim.Message) {
	recv := n.C.MsgRecv
	if n.mt {
		recv += n.C.MTSig
	}
	n.CPU.Service(recv, sim.CatDSM)
	if n.xp != nil {
		n.xpReceive(m)
		return
	}
	n.dispatch(m)
}

// dispatch runs the protocol handler for one in-order message.
func (n *Node) dispatch(m *netsim.Message) {
	switch pl := m.Payload.(type) {
	case *msgDiffReq:
		n.handleDiffReq(pl)
	case *msgDiffReply:
		n.handleDiffReply(pl)
	case *msgLockAcq:
		switch m.Kind {
		case KindLockAcq:
			n.handleLockAcqAtManager(pl)
		case KindLockRetry:
			n.handleLockRetry(pl)
		default:
			n.handleLockForward(pl)
		}
	case *msgLockGrant:
		if m.Kind == KindLockReturn {
			n.handleLockReturn(pl)
		} else {
			n.handleLockGrant(pl)
		}
	case *msgBarArrive:
		n.handleBarArrive(pl)
	case *msgBarRelease:
		n.handleBarRelease(pl)
	case *msgEagerNotice:
		n.handleEagerNotice(pl)
	case *msgGCDone:
		n.gcDoneAtManager(pl.From)
	case *msgGCFlush:
		n.handleGCFlush()
	default:
		n.invariantf("node %d: unknown message payload %T (kind %s)", n.ID, m.Payload, KindName(m.Kind))
	}
}
