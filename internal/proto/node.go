// Package proto implements the software DSM protocol engine as a chassis
// plus pluggable policy subsystems. The chassis (Node) owns the state every
// backend shares — vector time, interval records, page table, diff store,
// in-flight fetch table, reliable transport — and delegates policy to the
// Coherence, SyncManager, Prefetcher and DiffGC implementations selected by
// a declarative Config through the protocol registry.
//
// Registered backends: "lrc" (TreadMarks-style lazy release consistency,
// the default), "erc" (eager release consistency: notices broadcast at
// every release), "hlrc" (home-based LRC: diffs flushed to per-page homes at
// release, whole-page fetches at fault time, no diff GC), and "adp"
// (adaptive: per-page switching between the diff-based and home-based
// regimes, driven by access counters at barrier episodes).
//
// File ownership:
//
//	protocol.go   Config and the subsystem interfaces
//	registry.go   backend registry (Register/Lookup/Names) and builders
//	node.go       the Node chassis: construction, page table, dispatch
//	intervals.go  interval records, write notices, vector-time intake
//	diffstore.go  diff storage, lazy own-diff creation, causal apply
//	lrc.go        lrcCoherence: demand diff fetch, eager-RC broadcast
//	prefetch.go   lrcPrefetcher: non-binding prefetch issue policy
//	locks.go      syncManager: distributed queue locks with token caching
//	barrier.go    syncManager: centralized barrier manager
//	barriertree.go deterministic combining-tree barrier (Barrier: "tree")
//	gossip.go     seeded deterministic gossip write-notice dissemination
//	gc.go         lrcGC (diff garbage collection) and noGC
//	hlrc.go       hlrcCoherence: protocol overview, types, release flush
//	hlrchome.go   hlrc home side: flush apply, parked requests, page serve
//	hlrcfault.go  hlrc requester side: whole-page fetch, home-local faults
//	hlrcpf.go     hlrcPrefetcher: whole-page prefetch cache
//	homepolicy.go pluggable page→home policies, episode access counters
//	homemigrate.go home-base transfers and late-flush forwarding (dynamic)
//	adp.go        adpCoherence: per-page diff/home mode switching
//	messages.go   wire message kinds and payload types
//	costs.go      CPU cost model and the sanctioned send choke points
//	transport.go  reliable ack/retransmit transport (fault injection)
//	errors.go     InvariantError and deterministic failure dumps
//
// Each simulated processor owns one Node. Nodes communicate only through
// the simulated network and execute protocol work on their simulated CPU,
// so all protocol costs land in the right processor-time categories.
package proto

import (
	"godsm/internal/event"
	"godsm/internal/lrc"
	"godsm/internal/netsim"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// Node is one processor's protocol engine chassis.
type Node struct {
	ID int
	N  int // number of processors

	K   *sim.Kernel
	CPU *sim.CPU
	C   *Costs
	bus *event.Bus // the kernel's event bus; counters and traces derive from it

	// Send transmits a message on the simulated network; injected by the
	// cluster wiring. Returns the delivery time or -1 if dropped.
	Send func(*netsim.Message) sim.Time

	Store *pagemem.Store

	mt bool // multithreading active: arrivals pay the async-signal surcharge

	// Policy subsystems, built by the configured backend (registry.go).
	coh  Coherence
	pfr  Prefetcher
	sync SyncManager
	gc   DiffGC

	// nf is coh's write-notice filter, cached to keep the intake path's
	// type assertion out of the per-notice loop; nil when coh has none.
	nf noticeFilter

	// Lazy release consistency state.
	vc  lrc.VC
	ivs [][]*lrc.Interval // ivs[node][seq-1]: all known interval records

	// Diff store: diffs[creator interval][page]. Holds both locally created
	// diffs and diffs fetched from other nodes; nil entries mark intervals
	// that produced no changes for the page.
	diffs map[lrc.IntervalID]map[pagemem.PageID]*pagemem.Diff

	// Per-page protocol state (created lazily; absence means valid+clean).
	pages map[pagemem.PageID]*pageState

	// Pages twinned during the current (open) interval; becomes the next
	// interval's write notices.
	pendingNotices []pagemem.PageID

	// Own intervals not yet shipped to the barrier manager.
	ownSinceBarrier []*lrc.Interval

	// In-flight demand fetches, by page (request combining).
	fetches map[pagemem.PageID]*fetch

	// Prefetch state, by page.
	pf        map[pagemem.PageID]*pfState
	pfHeap    int64 // bytes in the prefetch cache (the "separate heap")
	diffBytes int64 // bytes of ordinary stored diffs (GC accounting)

	// Deferred invalidations (barrier-manager server role; see
	// recordDeferred in intervals.go).
	deferredInval []*lrc.Interval
	deferredSet   map[lrc.IntervalID]bool

	// gcBase: records below this vector time have been collected (gc.go).
	gcBase lrc.VC

	// gossip disseminates write notices in deterministic rounds when the
	// Gossip knob is set (gossip.go); nil otherwise.
	gossip *gossiper

	// Reliable transport state, one peer per remote node; nil until
	// EnableTransport (transport.go). Nil means fiat delivery.
	xp []*xpPeer
}

// pageState tracks one page's coherence state at this node.
type pageState struct {
	// pending are write-notice intervals (by other nodes) whose diffs have
	// not yet been applied to the local frame. Non-empty means invalid.
	pending []lrc.IntervalID

	// twinned: the page has a twin and is collecting local modifications.
	twinned bool

	// undiffed: the (single) own write notice whose diff has not yet been
	// created; zero Node+Seq when none. See DESIGN.md §4.
	undiffed    lrc.IntervalID
	hasUndiffed bool
}

type fetch struct {
	page    pagemem.PageID
	needed  map[lrc.IntervalID]bool
	waiters []func()
	start   sim.Time

	// Adaptive-backend state (zero elsewhere): the whole-page snapshot a
	// hybrid fetch installs before its diffs, whether this fetch combines a
	// home copy with diff requests, and whether it is a home-elect's local
	// diff fill (adp.go). A fill carries the switch-time VC its frame must
	// cover, plus the previous home->diff switch VC that separates flush-era
	// pendings (resolved by flushes) from diff-era ones (fetched as diffs).
	pageData []byte
	hybrid   bool
	fill     bool
	fillVC   lrc.VC
	fillEx   lrc.VC
}

type pfState struct {
	requested map[lrc.IntervalID]bool // intervals the prefetch asked for
	inflight  int                     // outstanding request messages
}

// NewNode constructs a protocol node running the backend cfg selects. Wire
// Send before use. Protocol occurrences are emitted on k's event bus;
// subscribe a stats.Collector to derive per-node counters. NewNode panics
// on an invalid Config — callers validate user input with ValidateConfig
// first.
func NewNode(id, n int, k *sim.Kernel, cpu *sim.CPU, c *Costs, cfg Config) *Node {
	b, err := Lookup(cfg.Protocol)
	if err != nil {
		configInvariantf("proto: %v", err)
	}
	if err := validateCommon(cfg); err != nil {
		configInvariantf("proto: %v", err)
	}
	if b.Validate != nil {
		if err := b.Validate(cfg); err != nil {
			configInvariantf("proto: %v", err)
		}
	}
	nd := &Node{
		ID:      id,
		N:       n,
		K:       k,
		CPU:     cpu,
		C:       c,
		bus:     k.Bus(),
		Store:   pagemem.NewStore(),
		vc:      lrc.NewVC(n),
		ivs:     make([][]*lrc.Interval, n),
		diffs:   make(map[lrc.IntervalID]map[pagemem.PageID]*pagemem.Diff),
		pages:   make(map[pagemem.PageID]*pageState),
		fetches: make(map[pagemem.PageID]*fetch),
		pf:      make(map[pagemem.PageID]*pfState),
		gcBase:  lrc.NewVC(n),
	}
	sub := b.Build(nd, cfg)
	nd.coh = sub.Coherence
	nd.pfr = sub.Prefetch
	nd.sync = sub.Sync
	nd.gc = sub.GC
	if f, ok := nd.coh.(noticeFilter); ok {
		nd.nf = f
	}
	return nd
}

// SetMT enables or disables the multithreading arrival surcharge.
func (n *Node) SetMT(on bool) { n.mt = on }

// VC returns the node's current vector time (read-only; do not mutate).
func (n *Node) VC() lrc.VC { return n.vc }

func (n *Node) page(p pagemem.PageID) *pageState {
	ps, ok := n.pages[p]
	if !ok {
		ps = &pageState{}
		n.pages[p] = ps
	}
	return ps
}

// PageValid reports whether page p may be read locally without a fault.
func (n *Node) PageValid(p pagemem.PageID) bool {
	ps, ok := n.pages[p]
	return !ok || len(ps.pending) == 0
}

// PageWritable reports whether p is valid and already twinned, i.e. a write
// needs no protocol action.
func (n *Node) PageWritable(p pagemem.PageID) bool {
	ps, ok := n.pages[p]
	return ok && len(ps.pending) == 0 && ps.twinned
}

// Frame exposes the local frame for direct data access by the env layer.
func (n *Node) Frame(p pagemem.PageID) []byte { return n.Store.Frame(p) }

// EnsureWritable prepares a valid page for local modification: on the first
// write since the page was last clean it creates the twin and records the
// pending write notice for the current open interval. The page must be
// valid.
func (n *Node) EnsureWritable(p pagemem.PageID) {
	ps := n.page(p)
	if len(ps.pending) != 0 {
		n.pageInvariantf(p, "EnsureWritable on invalid page %d (node %d)", p, n.ID)
	}
	if ps.twinned {
		return
	}
	n.Store.MakeTwin(p)
	n.bus.Emit(event.Twin(n.ID, int64(p)))
	ps.twinned = true
	n.pendingNotices = append(n.pendingNotices, p)
	n.CPU.Service(n.C.TwinMake, sim.CatDSM)
}

// Fault resolves an access to an invalid page through the backend's
// coherence policy. See Coherence.Fault.
func (n *Node) Fault(p pagemem.PageID, onValid func()) { n.coh.Fault(p, onValid) }

// Prefetch issues a non-binding prefetch through the backend's policy,
// returning the number of request messages sent.
func (n *Node) Prefetch(p pagemem.PageID) int { return n.pfr.Prefetch(p) }

// AcquireLock acquires lock id (see SyncManager.AcquireLock).
func (n *Node) AcquireLock(id int, onGranted func()) bool { return n.sync.AcquireLock(id, onGranted) }

// ReleaseLock releases lock id (see SyncManager.ReleaseLock).
func (n *Node) ReleaseLock(id int) { n.sync.ReleaseLock(id) }

// Barrier arrives at barrier id (see SyncManager.Barrier).
func (n *Node) Barrier(id int, onRelease func()) { n.sync.Barrier(id, onRelease) }

// PfHeapBytes returns the current size of the prefetch cache (the
// "separate heap managed by the garbage collector" in the paper).
func (n *Node) PfHeapBytes() int64 { return n.pfHeap }

// DiffHeapBytes returns the bytes of ordinary stored diffs.
func (n *Node) DiffHeapBytes() int64 { return n.diffBytes }

// Deliver receives an arriving network message. It charges receive-side
// CPU costs (plus the async-signal surcharge under multithreading), filters
// the message through the reliable transport when one is enabled (ack
// processing, duplicate suppression, reordering repair), and dispatches
// whatever becomes deliverable.
func (n *Node) Deliver(m *netsim.Message) {
	recv := n.C.MsgRecv
	if n.mt {
		recv += n.C.MTSig
	}
	n.CPU.Service(recv, sim.CatDSM)
	if n.xp != nil {
		n.xpReceive(m)
		return
	}
	n.dispatch(m)
}

// dispatch routes one in-order message through the subsystem handlers; a
// message no subsystem owns is a protocol invariant violation.
func (n *Node) dispatch(m *netsim.Message) {
	if n.sync.Handle(m) {
		return
	}
	if n.coh.Handle(m) {
		return
	}
	if n.gc.Handle(m) {
		return
	}
	if pl, ok := m.Payload.(*msgGossip); ok && n.gossip != nil {
		n.gossip.handle(pl)
		return
	}
	n.invariantf("node %d: unknown message payload %T (kind %s)", n.ID, m.Payload, KindName(m.Kind))
}
