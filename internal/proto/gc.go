package proto

import (
	"sort"

	"godsm/internal/event"
	"godsm/internal/lrc"
	"godsm/internal/netsim"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// Diff garbage collection. TreadMarks's consistency records (intervals,
// write notices, diffs, twins) grow without bound between synchronization
// points; when storage exceeds a threshold the system performs a global
// collection at the next barrier: every processor validates all of its
// invalid pages (forcing every outstanding diff to be created and applied
// everywhere), after which all records can be discarded. The paper notes
// GC costs in two places: prefetching shortens GC by validating pages
// sooner, and the separate prefetch diff heap relieves storage pressure —
// both effects hold here because the prefetch cache is accounted
// separately and prefetched pages validate without network traffic.
//
// Protocol: barrier arrivals report each node's diff-storage size. If any
// exceeds the threshold, the release message carries a GC flag. Each node
// then fetches and applies every pending diff (normal fault machinery) and
// sends GC-DONE to the manager; when all N are done the manager broadcasts
// GC-FLUSH, nodes discard diffs/records below the current vector time, and
// only then do the barrier's waiters resume.

// msgGCDone tells the manager this node has validated all its pages.
type msgGCDone struct{ From int }

// msgGCFlush tells every node to discard collected state and release the
// barrier waiters.
type msgGCFlush struct{}

// lrcGC is the diff garbage collector used by the diff-based backends.
type lrcGC struct {
	n            *Node
	threshold    int64    // trigger a collection above this many bytes (0 = off)
	sharedPfHeap bool     // count the prefetch cache toward the trigger
	resume       func()   // stashed barrier release during a collection
	start        sim.Time // when the current collection began
	doneCount    int      // manager-side: nodes that completed validation
}

// ReportBytes returns the storage figure the barrier manager reports for
// itself. Remote arrivals ship raw diff bytes; only the manager's local
// report folds in the prefetch heap when the separate-heap relief is
// disabled (footnote 6's ablation measures the manager-triggered effect).
func (g *lrcGC) ReportBytes() int64 {
	report := g.n.diffBytes
	if g.sharedPfHeap {
		report += g.n.pfHeap
	}
	return report
}

// Exceeds reports whether a barrier arrival's storage figure should trigger
// a collection at the release.
func (g *lrcGC) Exceeds(reported int64) bool {
	return g.threshold > 0 && reported > g.threshold
}

// Handle dispatches the collection messages.
func (g *lrcGC) Handle(m *netsim.Message) bool {
	switch pl := m.Payload.(type) {
	case *msgGCDone:
		g.gcDoneAtManager(pl.From)
	case *msgGCFlush:
		g.handleGCFlush()
	default:
		return false
	}
	return true
}

// gcValidate fetches and applies every pending diff at this node, then
// reports completion. onDone runs (in kernel context) when local
// validation finishes.
func (g *lrcGC) gcValidate(onDone func()) {
	n := g.n
	// Waves: fetching can itself surface new pending notices (interval
	// splits while serving, eager-RC broadcasts), so re-scan until clean.
	var wave func()
	wave = func() {
		var pages []pagemem.PageID
		for p, ps := range n.pages {
			if len(ps.pending) > 0 {
				pages = append(pages, p)
			}
		}
		sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
		if len(pages) == 0 {
			onDone()
			return
		}
		remaining := len(pages)
		for _, p := range pages {
			n.Fault(p, func() {
				remaining--
				if remaining == 0 {
					wave()
				}
			})
		}
	}
	wave()
}

// gcFlush discards all diffs, the prefetch cache, and interval records
// covered by the current vector time. Records below gcBase are gone; the
// protocol invariant (contiguity above gcBase) is maintained because every
// node's VC covers gcBase after the collection.
func (g *lrcGC) gcFlush() {
	n := g.n
	n.diffs = make(map[lrc.IntervalID]map[pagemem.PageID]*pagemem.Diff)
	n.diffBytes = 0
	n.pfHeap = 0
	n.pf = make(map[pagemem.PageID]*pfState)
	for q := 0; q < n.N; q++ {
		for s := range n.ivs[q] {
			if int32(s) < n.vc[q] {
				n.ivs[q][s] = nil
			}
		}
		n.gcBase[q] = n.vc[q]
	}
	// Sanity: validation must have drained every pending list and created
	// every outstanding own diff (each notice was pending somewhere).
	// Sorted so a violation deterministically reports the lowest offending
	// page — the chaos soak's failure dumps must reproduce byte-identically.
	var check []pagemem.PageID
	for p := range n.pages {
		check = append(check, p)
	}
	sort.Slice(check, func(i, j int) bool { return check[i] < check[j] })
	for _, p := range check {
		ps := n.pages[p]
		if len(ps.pending) != 0 {
			n.pageInvariantf(p, "gcFlush with pending diffs on page %d", p)
		}
		if n.N > 1 && ps.hasUndiffed {
			n.pageInvariantf(p, "gcFlush with undiffed notice on page %d", p)
		}
	}
	n.bus.Emit(event.GCFlush(n.ID))
}

// gcSendDone reports local validation completion to the barrier manager.
func (g *lrcGC) gcSendDone() {
	n := g.n
	if n.ID == 0 {
		g.gcDoneAtManager(0)
		return
	}
	done := n.CPU.Service(n.C.MsgSend, sim.CatDSM)
	n.sendAfter(done, &netsim.Message{
		Src: netsim.NodeID(n.ID), Dst: 0,
		Size: n.C.HeaderBytes, Reliable: true, Kind: KindGCDone,
		Payload: &msgGCDone{From: n.ID},
	})
}

// gcDoneAtManager counts completions; the N-th broadcasts the flush.
func (g *lrcGC) gcDoneAtManager(from int) {
	n := g.n
	g.doneCount++
	if g.doneCount < n.N {
		return
	}
	g.doneCount = 0
	var cost sim.Time
	for q := 1; q < n.N; q++ {
		cost += n.C.MsgSend
		done := n.CPU.Service(cost, sim.CatDSM)
		cost = 0
		q := q
		n.sendAfter(done, &netsim.Message{
			Src: 0, Dst: netsim.NodeID(q),
			Size: n.C.HeaderBytes, Reliable: true, Kind: KindGCFlush,
			Payload: &msgGCFlush{},
		})
	}
	g.handleGCFlush()
}

// handleGCFlush finishes the collection locally and releases the barrier.
func (g *lrcGC) handleGCFlush() {
	n := g.n
	g.gcFlush()
	n.bus.Emit(event.GCDone(n.ID, n.K.Now()-g.start))
	cb := g.resume
	g.resume = nil
	if cb == nil {
		n.invariantf("GC flush without a pending barrier release")
	}
	done := n.CPU.Service(n.C.IntervalOp, sim.CatDSM)
	n.K.At(done, cb)
}

// Begin starts the validation phase after a GC-flagged barrier release;
// resume runs once the global collection completes.
func (g *lrcGC) Begin(resume func()) {
	n := g.n
	n.bus.Emit(event.GCBegin(n.ID))
	g.resume = resume
	g.start = n.K.Now()
	g.gcValidate(func() { g.gcSendDone() })
}

// noGC is the DiffGC of backends without consistency-record collection
// (HLRC: homes apply diffs eagerly, so storage never accumulates). Barrier
// arrivals still report raw diff bytes — always zero — and never trigger.
type noGC struct{ n *Node }

func (g noGC) ReportBytes() int64          { return g.n.diffBytes }
func (g noGC) Exceeds(int64) bool          { return false }
func (g noGC) Handle(*netsim.Message) bool { return false }
func (g noGC) Begin(func()) {
	g.n.invariantf("node %d: GC begin under a backend with no collector", g.n.ID)
}
