package proto

import (
	"testing"

	"godsm/internal/lrc"
	"godsm/internal/netsim"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
	"godsm/internal/stats"
)

// rig wires a small cluster of bare protocol nodes for white-box tests.
type rig struct {
	k     *sim.Kernel
	net   *netsim.Network
	nodes []*Node
	st    []stats.Node
	costs Costs
}

func newRig(n int) *rig { return newRigCfg(n, Config{}) }

// newRigCfg builds a rig whose nodes run under cfg (protocol selection and
// per-backend knobs).
func newRigCfg(n int, cfg Config) *rig {
	r := &rig{k: sim.NewKernel(), costs: DefaultCosts()}
	r.st = make([]stats.Node, n)
	r.k.Bus().Subscribe(stats.NewCollector(r.st))
	r.net = netsim.New(r.k, n, netsim.DefaultConfig(), func(m *netsim.Message) {
		r.nodes[m.Dst].Deliver(m)
	})
	for i := 0; i < n; i++ {
		nd := NewNode(i, n, r.k, sim.NewCPU(r.k), &r.costs, cfg)
		nd.Send = r.net.Send
		r.nodes = append(r.nodes, nd)
	}
	return r
}

// write modifies one float64 on a node's local frame through the protocol
// entry points (EnsureWritable + direct frame write).
func (r *rig) write(node int, a pagemem.Addr, v float64) {
	nd := r.nodes[node]
	p := pagemem.PageOf(a)
	if !nd.PageValid(p) {
		panic("rig.write on invalid page; fault first")
	}
	nd.EnsureWritable(p)
	pagemem.PutF64(nd.Frame(p), pagemem.OffsetOf(a), v)
}

func (r *rig) read(node int, a pagemem.Addr) float64 {
	nd := r.nodes[node]
	return pagemem.GetF64(nd.Frame(pagemem.PageOf(a)), pagemem.OffsetOf(a))
}

// barrierAll runs a full barrier across all nodes at the current time.
func (r *rig) barrierAll(id int) {
	for _, nd := range r.nodes {
		nd.Barrier(id, func() {})
	}
	r.k.Run()
}

const page0 = pagemem.Addr(pagemem.PageSize) // first heap page

func TestWriteNoticePropagationViaBarrier(t *testing.T) {
	r := newRig(2)
	r.k.At(0, func() { r.write(0, page0, 42) })
	r.k.Run()
	r.barrierAll(0)

	if r.nodes[1].PageValid(1) {
		t.Fatal("node 1 should have invalidated page 1 after the barrier")
	}
	// Fault brings the diff over.
	valid := false
	r.k.At(r.k.Now(), func() {
		r.nodes[1].Fault(1, func() { valid = true })
	})
	r.k.Run()
	if !valid {
		t.Fatal("fault never completed")
	}
	if got := r.read(1, page0); got != 42 {
		t.Fatalf("node 1 read %v, want 42", got)
	}
	if r.st[1].Misses != 1 {
		t.Fatalf("misses = %d, want 1", r.st[1].Misses)
	}
}

func TestLockTokenCaching(t *testing.T) {
	r := newRig(2)
	nd := r.nodes[0] // manager of lock 0 is node 0
	granted := 0
	r.k.At(0, func() {
		if !nd.AcquireLock(0, nil) {
			t.Error("manager's first acquire should be immediate")
		}
		granted++
		nd.ReleaseLock(0)
		if !nd.AcquireLock(0, nil) {
			t.Error("re-acquire of cached token should be immediate")
		}
		granted++
		nd.ReleaseLock(0)
	})
	r.k.Run()
	if granted != 2 {
		t.Fatalf("granted = %d", granted)
	}
	if msgs := r.net.TotalStats().MsgsSent; msgs != 0 {
		t.Fatalf("local lock acquires sent %d messages, want 0", msgs)
	}
	if r.st[0].LocalLockAcqs != 2 || r.st[0].RemoteLockAcqs != 0 {
		t.Fatalf("lock stats local=%d remote=%d", r.st[0].LocalLockAcqs, r.st[0].RemoteLockAcqs)
	}
}

func TestLockGrantCarriesNotices(t *testing.T) {
	r := newRig(2)
	// Node 0 (manager+owner) writes page under the lock, releases; node 1
	// acquires: the grant must invalidate the page at node 1.
	r.k.At(0, func() {
		if !r.nodes[0].AcquireLock(0, nil) {
			t.Error("expected immediate acquire")
		}
		r.write(0, page0, 7)
		r.nodes[0].ReleaseLock(0)
	})
	acquired := false
	r.k.At(1000, func() {
		r.nodes[1].AcquireLock(0, func() { acquired = true })
	})
	r.k.Run()
	if !acquired {
		t.Fatal("node 1 never acquired the lock")
	}
	if r.nodes[1].PageValid(1) {
		t.Fatal("grant should have invalidated page 1 at node 1")
	}
	if r.st[1].RemoteLockAcqs != 1 {
		t.Fatalf("remote lock acqs = %d", r.st[1].RemoteLockAcqs)
	}
	if r.st[1].LockStall <= 0 {
		t.Fatal("no lock stall recorded")
	}
}

func TestLockChainThroughManager(t *testing.T) {
	r := newRig(3)
	// Lock 1's manager is node 1. Node 0 acquires, holds; node 2 requests;
	// node 0's release must hand the token directly to node 2.
	got0, got2 := false, false
	r.k.At(0, func() {
		r.nodes[0].AcquireLock(1, func() {
			got0 = true
			r.write(0, page0, 3)
			// Hold for a while; node 2's forwarded request arrives in the
			// meantime and must queue at node 0.
			r.k.After(5*sim.Millisecond, func() { r.nodes[0].ReleaseLock(1) })
		})
	})
	r.k.At(1*sim.Millisecond, func() {
		r.nodes[2].AcquireLock(1, func() { got2 = true })
	})
	r.k.Run()
	if !got0 || !got2 {
		t.Fatalf("acquires: node0=%v node2=%v", got0, got2)
	}
	if r.nodes[2].PageValid(1) {
		t.Fatal("node 2 should see node 0's write notice via the chained grant")
	}
}

func TestPrefetchCacheServesFault(t *testing.T) {
	r := newRig(2)
	r.k.At(0, func() { r.write(0, page0, 5) })
	r.k.Run()
	r.barrierAll(0)

	r.k.At(r.k.Now(), func() {
		if n := r.nodes[1].Prefetch(1); n != 1 {
			t.Errorf("prefetch issued %d messages, want 1", n)
		}
	})
	r.k.Run() // reply arrives, lands in the cache

	if r.nodes[1].PageValid(1) {
		t.Fatal("non-binding prefetch must not validate the page")
	}
	valid := false
	r.k.At(r.k.Now(), func() { r.nodes[1].Fault(1, func() { valid = true }) })
	before := r.net.TotalStats().MsgsSent
	r.k.Run()
	after := r.net.TotalStats().MsgsSent
	if !valid {
		t.Fatal("fault never completed")
	}
	if after != before {
		t.Fatalf("pf-hit fault sent %d messages, want 0", after-before)
	}
	if r.st[1].FaultPfHit != 1 || r.st[1].CacheHits != 1 || r.st[1].Misses != 0 {
		t.Fatalf("stats: hit=%d cache=%d miss=%d", r.st[1].FaultPfHit, r.st[1].CacheHits, r.st[1].Misses)
	}
	if got := r.read(1, page0); got != 5 {
		t.Fatalf("read %v, want 5", got)
	}
}

func TestPrefetchUnnecessaryOnValidPage(t *testing.T) {
	r := newRig(2)
	r.k.At(0, func() {
		if n := r.nodes[1].Prefetch(1); n != 0 {
			t.Errorf("prefetch of valid page issued %d messages", n)
		}
	})
	r.k.Run()
	if r.st[1].PfUnnecessary != 1 || r.st[1].PfCalls != 1 {
		t.Fatalf("unnecessary=%d calls=%d", r.st[1].PfUnnecessary, r.st[1].PfCalls)
	}
}

func TestPrefetchLateClassification(t *testing.T) {
	r := newRig(2)
	r.k.At(0, func() { r.write(0, page0, 5) })
	r.k.Run()
	r.barrierAll(0)

	// Prefetch and fault immediately after: the reply cannot have arrived.
	done := false
	r.k.At(r.k.Now(), func() {
		r.nodes[1].Prefetch(1)
		r.k.After(sim.Microsecond, func() {
			r.nodes[1].Fault(1, func() { done = true })
		})
	})
	r.k.Run()
	if !done {
		t.Fatal("fault never completed")
	}
	if r.st[1].FaultPfLate != 1 {
		t.Fatalf("late=%d (hit=%d inval=%d nopf=%d)", r.st[1].FaultPfLate,
			r.st[1].FaultPfHit, r.st[1].FaultPfInvalided, r.st[1].FaultNoPf)
	}
	if r.st[1].Misses != 1 {
		t.Fatalf("misses = %d, want 1 (late prefetch retries normally)", r.st[1].Misses)
	}
}

func TestPrefetchInvalidatedClassification(t *testing.T) {
	r := newRig(2)
	r.k.At(0, func() { r.write(0, page0, 1) })
	r.k.Run()
	r.barrierAll(0)

	// Node 1 prefetches; the reply arrives. Then node 0 writes again and a
	// second barrier delivers a new write notice: the cached prefetch is
	// now insufficient — the fault must classify as invalidated.
	r.k.At(r.k.Now(), func() { r.nodes[1].Prefetch(1) })
	r.k.Run()
	r.k.At(r.k.Now(), func() { r.write(0, page0, 2) })
	r.k.Run()
	r.barrierAll(1)

	done := false
	r.k.At(r.k.Now(), func() { r.nodes[1].Fault(1, func() { done = true }) })
	r.k.Run()
	if !done {
		t.Fatal("fault never completed")
	}
	if r.st[1].FaultPfInvalided != 1 {
		t.Fatalf("invalidated=%d (hit=%d late=%d nopf=%d)", r.st[1].FaultPfInvalided,
			r.st[1].FaultPfHit, r.st[1].FaultPfLate, r.st[1].FaultNoPf)
	}
	if got := r.read(1, page0); got != 2 {
		t.Fatalf("read %v, want 2 (must apply both diffs in order)", got)
	}
}

func TestIntervalSplitOnPrefetchOfDirtyPage(t *testing.T) {
	r := newRig(2)
	// Node 0 writes and releases (notice propagates via barrier), then
	// keeps writing in its open interval. Node 1's prefetch arrives while
	// the page is dirty: serving it must not lose the open-interval
	// modifications, and node 0's next write must land in a new notice.
	r.k.At(0, func() { r.write(0, page0, 1) })
	r.k.Run()
	r.barrierAll(0)
	r.k.At(r.k.Now(), func() { r.write(0, page0+8, 2) }) // open-interval mod
	r.k.Run()

	vcBefore := r.nodes[0].VC()[0]
	r.k.At(r.k.Now(), func() { r.nodes[1].Prefetch(1) })
	r.k.Run()

	// Node 0 writes again: this must create a fresh twin and a new notice.
	r.k.At(r.k.Now(), func() { r.write(0, page0+16, 3) })
	r.k.Run()
	r.barrierAll(1)
	vcAfter := r.nodes[0].VC()[0]
	if vcAfter <= vcBefore {
		t.Fatalf("vc did not advance across prefetch-split: %d -> %d", vcBefore, vcAfter)
	}

	done := false
	r.k.At(r.k.Now(), func() { r.nodes[1].Fault(1, func() { done = true }) })
	r.k.Run()
	if !done {
		t.Fatal("fault never completed")
	}
	for i, want := range []float64{1, 2, 3} {
		if got := r.read(1, page0+pagemem.Addr(8*i)); got != want {
			t.Fatalf("word %d = %v, want %v", i, got, want)
		}
	}
}

func TestEmptyDiffServed(t *testing.T) {
	r := newRig(2)
	// Node 0 twins the page but writes the value it already holds: the
	// diff is empty, yet the protocol must still answer requests for it.
	r.k.At(0, func() { r.write(0, page0, 0) })
	r.k.Run()
	r.barrierAll(0)
	done := false
	r.k.At(r.k.Now(), func() { r.nodes[1].Fault(1, func() { done = true }) })
	r.k.Run()
	if !done {
		t.Fatal("fault on empty diff never completed")
	}
	if got := r.read(1, page0); got != 0 {
		t.Fatalf("read %v, want 0", got)
	}
}

func TestConcurrentWritersMergeViaTwinMaintenance(t *testing.T) {
	r := newRig(2)
	// Both nodes write disjoint words of the same page concurrently, then
	// node 1 faults after a barrier: its local writes and node 0's diff
	// must both survive, and node 1's own later diff must not include
	// node 0's bytes (twin maintenance).
	r.k.At(0, func() {
		r.write(0, page0, 10)
		r.write(1, page0+8, 20)
	})
	r.k.Run()
	r.barrierAll(0)
	done0, done1 := false, false
	r.k.At(r.k.Now(), func() {
		r.nodes[0].Fault(1, func() { done0 = true })
		r.nodes[1].Fault(1, func() { done1 = true })
	})
	r.k.Run()
	if !done0 || !done1 {
		t.Fatal("faults never completed")
	}
	for n := 0; n < 2; n++ {
		if got := r.read(n, page0); got != 10 {
			t.Fatalf("node %d word0 = %v, want 10", n, got)
		}
		if got := r.read(n, page0+8); got != 20 {
			t.Fatalf("node %d word1 = %v, want 20", n, got)
		}
	}
}

func TestMissingIvs(t *testing.T) {
	r := newRig(3)
	r.k.At(0, func() {
		r.write(0, page0, 1)
		r.write(1, page0+8, 2)
	})
	r.k.Run()
	r.barrierAll(0)
	// Node 2 knows both intervals after the barrier; a peer with an empty
	// VC lacks both (excluding node 2's own, of which there are none).
	missing := r.nodes[2].missingIvs(lrc.NewVC(3), 2)
	if len(missing) != 2 {
		t.Fatalf("missing = %d intervals, want 2", len(missing))
	}
	// A peer that has seen everything lacks nothing.
	missing = r.nodes[2].missingIvs(r.nodes[2].VC(), 2)
	if len(missing) != 0 {
		t.Fatalf("missing = %d, want 0", len(missing))
	}
}
