package proto

import (
	"godsm/internal/event"
	"godsm/internal/netsim"
	"godsm/internal/sim"
)

// Reliable transport. The paper's TreadMarks ran over a lightweight reliable
// UDP protocol: reliability was earned with sequence numbers, acknowledgments
// and retransmission, not assumed. This file implements that layer on top of
// the (possibly faulty) simulated network.
//
// The transport engages only when the network injects faults (see
// Node.EnableTransport); otherwise messages keep the seed's fiat delivery and
// runs remain byte-identical to pre-transport output. When enabled, every
// protocol message except prefetch traffic is sequenced per destination:
//
//   - the sender assigns a 1-based per-(src,dst) sequence number, keeps the
//     frame until it is acknowledged, and retransmits the oldest
//     unacknowledged frame on a timer with exponential backoff;
//   - the receiver acknowledges cumulatively (Ack = next expected seq),
//     piggybacking acks on reverse sequenced traffic and falling back to a
//     delayed pure ack (KindAck) otherwise;
//   - duplicates are suppressed by sequence number, and out-of-order frames
//     are buffered so the protocol keeps its per-pair FIFO delivery
//     guarantee (interval contiguity depends on it).
//
// Prefetch requests and replies stay unsequenced datagrams (Seq == 0): the
// protocol is already loss-tolerant for them — a lost prefetch just becomes
// a demand miss — and their handlers are idempotent under duplication.
type xpPeer struct {
	// Sender side.
	nextSeq uint64            // last sequence number assigned
	unacked []*netsim.Message // sent but not yet acknowledged, in seq order
	retx    *sim.Timer
	rto     sim.Time
	retries int

	// Receiver side.
	expect   uint64 // next in-order sequence number expected (cumulative ack)
	oob      map[uint64]*netsim.Message
	ackTimer *sim.Timer
	ackOwed  bool
}

const (
	// xportHdrBytes is the wire overhead of the transport header (sequence
	// number + cumulative ack) on every sequenced frame and pure ack.
	xportHdrBytes = 16
	// xportAckDelay is how long a receiver waits for reverse traffic to
	// piggyback on before sending a pure ack.
	xportAckDelay = 100 * sim.Microsecond
	// xportRTOMin/Max bound the exponential retransmission backoff.
	xportRTOMin = 4 * sim.Millisecond
	xportRTOMax = 64 * sim.Millisecond
	// xportRetryCap bounds consecutive timeouts without ack progress for one
	// frame; exceeding it means the link is effectively dead (with backoff,
	// roughly half a second of silence) and is treated as an invariant
	// failure rather than an infinite retry loop.
	xportRetryCap = 12
)

// EnableTransport switches the node from fiat delivery to the reliable
// transport. The cluster wiring calls it when the network's fault plan is
// active. Must be called before the simulation starts.
func (n *Node) EnableTransport() {
	if n.xp != nil {
		return
	}
	n.xp = make([]*xpPeer, n.N)
	for q := 0; q < n.N; q++ {
		if q == n.ID {
			continue
		}
		p := &xpPeer{expect: 1, rto: xportRTOMin}
		q := q
		p.retx = n.K.NewTimer(func() { n.retxFire(q) })
		p.ackTimer = n.K.NewTimer(func() { n.ackFire(q) })
		n.xp[q] = p
	}
}

// sequenced reports whether the transport sequences this kind of message.
func sequenced(k netsim.Kind) bool {
	return k != KindPfReq && k != KindPfReply && k != KindAck
}

// pfReplyPage extracts the page id from a prefetch reply payload, which is
// a diff reply under the diff-based backends and a page reply under HLRC.
func pfReplyPage(payload any) int64 {
	switch pl := payload.(type) {
	case *msgDiffReply:
		return int64(pl.Page)
	case *msgPageReply:
		return int64(pl.Page)
	}
	return -1
}

// xmit is the node's single transmission choke point. Without transport (or
// for loopback and unsequenced kinds) it is a plain network send; otherwise
// it assigns the sequence number, records the frame for retransmission, and
// sends a copy with the current cumulative ack piggybacked.
func (n *Node) xmit(m *netsim.Message) {
	if n.xp == nil || m.Src == m.Dst || !sequenced(m.Kind) {
		//dsmvet:allow chargecost — transport choke point; the charge was paid at the sendAfter call site
		if n.Send(m) < 0 && m.Kind == KindPfReply {
			n.bus.Emit(event.PfReplyDrop(n.ID, pfReplyPage(m.Payload)))
		}
		return
	}
	p := n.xp[m.Dst]
	p.nextSeq++
	m.Seq = p.nextSeq
	m.Size += xportHdrBytes
	p.unacked = append(p.unacked, m)
	n.transmit(p, m)
	if !p.retx.Active() {
		p.retx.Arm(p.rto)
	}
}

// transmit sends one copy of a sequenced frame with the ack piggybacked,
// canceling any pending pure ack to that peer (the copy carries it).
func (n *Node) transmit(p *xpPeer, m *netsim.Message) {
	p.ackOwed = false
	p.ackTimer.Stop()
	mm := *m
	mm.Ack = p.expect
	//dsmvet:allow chargecost — transport choke point; first copies are charged at sendAfter, retransmissions in retxFire
	n.Send(&mm)
}

// retxFire handles a retransmission timeout for peer q: resend the oldest
// unacknowledged frame and back off.
func (n *Node) retxFire(q int) {
	p := n.xp[q]
	if len(p.unacked) == 0 {
		return
	}
	p.retries++
	n.bus.Emit(event.XpTimeout(n.ID, q, p.retries))
	if p.retries > xportRetryCap {
		n.invariantf("node %d: %d consecutive retransmission timeouts to node %d (seq %d, kind %s); peer unreachable",
			n.ID, p.retries-1, q, p.unacked[0].Seq, KindName(p.unacked[0].Kind))
	}
	m := p.unacked[0]
	done := n.CPU.Service(n.C.MsgSend, sim.CatDSM)
	n.K.At(done, func() { n.transmit(p, m) })
	p.rto *= 2
	if p.rto > xportRTOMax {
		p.rto = xportRTOMax
	}
	n.bus.Emit(event.XpRetransmit(n.ID, q, m.Seq, p.rto))
	p.retx.Arm(p.rto)
}

// ackFire sends a delayed pure ack to peer q.
func (n *Node) ackFire(q int) {
	p := n.xp[q]
	if !p.ackOwed {
		return
	}
	p.ackOwed = false
	n.bus.Emit(event.XpAck(n.ID, q))
	done := n.CPU.Service(n.C.MsgSend, sim.CatDSM)
	n.K.At(done, func() {
		//dsmvet:allow chargecost — transport choke point; the pure ack's MsgSend is charged immediately above
		n.Send(&netsim.Message{
			Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(q),
			Size: n.C.HeaderBytes + xportHdrBytes, Reliable: true,
			Kind: KindAck, Ack: p.expect,
		})
	})
}

// scheduleAck marks an ack owed to peer q, to be piggybacked on the next
// sequenced frame or sent as a pure ack after xportAckDelay.
func (n *Node) scheduleAck(p *xpPeer) {
	if p.ackOwed {
		return
	}
	p.ackOwed = true
	p.ackTimer.Arm(xportAckDelay)
}

// onAck processes a cumulative acknowledgment from peer q: every frame with
// seq < ack is delivered, so drop it from the retransmission queue. Progress
// resets the backoff.
func (n *Node) onAck(p *xpPeer, ack uint64) {
	if ack == 0 {
		return
	}
	progress := false
	for len(p.unacked) > 0 && p.unacked[0].Seq < ack {
		p.unacked[0] = nil
		p.unacked = p.unacked[1:]
		progress = true
	}
	if !progress {
		return
	}
	p.rto = xportRTOMin
	p.retries = 0
	if len(p.unacked) == 0 {
		p.retx.Stop()
	} else {
		p.retx.Arm(p.rto)
	}
}

// xpReceive filters one arriving frame through the transport: ack
// processing, duplicate suppression, and in-order delivery (buffering
// out-of-order frames until the gap fills). Receive-side CPU cost has
// already been charged by Deliver.
func (n *Node) xpReceive(m *netsim.Message) {
	if m.Src == m.Dst {
		n.dispatch(m)
		return
	}
	p := n.xp[m.Src]
	n.onAck(p, m.Ack)
	if m.Seq == 0 {
		if m.Kind != KindAck { // pure acks carry nothing to dispatch
			n.dispatch(m)
		}
		return
	}
	switch {
	case m.Seq < p.expect:
		// Already delivered: the sender retransmitted because our ack was
		// lost or late. Re-ack, suppress.
		n.bus.Emit(event.XpDup(n.ID, int(m.Src), m.Seq))
		n.scheduleAck(p)
	case m.Seq == p.expect:
		p.expect++
		n.dispatch(m)
		for {
			next, ok := p.oob[p.expect]
			if !ok {
				break
			}
			delete(p.oob, p.expect)
			p.expect++
			n.dispatch(next)
		}
		n.scheduleAck(p)
	default: // m.Seq > p.expect: a gap — buffer until it fills
		if p.oob == nil {
			p.oob = make(map[uint64]*netsim.Message)
		}
		if _, dup := p.oob[m.Seq]; dup {
			n.bus.Emit(event.XpDup(n.ID, int(m.Src), m.Seq))
		} else {
			p.oob[m.Seq] = m
		}
		n.scheduleAck(p)
	}
}
