package proto

import (
	"godsm/internal/event"
	"godsm/internal/lrc"
	"godsm/internal/netsim"
	"godsm/internal/sim"
)

// lockState is one lock's state at one node. The algorithm is TreadMarks's
// distributed queue: a static manager (lock id mod N) tracks the last
// requester and forwards each new acquire to it; the previous requester
// grants directly to its successor when it releases, piggybacking the write
// notices the successor lacks. Token ownership is cached: the last holder
// re-acquires locally with no messages.
type lockState struct {
	// Manager-side.
	lastRequester int

	// Holder-side.
	owned      bool        // this node holds the token
	held       bool        // a local thread currently holds the lock
	pendingFwd *msgLockAcq // successor waiting for our release
	waiting    func()      // local continuation once our grant arrives
	reqStart   sim.Time

	// Manager-side, NoTokenCache only: a redirected request waiting for
	// the token to come back from its last holder.
	retryQ *msgLockAcq

	// Tenure tagging: mySeq counts this node's acquires of the lock;
	// lastReqSeq (manager side) is the sequence of lastRequester's acquire.
	// Forwards carry the predecessor tenure so a node can tell whether a
	// forwarded request chains after its current tenure or a finished one
	// (the distinction matters once tokens return to the manager).
	mySeq      int
	lastReqSeq int
}

func (n *Node) lock(id int) *lockState {
	ls, ok := n.locks[id]
	if !ok {
		ls = &lockState{lastRequester: -1}
		if n.lockManager(id) == n.ID {
			ls.owned = true // the manager owns every token initially
			ls.lastRequester = n.ID
		}
		n.locks[id] = ls
	}
	return ls
}

func (n *Node) lockManager(id int) int { return id % n.N }

// AcquireLock acquires lock id. If the token is cached locally the acquire
// completes immediately and AcquireLock returns true; otherwise it returns
// false and onGranted runs (in kernel context) when the grant arrives.
func (n *Node) AcquireLock(id int, onGranted func()) (immediate bool) {
	ls := n.lock(id)
	if ls.held {
		n.invariantf("node %d re-acquiring held lock %d (combine locally first)", n.ID, id)
	}
	if ls.waiting != nil {
		n.invariantf("node %d has concurrent remote acquires of lock %d", n.ID, id)
	}
	if ls.owned && !n.NoTokenCache {
		ls.held = true
		n.bus.Emit(event.LockLocal(n.ID, id))
		return true
	}

	n.bus.Emit(event.LockRemote(n.ID, id))
	ls.waiting = onGranted
	ls.reqStart = n.K.Now()
	ls.mySeq++
	req := &msgLockAcq{Lock: id, Requester: n.ID, VC: n.vc.Clone(), Seq: ls.mySeq}
	mgr := n.lockManager(id)
	if mgr == n.ID {
		done := n.CPU.Service(n.C.LockMgr, sim.CatDSM)
		n.K.At(done, func() { n.handleLockAcqAtManager(req) })
		return false
	}
	done := n.CPU.Service(n.C.MsgSend, sim.CatDSM)
	n.sendAfter(done, &netsim.Message{
		Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(mgr),
		Size:     n.C.HeaderBytes + n.C.ReqBytes + 4*n.N,
		Reliable: true, Kind: KindLockAcq, Payload: req,
	})
	return false
}

// handleLockAcqAtManager runs at the lock's manager: it records the new
// tail of the queue and forwards the request to the previous requester.
func (n *Node) handleLockAcqAtManager(req *msgLockAcq) {
	ls := n.lock(req.Lock)
	prev := ls.lastRequester
	prevSeq := ls.lastReqSeq
	ls.lastRequester = req.Requester
	ls.lastReqSeq = req.Seq
	req.PrevSeq = prevSeq
	if prev == req.Requester && !n.NoTokenCache {
		// With token caching the last requester re-acquires locally and
		// never contacts the manager; reaching here is a protocol bug.
		n.invariantf("lock %d requester %d already owns the token", req.Lock, req.Requester)
	}
	if prev == n.ID {
		n.handleLockForward(req)
		return
	}
	done := n.CPU.Service(n.C.LockMgr+n.C.MsgSend, sim.CatDSM)
	n.sendAfter(done, &netsim.Message{
		Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(prev),
		Size:     n.C.HeaderBytes + n.C.ReqBytes + 4*n.N,
		Reliable: true, Kind: KindLockForward, Payload: req,
	})
}

// handleLockForward runs at the previous requester: grant now if the token
// is here and free, remember the successor until our release if we hold or
// will hold it, or (NoTokenCache only) redirect to the manager if the token
// has already been returned.
func (n *Node) handleLockForward(req *msgLockAcq) {
	ls := n.lock(req.Lock)
	n.bus.Emit(event.LockForward(n.ID, req.Lock, req.Requester))
	if ls.pendingFwd != nil {
		n.invariantf("lock %d already has a pending successor", req.Lock)
	}
	if ls.owned && !ls.held {
		// Token here and free: grant even if we are ourselves re-queued
		// (NoTokenCache) — our own grant will come back through the chain.
		n.grantLock(req)
		return
	}
	if ls.held {
		if n.NoTokenCache && req.PrevSeq != ls.mySeq {
			n.invariantf("lock %d forward for stale tenure while held", req.Lock)
		}
		ls.pendingFwd = req
		return
	}
	if ls.waiting != nil && (!n.NoTokenCache || req.PrevSeq == ls.mySeq) {
		// The request chains after our pending tenure.
		ls.pendingFwd = req
		return
	}
	if !n.NoTokenCache {
		n.invariantf("node %d forwarded lock %d it does not own", n.ID, req.Lock)
	}
	// The token is on its way back to the manager: redirect the request.
	mgr := n.lockManager(req.Lock)
	done := n.CPU.Service(n.C.MsgSend, sim.CatDSM)
	n.sendAfter(done, &netsim.Message{
		Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(mgr),
		Size:     n.C.HeaderBytes + n.C.ReqBytes + 4*n.N,
		Reliable: true, Kind: KindLockRetry, Payload: req,
	})
}

// handleLockRetry runs at the manager: grant from the (possibly still
// in-flight) returned token.
func (n *Node) handleLockRetry(req *msgLockAcq) {
	ls := n.lock(req.Lock)
	if ls.owned && !ls.held {
		n.grantLock(req)
		return
	}
	if ls.retryQ != nil {
		n.invariantf("lock %d has two redirected requests", req.Lock)
	}
	ls.retryQ = req
}

// returnToken ships the token back to the manager (NoTokenCache), carrying
// everything this node knows above the GC base so later manager grants are
// consistent.
func (n *Node) returnToken(id int) {
	n.bus.Emit(event.LockReturn(n.ID, id))
	ls := n.lock(id)
	ls.owned = false
	mgr := n.lockManager(id)
	ivs := n.missingIvs(n.gcBase.Clone(), mgr)
	size := n.C.HeaderBytes + 4*n.N + n.C.ivsWireSize(ivs, n.N)
	done := n.CPU.Service(n.C.GrantMake+n.C.MsgSend, sim.CatDSM)
	n.sendAfter(done, &netsim.Message{
		Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(mgr),
		Size: size, Reliable: true, Kind: KindLockReturn,
		Payload: &msgLockGrant{Lock: id, VC: n.vc.Clone(), Ivs: ivs},
	})
}

// handleLockReturn restores manager ownership and serves any redirected
// request that raced with the return.
func (n *Node) handleLockReturn(g *msgLockGrant) {
	ls := n.lock(g.Lock)
	cost := n.intake(g.Ivs, g.VC)
	n.CPU.Service(cost, sim.CatDSM)
	ls.owned = true
	if ls.retryQ != nil {
		req := ls.retryQ
		ls.retryQ = nil
		n.grantLock(req)
	}
}

// grantLock transfers the token to req.Requester with piggybacked write
// notices. The caller must own the token and the lock must be free.
func (n *Node) grantLock(req *msgLockAcq) {
	ls := n.lock(req.Lock)
	ls.owned = false
	ivs := n.missingIvs(req.VC, req.Requester)
	size := n.C.HeaderBytes + 4*n.N + n.C.ivsWireSize(ivs, n.N)
	done := n.CPU.Service(n.C.GrantMake+n.C.MsgSend, sim.CatDSM)
	n.sendAfter(done, &netsim.Message{
		Src: netsim.NodeID(n.ID), Dst: netsim.NodeID(req.Requester),
		Size: size, Reliable: true, Kind: KindLockGrant,
		Payload: &msgLockGrant{Lock: req.Lock, VC: n.vc.Clone(), Ivs: ivs},
	})
}

// handleLockGrant completes a remote acquire.
func (n *Node) handleLockGrant(g *msgLockGrant) {
	ls := n.lock(g.Lock)
	if ls.waiting == nil {
		n.invariantf("node %d got unexpected grant of lock %d", n.ID, g.Lock)
	}
	cost := n.intake(g.Ivs, g.VC)
	ls.owned = true
	ls.held = true
	done := n.CPU.Service(cost, sim.CatDSM)
	n.bus.Emit(event.LockGrant(n.ID, g.Lock, done-ls.reqStart))
	cb := ls.waiting
	ls.waiting = nil
	n.K.At(done, func() {
		cb()
		// A successor may have been forwarded to us while we waited; it
		// is served when the local holder releases.
	})
}

// ReleaseLock releases lock id: the release closes the current interval
// (the LRC interval boundary) and hands the token to a waiting successor,
// if any. Local: no messages unless a successor is pending.
func (n *Node) ReleaseLock(id int) {
	ls := n.lock(id)
	if !ls.held {
		n.invariantf("node %d releasing lock %d it does not hold", n.ID, id)
	}
	n.closeInterval()
	ls.held = false
	if ls.pendingFwd != nil {
		req := ls.pendingFwd
		ls.pendingFwd = nil
		n.grantLock(req)
		return
	}
	if n.NoTokenCache {
		if n.lockManager(id) != n.ID {
			n.returnToken(id)
		} else if ls.retryQ != nil {
			// A redirected request was waiting for the manager's own
			// tenure to finish.
			req := ls.retryQ
			ls.retryQ = nil
			n.grantLock(req)
		}
	}
}

// barrierState lives on the barrier manager (node 0).
type barrierState struct {
	arrived    int
	arrivalVCs []lrc.VC // by node
	releases   []func() // manager-local continuations
	mgrStart   sim.Time
	gcWant     bool // some arrival exceeded the GC threshold
	gcDone     int  // nodes that completed GC validation
}

// Barrier arrives at barrier id; onRelease runs (in kernel context) when
// the barrier releases. The arrival closes the current interval and ships
// this node's new intervals to the manager.
func (n *Node) Barrier(id int, onRelease func()) {
	n.closeInterval()
	own := n.ownSinceBarrier
	n.ownSinceBarrier = nil
	n.bus.Emit(event.BarArrive(n.ID, id))

	report := n.diffBytes
	if n.PfHeapSharedGC {
		report += n.pfHeap
	}
	if n.ID == 0 {
		n.barrier.mgrStart = n.K.Now()
		n.barrier.releases = append(n.barrier.releases, onRelease)
		n.barArrive(&msgBarArrive{Barrier: id, From: 0, VC: n.vc.Clone(), Ivs: own,
			DiffBytes: report})
		return
	}

	n.barStart = n.K.Now()
	n.barWait = onRelease
	size := n.C.HeaderBytes + 4*n.N + n.C.ivsWireSize(own, n.N)
	done := n.CPU.Service(n.C.MsgSend, sim.CatDSM)
	n.sendAfter(done, &netsim.Message{
		Src: netsim.NodeID(n.ID), Dst: 0,
		Size: size, Reliable: true, Kind: KindBarArrive,
		Payload: &msgBarArrive{Barrier: id, From: n.ID, VC: n.vc.Clone(), Ivs: own,
			DiffBytes: n.diffBytes},
	})
}

// handleBarArrive runs on the manager for remote arrivals.
func (n *Node) handleBarArrive(a *msgBarArrive) { n.barArrive(a) }

// barArrive records one arrival; the N-th arrival releases everyone.
func (n *Node) barArrive(a *msgBarArrive) {
	b := n.barrier
	if b.arrivalVCs == nil {
		b.arrivalVCs = make([]lrc.VC, n.N)
	}
	if b.arrivalVCs[a.From] != nil {
		n.invariantf("duplicate barrier arrival from %d", a.From)
	}
	b.arrivalVCs[a.From] = a.VC.Clone()
	if n.GCThreshold > 0 && a.DiffBytes > n.GCThreshold {
		b.gcWant = true
	}
	// Record the arriver's intervals WITHOUT invalidating local pages or
	// merging VCs yet: the manager acts as a server here; its own memory
	// view only changes when it passes the barrier itself, and an arrival
	// VC may cover third-node intervals whose records arrive later.
	cost := n.C.BarrierMgr
	for _, iv := range a.Ivs {
		cost += n.recordDeferred(iv)
	}
	b.arrived++
	if b.arrived < n.N {
		n.CPU.Service(cost, sim.CatDSM)
		return
	}
	for q := 0; q < n.N; q++ {
		n.vc.Merge(b.arrivalVCs[q])
	}
	n.flushDeferred()
	n.checkContiguity()

	// Everyone is here: release. Each node gets the intervals it lacks
	// (per its arrival VC), excluding its own.
	arrivalVCs := b.arrivalVCs
	releases := b.releases
	mgrStart := b.mgrStart
	gc := b.gcWant
	b.arrived = 0
	b.arrivalVCs = nil
	b.releases = nil
	b.gcWant = false

	for q := 1; q < n.N; q++ {
		ivs := n.missingIvs(arrivalVCs[q], q)
		size := n.C.HeaderBytes + 4*n.N + n.C.ivsWireSize(ivs, n.N)
		cost += n.C.MsgSend
		done := n.CPU.Service(cost, sim.CatDSM)
		cost = 0
		n.sendAfter(done, &netsim.Message{
			Src: 0, Dst: netsim.NodeID(q),
			Size: size, Reliable: true, Kind: KindBarRelease,
			Payload: &msgBarRelease{Barrier: a.Barrier, VC: n.vc.Clone(), Ivs: ivs, GC: gc},
		})
	}
	done := n.CPU.Service(cost, sim.CatDSM)
	n.bus.Emit(event.BarRelease(n.ID, a.Barrier, done-mgrStart))
	resume := func() {
		for _, r := range releases {
			r()
		}
	}
	if gc {
		n.K.At(done, func() { n.gcBegin(resume) })
		return
	}
	n.K.At(done, resume)
}

// handleBarRelease completes a barrier wait on a non-manager node.
func (n *Node) handleBarRelease(r *msgBarRelease) {
	cost := n.intake(r.Ivs, r.VC)
	done := n.CPU.Service(cost, sim.CatDSM)
	n.bus.Emit(event.BarRelease(n.ID, r.Barrier, done-n.barStart))
	cb := n.barWait
	n.barWait = nil
	if r.GC {
		n.K.At(done, func() { n.gcBegin(cb) })
		return
	}
	n.K.At(done, cb)
}
