// Package stats defines the measurement counters that reproduce the paper's
// instrumentation: per-processor execution-time breakdowns (Figures 1, 2, 4,
// 5), prefetching effectiveness (Table 1, Figure 3), and multithreading
// behaviour (Table 2).
package stats

import (
	"fmt"

	"godsm/internal/sim"
)

// Node accumulates one processor's counters over a run. The protocol engine
// and the thread scheduler update it directly; Report aggregates across
// processors at the end of a run.
type Node struct {
	// Remote memory misses: page faults that required network messages.
	Misses    int64
	MissStall sim.Time

	// Faults resolved entirely from the prefetch diff cache (no network).
	// These were misses in the original program but are not counted in
	// Misses, matching Table 1's "Total Misses" accounting.
	CacheHits int64

	// Synchronization.
	RemoteLockAcqs int64
	LocalLockAcqs  int64 // satisfied by local hand-off (multithreading)
	LockStall      sim.Time
	BarrierArrives int64
	BarrierStall   sim.Time

	// Prefetching.
	PfCalls        int64 // Prefetch() invocations
	PfUnnecessary  int64 // dropped: page valid or fetch already in flight
	PfMsgs         int64 // prefetch request messages actually sent
	PfReqDropped   int64 // prefetch requests lost in the network
	PfReplyDropped int64 // prefetch replies lost in the network (counted at the server)

	// Outcome of each fault in a prefetching run (Figure 3 categories).
	FaultNoPf        int64 // page was never prefetched
	FaultPfHit       int64 // all needed diffs were in the prefetch cache
	FaultPfLate      int64 // prefetched, but replies had not (all) arrived
	FaultPfInvalided int64 // prefetched, but new write notices superseded it

	// Multithreading.
	CtxSwitches int64
	Blocks      int64    // thread blocking events (stalls)
	RunTotal    sim.Time // total busy run time between stalls
	Runs        int64

	// Diff garbage collection.
	GCRuns int64
	GCTime sim.Time

	// Protocol work counters (diagnostics and ablations).
	DiffsMade    int64
	DiffsApplied int64
	TwinsMade    int64

	// Home-based coherence (only nonzero under the HLRC backend): diff
	// flushes pushed to page homes at release, and whole-page fetches
	// served by homes at fault time.
	HomeFlushes    int64
	HomeFlushBytes int64
	HomeFetches    int64
	HomeFetchBytes int64

	// Reliable transport (only nonzero when a fault plan activates it).
	Retransmits   int64    // frames re-sent after a timeout
	Timeouts      int64    // retransmission timer firings
	AcksSent      int64    // pure (non-piggybacked) acknowledgments sent
	DupSuppressed int64    // sequenced frames discarded as duplicates
	MaxBackoff    sim.Time // largest retransmission timeout reached

	// Gossip write-notice dissemination (only nonzero with the Gossip knob).
	GossipRounds  int64 // gossip rounds fired (one batch push per round)
	GossipNotices int64 // interval records pushed, summed over rounds

	// Adaptive coherence (only nonzero under a dynamic home policy or the
	// "adp" backend): home migrations landing at this node, and per-page
	// regime switches decided at this node's barrier episodes.
	HomeMigrations   int64
	HomeMigrateBytes int64
	ModeToHome       int64 // pages switched diff -> home
	ModeToDiff       int64 // pages switched home -> diff
}

// StallEvents returns the number of stall events (memory + sync).
func (n *Node) StallEvents() int64 {
	return n.Misses + n.CacheHits + n.RemoteLockAcqs + n.BarrierArrives
}

// Breakdown is a processor-time breakdown in the paper's categories.
type Breakdown struct {
	Cat     [sim.NumCategories]sim.Time
	Elapsed sim.Time
}

// Normalized returns each category as a percentage of a reference elapsed
// time (the paper normalizes to the original execution time).
func (b Breakdown) Normalized(ref sim.Time) [sim.NumCategories]float64 {
	var out [sim.NumCategories]float64
	if ref <= 0 {
		return out
	}
	for i, v := range b.Cat {
		out[i] = 100 * float64(v) / float64(ref)
	}
	return out
}

// Total returns the sum of all categories.
func (b Breakdown) Total() sim.Time {
	var t sim.Time
	for _, v := range b.Cat {
		t += v
	}
	return t
}

// Report is the aggregate result of one run.
type Report struct {
	Procs     int
	Threads   int
	Elapsed   sim.Time
	Breakdown Breakdown // averaged over processors
	PerProc   []Breakdown
	Nodes     []Node

	MsgsTotal  int64
	BytesTotal int64
	Drops      int64

	// Per-wire-kind traffic, indexed by the protocol's message kind (see
	// proto.KindName); slices of length netsim.MaxKinds. Nil on reports
	// produced outside core (tests building Reports by hand).
	KindMsgs  []int64
	KindBytes []int64

	// The busiest directed link of the topology: the largest single-message
	// backlog (queueing wait + serialization) any link saw, and its name.
	PeakLink        string
	PeakLinkBacklog sim.Time
}

// Fingerprint returns a deterministic rendering of every field of the
// report (elapsed time, per-processor breakdowns, all node counters,
// traffic totals). Two runs of the same configuration must produce equal
// fingerprints regardless of what else executes concurrently — the
// parallel experiment runner's determinism tests compare these.
func (r *Report) Fingerprint() string {
	return fmt.Sprintf("%+v", *r)
}

// Sum returns the element-wise sum of all nodes' counters.
func (r *Report) Sum() Node {
	var t Node
	for i := range r.Nodes {
		n := &r.Nodes[i]
		t.Misses += n.Misses
		t.MissStall += n.MissStall
		t.CacheHits += n.CacheHits
		t.RemoteLockAcqs += n.RemoteLockAcqs
		t.LocalLockAcqs += n.LocalLockAcqs
		t.LockStall += n.LockStall
		t.BarrierArrives += n.BarrierArrives
		t.BarrierStall += n.BarrierStall
		t.PfCalls += n.PfCalls
		t.PfUnnecessary += n.PfUnnecessary
		t.PfMsgs += n.PfMsgs
		t.PfReqDropped += n.PfReqDropped
		t.PfReplyDropped += n.PfReplyDropped
		t.FaultNoPf += n.FaultNoPf
		t.FaultPfHit += n.FaultPfHit
		t.FaultPfLate += n.FaultPfLate
		t.FaultPfInvalided += n.FaultPfInvalided
		t.CtxSwitches += n.CtxSwitches
		t.Blocks += n.Blocks
		t.RunTotal += n.RunTotal
		t.Runs += n.Runs
		t.GCRuns += n.GCRuns
		t.GCTime += n.GCTime
		t.DiffsMade += n.DiffsMade
		t.DiffsApplied += n.DiffsApplied
		t.TwinsMade += n.TwinsMade
		t.HomeFlushes += n.HomeFlushes
		t.HomeFlushBytes += n.HomeFlushBytes
		t.HomeFetches += n.HomeFetches
		t.HomeFetchBytes += n.HomeFetchBytes
		t.Retransmits += n.Retransmits
		t.Timeouts += n.Timeouts
		t.AcksSent += n.AcksSent
		t.DupSuppressed += n.DupSuppressed
		if n.MaxBackoff > t.MaxBackoff {
			t.MaxBackoff = n.MaxBackoff // max, not sum: it is a high-water mark
		}
		t.GossipRounds += n.GossipRounds
		t.GossipNotices += n.GossipNotices
		t.HomeMigrations += n.HomeMigrations
		t.HomeMigrateBytes += n.HomeMigrateBytes
		t.ModeToHome += n.ModeToHome
		t.ModeToDiff += n.ModeToDiff
	}
	return t
}

// AvgMissLatency returns the mean remote miss stall, or 0 if none.
func (r *Report) AvgMissLatency() sim.Time {
	s := r.Sum()
	if s.Misses == 0 {
		return 0
	}
	return s.MissStall / s.Misses
}

// TotalMisses returns remote misses across processors.
func (r *Report) TotalMisses() int64 { return r.Sum().Misses }

// OriginalMisses returns how many faults the original (non-prefetching)
// program would have taken: remote misses plus prefetch-cache hits.
func (r *Report) OriginalMisses() int64 {
	s := r.Sum()
	return s.Misses + s.CacheHits
}

// CoverageFactor returns the fraction of original misses that were
// prefetched (hit + late + invalidated), as a percentage.
func (r *Report) CoverageFactor() float64 {
	s := r.Sum()
	total := s.FaultNoPf + s.FaultPfHit + s.FaultPfLate + s.FaultPfInvalided
	if total == 0 {
		return 0
	}
	return 100 * float64(s.FaultPfHit+s.FaultPfLate+s.FaultPfInvalided) / float64(total)
}

// UnnecessaryPfPct returns the percentage of prefetch calls that found
// their data already local or in flight.
func (r *Report) UnnecessaryPfPct() float64 {
	s := r.Sum()
	if s.PfCalls == 0 {
		return 0
	}
	return 100 * float64(s.PfUnnecessary) / float64(s.PfCalls)
}

// AvgStall returns the mean stall duration over all stall events.
func (r *Report) AvgStall() sim.Time {
	s := r.Sum()
	n := s.Blocks
	if n == 0 {
		return 0
	}
	return (s.MissStall + s.LockStall + s.BarrierStall) / n
}

// AvgRunLength returns the mean busy run between stalls.
func (r *Report) AvgRunLength() sim.Time {
	s := r.Sum()
	if s.Runs == 0 {
		return 0
	}
	return s.RunTotal / s.Runs
}

// Speedup returns ref/this elapsed as a ratio (>1 means this run is faster).
func (r *Report) Speedup(ref *Report) float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(ref.Elapsed) / float64(r.Elapsed)
}
