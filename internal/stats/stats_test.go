package stats

import (
	"testing"

	"godsm/internal/sim"
)

func TestBreakdownNormalized(t *testing.T) {
	var b Breakdown
	b.Cat[sim.CatBusy] = 250
	b.Cat[sim.CatDSM] = 750
	b.Elapsed = 1000
	n := b.Normalized(1000)
	if n[sim.CatBusy] != 25 || n[sim.CatDSM] != 75 {
		t.Fatalf("normalized = %v", n)
	}
	if b.Total() != 1000 {
		t.Fatalf("total = %d", b.Total())
	}
	zero := b.Normalized(0)
	for _, v := range zero {
		if v != 0 {
			t.Fatal("normalizing to zero reference must yield zeros")
		}
	}
}

func TestReportAggregates(t *testing.T) {
	r := &Report{
		Procs: 2,
		Nodes: []Node{
			{Misses: 10, MissStall: 10_000, CacheHits: 5, PfCalls: 20, PfUnnecessary: 5,
				FaultNoPf: 3, FaultPfHit: 5, FaultPfLate: 4, FaultPfInvalided: 3,
				Blocks: 10, RunTotal: 5000, Runs: 10,
				LockStall: 1000, BarrierStall: 2000},
			{Misses: 5, MissStall: 5_000, CacheHits: 0, PfCalls: 10, PfUnnecessary: 10,
				FaultNoPf: 5, Blocks: 5, RunTotal: 2500, Runs: 5},
		},
	}
	if got := r.TotalMisses(); got != 15 {
		t.Errorf("TotalMisses = %d", got)
	}
	if got := r.OriginalMisses(); got != 20 {
		t.Errorf("OriginalMisses = %d", got)
	}
	if got := r.AvgMissLatency(); got != 1000 {
		t.Errorf("AvgMissLatency = %d", got)
	}
	// Coverage: (5+4+3) of (3+5+4+3 + 5) = 12/20 = 60%.
	if got := r.CoverageFactor(); got != 60 {
		t.Errorf("CoverageFactor = %v", got)
	}
	// Unnecessary: 15 of 30 calls.
	if got := r.UnnecessaryPfPct(); got != 50 {
		t.Errorf("UnnecessaryPfPct = %v", got)
	}
	// AvgStall: (15000+1000+2000)/15 = 1200.
	if got := r.AvgStall(); got != 1200 {
		t.Errorf("AvgStall = %d", got)
	}
	if got := r.AvgRunLength(); got != 500 {
		t.Errorf("AvgRunLength = %d", got)
	}
}

func TestSpeedup(t *testing.T) {
	a := &Report{Elapsed: 2000}
	b := &Report{Elapsed: 1000}
	if got := b.Speedup(a); got != 2 {
		t.Errorf("Speedup = %v", got)
	}
	var zero Report
	if got := zero.Speedup(a); got != 0 {
		t.Errorf("zero-elapsed speedup = %v", got)
	}
}

func TestEmptyReportSafety(t *testing.T) {
	r := &Report{}
	if r.AvgMissLatency() != 0 || r.CoverageFactor() != 0 ||
		r.UnnecessaryPfPct() != 0 || r.AvgStall() != 0 || r.AvgRunLength() != 0 {
		t.Fatal("empty report must yield zeros, not panic")
	}
}

func TestStallEvents(t *testing.T) {
	n := Node{Misses: 3, CacheHits: 2, RemoteLockAcqs: 4, BarrierArrives: 1}
	if got := n.StallEvents(); got != 10 {
		t.Errorf("StallEvents = %d", got)
	}
}
