package stats

import (
	"fmt"

	"godsm/internal/event"
)

// Collector derives per-node protocol counters from the event bus. It is
// the only writer of Node counters in a simulation: protocol and core code
// emit events at the point something happens, and the collector folds them
// into the counter set, so the counters and any trace of the same run can
// never disagree.
type Collector struct {
	nodes []Node // indexed by node id; owned by the caller
}

// NewCollector returns a collector folding events into nodes. The slice is
// shared with the caller (typically core.System's NodeSt), not copied.
func NewCollector(nodes []Node) *Collector {
	return &Collector{nodes: nodes}
}

// Event implements event.Sink.
func (c *Collector) Event(e event.Event) {
	if e.Node < 0 || int(e.Node) >= len(c.nodes) {
		return
	}
	n := &c.nodes[e.Node]
	switch e.Kind {
	case event.KindFaultLocal:
		n.CacheHits++
		if e.Arg == event.OutcomePfHit {
			n.FaultPfHit++
		} else {
			n.FaultNoPf++
		}
	case event.KindFaultRemote:
		n.Misses++
		switch e.Arg {
		case event.OutcomeNoPf:
			n.FaultNoPf++
		case event.OutcomePfLate:
			n.FaultPfLate++
		case event.OutcomePfInvalided:
			n.FaultPfInvalided++
		}
	case event.KindFetchDone:
		n.MissStall += e.Arg
	case event.KindDiffMake:
		n.DiffsMade++
	case event.KindDiffApply:
		n.DiffsApplied++
	case event.KindTwin:
		n.TwinsMade++
	case event.KindLockLocal:
		n.LocalLockAcqs++
	case event.KindLockRemote:
		n.RemoteLockAcqs++
	case event.KindLockGrant:
		n.LockStall += e.Arg
	case event.KindBarArrive:
		n.BarrierArrives++
	case event.KindBarRelease:
		n.BarrierStall += e.Arg
	case event.KindPfCall:
		n.PfCalls++
	case event.KindPfUnnecessary:
		n.PfUnnecessary++
	case event.KindPfIssue:
		n.PfMsgs += e.Arg
	case event.KindPfReqDrop:
		n.PfReqDropped++
	case event.KindPfReplyDrop:
		n.PfReplyDropped++
	case event.KindGCFlush:
		n.GCRuns++
	case event.KindGCDone:
		n.GCTime += e.Arg
	case event.KindHomeFlush:
		n.HomeFlushes++
		n.HomeFlushBytes += e.Arg
	case event.KindHomeFetch:
		n.HomeFetches++
		n.HomeFetchBytes += e.Arg
	case event.KindXpTimeout:
		n.Timeouts++
	case event.KindXpRetransmit:
		n.Retransmits++
		if e.Arg > n.MaxBackoff {
			n.MaxBackoff = e.Arg
		}
	case event.KindXpAck:
		n.AcksSent++
	case event.KindXpDup:
		n.DupSuppressed++
	case event.KindGossipPush:
		n.GossipRounds++
		n.GossipNotices += e.Arg
	case event.KindHomeMigrate:
		n.HomeMigrations++
		n.HomeMigrateBytes += e.Arg
	case event.KindModeSwitch:
		if e.Arg != 0 {
			n.ModeToHome++
		} else {
			n.ModeToDiff++
		}
	case event.KindThreadSwitch:
		n.CtxSwitches++
	case event.KindThreadBlock:
		n.Blocks++
		n.Runs++
		n.RunTotal += e.Arg
	case event.KindNone, event.KindDispatch, event.KindTimerArm, event.KindTimerStop,
		event.KindNetEnqueue, event.KindNetTransmit, event.KindNetDeliver,
		event.KindNetDrop, event.KindNetFault, event.KindNetHop,
		event.KindIntervalClose, event.KindNoticeIn,
		event.KindLockForward, event.KindLockReturn,
		event.KindPfThrottle, event.KindGCBegin, event.KindThreadResume:
		// No counter derives from these kinds. Listing them (rather than
		// relying on fallthrough) keeps the dispatch total, so adding a
		// kind forces a decision about whether it is counted.
	default:
		panic(fmt.Sprintf("stats: Collector: unhandled event kind %d", uint8(e.Kind)))
	}
}
