package pagemem

import (
	"math/rand"
	"testing"
)

// benchPages builds a twin/current pair with a given modification pattern.
//
//	"unchanged": identical pages (the common validation case)
//	"sparse":    32 short scattered runs (typical pointer/scalar updates)
//	"dense":     every other 8-byte word modified (worst-case fragmentation)
//	"full":      the whole page rewritten (bulk producer)
func benchPages(pattern string) (twin, cur []byte) {
	rng := rand.New(rand.NewSource(42))
	twin = make([]byte, PageSize)
	rng.Read(twin)
	cur = make([]byte, PageSize)
	copy(cur, twin)
	switch pattern {
	case "unchanged":
	case "sparse":
		for i := 0; i < 32; i++ {
			off := rng.Intn(PageSize - 16)
			for j := 0; j < 4+rng.Intn(12); j++ {
				cur[off+j] ^= 0xFF
			}
		}
	case "dense":
		for off := 0; off < PageSize; off += 16 {
			for j := 0; j < 8; j++ {
				cur[off+j] ^= 0xFF
			}
		}
	case "full":
		for i := range cur {
			cur[i] ^= 0xFF
		}
	default:
		panic("unknown pattern " + pattern)
	}
	return twin, cur
}

func BenchmarkMakeDiff(b *testing.B) {
	for _, pattern := range []string{"unchanged", "sparse", "dense", "full"} {
		b.Run(pattern, func(b *testing.B) {
			twin, cur := benchPages(pattern)
			b.SetBytes(PageSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MakeDiff(0, twin, cur)
			}
		})
	}
}

func BenchmarkDiffApply(b *testing.B) {
	for _, pattern := range []string{"sparse", "dense", "full"} {
		b.Run(pattern, func(b *testing.B) {
			twin, cur := benchPages(pattern)
			d := MakeDiff(0, twin, cur)
			buf := make([]byte, PageSize)
			copy(buf, twin)
			b.SetBytes(int64(d.DataBytes()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Apply(buf)
			}
		})
	}
}

// BenchmarkTwinCycle measures the MakeTwin/MakeDiff/DropTwin cycle the
// protocol performs for every write interval, where the twin free list and
// slab allocator matter.
func BenchmarkTwinCycle(b *testing.B) {
	s := NewStore()
	f := s.Frame(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MakeTwin(1)
		f[i&(PageSize-1)] ^= 0xFF
		MakeDiff(1, s.Twin(1), f)
		s.DropTwin(1)
	}
}

// TestMakeDiffAllocs locks in the pooling win: an unchanged page must not
// allocate at all, and a diffed page must allocate exactly three times (the
// Diff header, the run headers, and their shared data buffer), no matter
// how many runs it has.
func TestMakeDiffAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items; counts not meaningful")
	}
	twinU, curU := benchPages("unchanged")
	if got := testing.AllocsPerRun(100, func() { MakeDiff(0, twinU, curU) }); got != 0 {
		t.Errorf("MakeDiff(unchanged) allocates %.1f times per call, want 0", got)
	}
	// Warm the scratch pool so the measurement sees the steady state.
	twinD, curD := benchPages("dense")
	MakeDiff(0, twinD, curD)
	for _, pattern := range []string{"sparse", "dense", "full"} {
		twin, cur := benchPages(pattern)
		got := testing.AllocsPerRun(100, func() {
			if MakeDiff(0, twin, cur) == nil {
				t.Fatal("nil diff for a modified page")
			}
		})
		// GC pressure can evict the scratch from the sync.Pool
		// mid-measurement, so allow a little slack over the exact
		// steady-state count of 3.
		if got > 4 {
			t.Errorf("MakeDiff(%s) allocates %.1f times per call, want <= 4", pattern, got)
		}
	}
}

// TestTwinCycleAllocs: after the first cycle, twinning reuses retired
// buffers and must not allocate.
func TestTwinCycleAllocs(t *testing.T) {
	s := NewStore()
	f := s.Frame(1)
	s.MakeTwin(1)
	s.DropTwin(1)
	got := testing.AllocsPerRun(100, func() {
		s.MakeTwin(1)
		f[0] ^= 1
		s.DropTwin(1)
	})
	if got != 0 {
		t.Errorf("twin cycle allocates %.1f times per run, want 0", got)
	}
}
