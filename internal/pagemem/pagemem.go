// Package pagemem implements the paged shared address space that the DSM
// protocol manages: page/address arithmetic, per-node page frames, twin
// copies for the multiple-writer protocol, run-length-encoded diffs, and a
// bump allocator for the shared heap.
//
// TreadMarks detects modifications by write-protecting pages and comparing
// a dirty page against a pristine "twin"; the diff (the RLE encoding of the
// changed bytes) is what travels on the network. This package reproduces
// those data structures exactly; only the fault detection mechanism (VM
// protection in the paper, explicit access checks here) differs.
package pagemem

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// PageSize is the virtual-memory page size (4 KB, as on the paper's AIX
// RS/6000 machines).
const (
	PageSize  = 4096
	PageShift = 12
)

// Addr is an address in the shared virtual address space.
type Addr uint64

// PageID identifies a shared page.
type PageID uint32

// PageOf returns the page containing a.
func PageOf(a Addr) PageID { return PageID(a >> PageShift) }

// OffsetOf returns a's offset within its page.
func OffsetOf(a Addr) int { return int(a & (PageSize - 1)) }

// Base returns the first address of page p.
func (p PageID) Base() Addr { return Addr(p) << PageShift }

// A Run is one contiguous range of modified bytes within a page.
type Run struct {
	Offset uint16
	Data   []byte
}

// Diff is the set of modifications made to one page, relative to its twin.
type Diff struct {
	Page PageID
	Runs []Run
}

// runHeaderSize is the wire overhead per run (offset + length).
const runHeaderSize = 4

// wordSize is the diff scanner's comparison granularity: 8 bytes compared
// per load instead of 1.
const wordSize = 8

// runBound is one run's [start, end) byte range, recorded during the scan
// pass before any allocation happens.
type runBound struct{ start, end int }

// diffScratch holds the reusable per-call state of MakeDiff so that
// steady-state diffing allocates only the returned Diff itself. A sync.Pool
// keeps the scratch safe to share between concurrently running simulations.
type diffScratch struct{ bounds []runBound }

var diffPool = sync.Pool{New: func() any { return new(diffScratch) }}

// nextDiff returns the index of the first byte >= i at which twin and
// current differ, or PageSize if the rest of the page matches. Equal
// stretches are skipped a word at a time.
func nextDiff(twin, current []byte, i int) int {
	for i+wordSize <= PageSize {
		x := binary.LittleEndian.Uint64(twin[i:]) ^ binary.LittleEndian.Uint64(current[i:])
		if x != 0 {
			return i + bits.TrailingZeros64(x)>>3
		}
		i += wordSize
	}
	for i < PageSize && twin[i] == current[i] {
		i++
	}
	return i
}

// nextMatch returns the index of the first byte >= i at which twin and
// current agree, or PageSize if the rest of the page differs. Fully
// differing stretches are skipped a word at a time; a zero byte in the XOR
// (an equal byte) is located with the SWAR zero-byte trick.
func nextMatch(twin, current []byte, i int) int {
	const (
		lo = 0x0101010101010101
		hi = 0x8080808080808080
	)
	for i+wordSize <= PageSize {
		x := binary.LittleEndian.Uint64(twin[i:]) ^ binary.LittleEndian.Uint64(current[i:])
		if zero := (x - lo) &^ x & hi; zero != 0 {
			return i + bits.TrailingZeros64(zero)>>3
		}
		i += wordSize
	}
	for i < PageSize && twin[i] != current[i] {
		i++
	}
	return i
}

// MakeDiff compares a modified page against its twin and returns the RLE
// diff, or nil if the page is unchanged. Both slices must be PageSize long.
//
// The comparison runs a word (8 bytes) at a time, and the diff's runs share
// one backing buffer sized during the scan pass, so a call performs at most
// two allocations regardless of how fragmented the modifications are (and
// none when the page is unchanged).
func MakeDiff(page PageID, twin, current []byte) *Diff {
	if len(twin) != PageSize || len(current) != PageSize {
		panic(fmt.Sprintf("pagemem: MakeDiff on %d/%d byte buffers", len(twin), len(current)))
	}
	sc := diffPool.Get().(*diffScratch)
	bounds := sc.bounds[:0]
	total := 0
	for i := nextDiff(twin, current, 0); i < PageSize; {
		end := nextMatch(twin, current, i)
		bounds = append(bounds, runBound{i, end})
		total += end - i
		i = nextDiff(twin, current, end)
	}
	sc.bounds = bounds
	if len(bounds) == 0 {
		diffPool.Put(sc)
		return nil
	}
	runs := make([]Run, len(bounds))
	data := make([]byte, total)
	off := 0
	for j, b := range bounds {
		n := b.end - b.start
		d := data[off : off+n : off+n]
		copy(d, current[b.start:b.end])
		runs[j] = Run{Offset: uint16(b.start), Data: d}
		off += n
	}
	diffPool.Put(sc)
	return &Diff{Page: page, Runs: runs}
}

// Apply writes the diff's runs into page contents buf (PageSize long).
func (d *Diff) Apply(buf []byte) {
	if len(buf) != PageSize {
		panic("pagemem: Apply on short buffer")
	}
	for _, r := range d.Runs {
		copy(buf[r.Offset:int(r.Offset)+len(r.Data)], r.Data)
	}
}

// WireSize returns the number of bytes the diff occupies in a message.
func (d *Diff) WireSize() int {
	if d == nil {
		return 0
	}
	n := 8 // page id + run count
	for _, r := range d.Runs {
		n += runHeaderSize + len(r.Data)
	}
	return n
}

// DataBytes returns the number of modified bytes the diff carries.
func (d *Diff) DataBytes() int {
	n := 0
	for _, r := range d.Runs {
		n += len(r.Data)
	}
	return n
}

// Store holds one node's local copies of shared pages and their twins.
// Frames are allocated lazily and are zero-filled, matching the convention
// that the shared heap starts zeroed everywhere.
//
// Page-sized buffers are carved out of multi-page slabs rather than
// allocated one by one, and twin buffers retired by DropTwin are kept on a
// free list for the next MakeTwin, so steady-state twinning does not
// allocate. A Store belongs to one simulated node and is not safe for
// concurrent use; concurrently running simulations each have their own
// stores.
type Store struct {
	frames map[PageID][]byte
	twins  map[PageID][]byte

	slab      []byte   // remainder of the current zeroed allocation slab
	freeTwins [][]byte // retired twin buffers, reused by MakeTwin
}

// slabPages is how many page frames one allocation slab provides.
const slabPages = 64

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{frames: make(map[PageID][]byte), twins: make(map[PageID][]byte)}
}

// newPageBuf carves one zeroed page-sized buffer out of the current slab.
func (s *Store) newPageBuf() []byte {
	if len(s.slab) < PageSize {
		s.slab = make([]byte, slabPages*PageSize)
	}
	b := s.slab[:PageSize:PageSize]
	s.slab = s.slab[PageSize:]
	return b
}

// Frame returns the local copy of page p, allocating a zeroed frame on
// first touch.
func (s *Store) Frame(p PageID) []byte {
	f, ok := s.frames[p]
	if !ok {
		f = s.newPageBuf()
		s.frames[p] = f
	}
	return f
}

// HasFrame reports whether a frame for p has been materialized.
func (s *Store) HasFrame(p PageID) bool { _, ok := s.frames[p]; return ok }

// MakeTwin snapshots page p's current contents as its twin. It panics if a
// twin already exists: the protocol must discard the old twin first.
func (s *Store) MakeTwin(p PageID) {
	if _, ok := s.twins[p]; ok {
		panic(fmt.Sprintf("pagemem: twin for page %d already exists", p))
	}
	var twin []byte
	if n := len(s.freeTwins); n > 0 {
		twin = s.freeTwins[n-1]
		s.freeTwins = s.freeTwins[:n-1]
	} else {
		twin = s.newPageBuf()
	}
	copy(twin, s.Frame(p)) // overwrites the whole buffer; no zeroing needed
	s.twins[p] = twin
}

// Twin returns page p's twin, or nil if none exists. The returned slice is
// only valid until DropTwin(p): the buffer is then recycled for a future
// twin.
func (s *Store) Twin(p PageID) []byte { return s.twins[p] }

// DropTwin discards page p's twin and recycles its buffer.
func (s *Store) DropTwin(p PageID) {
	if twin, ok := s.twins[p]; ok {
		s.freeTwins = append(s.freeTwins, twin)
		delete(s.twins, p)
	}
}

// TwinCount returns the number of live twins (diagnostics / GC accounting).
func (s *Store) TwinCount() int { return len(s.twins) }

// Allocator is a bump allocator for the shared heap. All nodes run the same
// allocation sequence deterministically, so addresses agree without
// communication (the applications allocate in their init phase, as the
// SPLASH-2 programs do).
type Allocator struct {
	next Addr
}

// NewAllocator returns an allocator starting at page 1 (address 0 is kept
// unmapped to catch zero-address bugs).
func NewAllocator() *Allocator { return &Allocator{next: PageSize} }

// Alloc returns a size-byte region aligned to align (which must be a power
// of two). Scalar types must use their natural alignment so no scalar ever
// straddles a page boundary.
func (a *Allocator) Alloc(size int, align int) Addr {
	if size <= 0 {
		panic("pagemem: Alloc of non-positive size")
	}
	if align <= 0 || align&(align-1) != 0 {
		panic("pagemem: alignment must be a positive power of two")
	}
	mask := Addr(align - 1)
	a.next = (a.next + mask) &^ mask
	addr := a.next
	a.next += Addr(size)
	return addr
}

// AllocPages returns a page-aligned region covering n whole pages.
func (a *Allocator) AllocPages(n int) Addr {
	return a.Alloc(n*PageSize, PageSize)
}

// Brk returns the current top of the shared heap.
func (a *Allocator) Brk() Addr { return a.next }

// Typed accessors over raw page frames. The DSM env layer resolves the
// frame and offset; these helpers only do the encoding. Little-endian,
// matching Go's x86/arm targets, but any fixed choice works since all
// simulated nodes share it.

// GetU64 reads a uint64 at off.
func GetU64(frame []byte, off int) uint64 { return binary.LittleEndian.Uint64(frame[off:]) }

// PutU64 writes a uint64 at off.
func PutU64(frame []byte, off int, v uint64) { binary.LittleEndian.PutUint64(frame[off:], v) }

// GetU32 reads a uint32 at off.
func GetU32(frame []byte, off int) uint32 { return binary.LittleEndian.Uint32(frame[off:]) }

// PutU32 writes a uint32 at off.
func PutU32(frame []byte, off int, v uint32) { binary.LittleEndian.PutUint32(frame[off:], v) }

// GetF64 reads a float64 at off.
func GetF64(frame []byte, off int) float64 { return math.Float64frombits(GetU64(frame, off)) }

// PutF64 writes a float64 at off.
func PutF64(frame []byte, off int, v float64) { PutU64(frame, off, math.Float64bits(v)) }
