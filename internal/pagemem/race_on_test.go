//go:build race

package pagemem

const raceEnabled = true
