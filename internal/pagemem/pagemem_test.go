package pagemem

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddrArithmetic(t *testing.T) {
	a := Addr(3*PageSize + 17)
	if PageOf(a) != 3 {
		t.Errorf("PageOf = %d, want 3", PageOf(a))
	}
	if OffsetOf(a) != 17 {
		t.Errorf("OffsetOf = %d, want 17", OffsetOf(a))
	}
	if PageID(3).Base() != 3*PageSize {
		t.Errorf("Base = %d", PageID(3).Base())
	}
}

func TestMakeDiffNilWhenUnchanged(t *testing.T) {
	twin := make([]byte, PageSize)
	cur := make([]byte, PageSize)
	if d := MakeDiff(0, twin, cur); d != nil {
		t.Fatalf("diff of identical pages = %+v, want nil", d)
	}
}

func TestDiffSingleRun(t *testing.T) {
	twin := make([]byte, PageSize)
	cur := make([]byte, PageSize)
	copy(cur[100:], []byte{1, 2, 3})
	d := MakeDiff(7, twin, cur)
	if d == nil || len(d.Runs) != 1 {
		t.Fatalf("diff = %+v", d)
	}
	if d.Page != 7 || d.Runs[0].Offset != 100 || !bytes.Equal(d.Runs[0].Data, []byte{1, 2, 3}) {
		t.Fatalf("diff = %+v", d)
	}
	if d.DataBytes() != 3 {
		t.Errorf("DataBytes = %d", d.DataBytes())
	}
	if d.WireSize() != 8+4+3 {
		t.Errorf("WireSize = %d", d.WireSize())
	}
}

func TestDiffMultipleRuns(t *testing.T) {
	twin := make([]byte, PageSize)
	cur := make([]byte, PageSize)
	cur[0] = 9
	cur[500] = 1
	cur[501] = 2
	cur[PageSize-1] = 5
	d := MakeDiff(0, twin, cur)
	if len(d.Runs) != 3 {
		t.Fatalf("runs = %d, want 3: %+v", len(d.Runs), d.Runs)
	}
}

// Property: applying a diff to a copy of the twin reproduces the modified
// page exactly, for random modifications.
func TestDiffRoundTripProperty(t *testing.T) {
	f := func(seed int64, nMods uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		twin := make([]byte, PageSize)
		rng.Read(twin)
		cur := make([]byte, PageSize)
		copy(cur, twin)
		for i := 0; i < int(nMods); i++ {
			cur[rng.Intn(PageSize)] = byte(rng.Int())
		}
		d := MakeDiff(3, twin, cur)
		rebuilt := make([]byte, PageSize)
		copy(rebuilt, twin)
		if d != nil {
			d.Apply(rebuilt)
		}
		return bytes.Equal(rebuilt, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: diffs from disjoint writers commute — applying them in either
// order yields the same page (the multiple-writer protocol's requirement
// in the absence of true sharing).
func TestDisjointDiffsCommuteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := make([]byte, PageSize)
		rng.Read(base)

		curA := append([]byte(nil), base...)
		curB := append([]byte(nil), base...)
		// Writer A modifies the first half, writer B the second half.
		for i := 0; i < 50; i++ {
			curA[rng.Intn(PageSize/2)] ^= 0xFF
			curB[PageSize/2+rng.Intn(PageSize/2)] ^= 0xFF
		}
		dA := MakeDiff(0, base, curA)
		dB := MakeDiff(0, base, curB)

		ab := append([]byte(nil), base...)
		dA.Apply(ab)
		dB.Apply(ab)
		ba := append([]byte(nil), base...)
		dB.Apply(ba)
		dA.Apply(ba)
		return bytes.Equal(ab, ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// makeDiffRef is the original byte-at-a-time MakeDiff, kept as the
// reference implementation for the word-wise scanner.
func makeDiffRef(page PageID, twin, current []byte) *Diff {
	var runs []Run
	i := 0
	for i < PageSize {
		if twin[i] == current[i] {
			i++
			continue
		}
		start := i
		for i < PageSize && twin[i] != current[i] {
			i++
		}
		data := make([]byte, i-start)
		copy(data, current[start:i])
		runs = append(runs, Run{Offset: uint16(start), Data: data})
	}
	if runs == nil {
		return nil
	}
	return &Diff{Page: page, Runs: runs}
}

func diffsEqual(a, b *Diff) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Page != b.Page || len(a.Runs) != len(b.Runs) {
		return false
	}
	for i := range a.Runs {
		if a.Runs[i].Offset != b.Runs[i].Offset ||
			!bytes.Equal(a.Runs[i].Data, b.Runs[i].Data) {
			return false
		}
	}
	return true
}

// Property: the word-wise MakeDiff produces exactly the diff the byte-wise
// reference produces, on random twin/page pairs whose modified runs
// straddle 8-byte word boundaries and the page edges.
func TestMakeDiffMatchesByteReference(t *testing.T) {
	f := func(seed int64, nRuns uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		twin := make([]byte, PageSize)
		rng.Read(twin)
		cur := make([]byte, PageSize)
		copy(cur, twin)
		for i := 0; i < int(nRuns%24); i++ {
			// Random run lengths around wordSize so many runs start or end
			// mid-word; a random XOR mask keeps some bytes equal inside the
			// dirtied range, splitting runs at arbitrary offsets.
			start := rng.Intn(PageSize)
			n := 1 + rng.Intn(3*wordSize)
			if start+n > PageSize {
				n = PageSize - start
			}
			for j := start; j < start+n; j++ {
				cur[j] ^= byte(1 + rng.Intn(255))
			}
		}
		// Explicitly exercise both page edges half the time.
		if seed%2 == 0 {
			cur[0] ^= 0xA5
			cur[PageSize-1] ^= 0x5A
		}
		got := MakeDiff(9, twin, cur)
		want := makeDiffRef(9, twin, cur)
		return diffsEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Directed edge cases for the word-wise scanner: runs that start or stop at
// every offset within a word, at the very first and last bytes of the page,
// and a fully modified page.
func TestMakeDiffWordBoundaryEdges(t *testing.T) {
	check := func(name string, twin, cur []byte) {
		t.Helper()
		if got, want := MakeDiff(1, twin, cur), makeDiffRef(1, twin, cur); !diffsEqual(got, want) {
			t.Errorf("%s: word-wise diff %+v != reference %+v", name, got, want)
		}
	}
	for off := 0; off < 2*wordSize; off++ {
		for n := 1; n <= 2*wordSize; n++ {
			twin := make([]byte, PageSize)
			cur := make([]byte, PageSize)
			for j := off; j < off+n; j++ {
				cur[j] = 0xFF
			}
			check(fmt.Sprintf("run [%d,%d)", off, off+n), twin, cur)
		}
	}
	twin := make([]byte, PageSize)
	cur := make([]byte, PageSize)
	cur[PageSize-1] = 1
	check("last byte", twin, cur)
	cur[PageSize-1] = 0
	cur[0] = 1
	check("first byte", twin, cur)
	for i := range cur {
		cur[i] = 0xEE
	}
	check("full page", twin, cur)
}

func TestStoreFrameLazyZero(t *testing.T) {
	s := NewStore()
	if s.HasFrame(5) {
		t.Fatal("frame exists before touch")
	}
	f := s.Frame(5)
	if len(f) != PageSize {
		t.Fatalf("frame len = %d", len(f))
	}
	for _, b := range f {
		if b != 0 {
			t.Fatal("frame not zeroed")
		}
	}
	if !s.HasFrame(5) {
		t.Fatal("frame missing after touch")
	}
	f[0] = 42
	if s.Frame(5)[0] != 42 {
		t.Fatal("frame not stable across calls")
	}
}

func TestTwinLifecycle(t *testing.T) {
	s := NewStore()
	f := s.Frame(1)
	f[10] = 7
	s.MakeTwin(1)
	if s.TwinCount() != 1 {
		t.Fatalf("twin count = %d", s.TwinCount())
	}
	f[10] = 99
	if s.Twin(1)[10] != 7 {
		t.Fatal("twin mutated along with frame")
	}
	d := MakeDiff(1, s.Twin(1), f)
	if d == nil || d.Runs[0].Offset != 10 {
		t.Fatalf("diff = %+v", d)
	}
	s.DropTwin(1)
	if s.Twin(1) != nil || s.TwinCount() != 0 {
		t.Fatal("twin not dropped")
	}
}

func TestDoubleTwinPanics(t *testing.T) {
	s := NewStore()
	s.MakeTwin(1)
	defer func() {
		if recover() == nil {
			t.Fatal("second MakeTwin did not panic")
		}
	}()
	s.MakeTwin(1)
}

func TestAllocatorAlignment(t *testing.T) {
	a := NewAllocator()
	x := a.Alloc(3, 1)
	y := a.Alloc(8, 8)
	if y%8 != 0 {
		t.Fatalf("y = %d not 8-aligned", y)
	}
	if y <= x {
		t.Fatalf("allocations overlap: x=%d y=%d", x, y)
	}
	p := a.AllocPages(2)
	if p%PageSize != 0 {
		t.Fatalf("page alloc %d not page aligned", p)
	}
	if a.Brk() != p+2*PageSize {
		t.Fatalf("brk = %d", a.Brk())
	}
}

func TestAllocatorDeterminism(t *testing.T) {
	run := func() []Addr {
		a := NewAllocator()
		var out []Addr
		out = append(out, a.Alloc(100, 8), a.AllocPages(3), a.Alloc(16, 16))
		return out
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("allocator nondeterministic: %v vs %v", x, y)
		}
	}
}

func TestTypedAccessors(t *testing.T) {
	f := make([]byte, PageSize)
	PutU64(f, 0, 0xDEADBEEF12345678)
	if GetU64(f, 0) != 0xDEADBEEF12345678 {
		t.Fatal("u64 round trip failed")
	}
	PutU32(f, 8, 77)
	if GetU32(f, 8) != 77 {
		t.Fatal("u32 round trip failed")
	}
	PutF64(f, 16, -3.25)
	if GetF64(f, 16) != -3.25 {
		t.Fatal("f64 round trip failed")
	}
}

func TestScalarPropertyRoundTrip(t *testing.T) {
	f := func(v float64, off uint16) bool {
		frame := make([]byte, PageSize)
		o := int(off) % (PageSize - 8)
		PutF64(frame, o, v)
		got := GetF64(frame, o)
		return got == v || (v != v && got != got) // NaN-safe
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
