//go:build !race

package pagemem

// raceEnabled reports whether the race detector is on. Allocation
// assertions are skipped under -race: the detector makes sync.Pool drop
// items randomly, so AllocsPerRun is not meaningful there.
const raceEnabled = false
