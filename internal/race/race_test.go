package race

import (
	"strings"
	"testing"
)

func newTest(threads int, g Granularity) (*Detector, *int64) {
	now := new(int64)
	d := NewDetector(Config{
		Threads:        threads,
		ThreadsPerProc: 1,
		Granularity:    g,
		Now:            func() int64 { return *now },
	})
	return d, now
}

// catchRace runs fn and returns the *RaceError it panics with, or nil.
func catchRace(t *testing.T, fn func()) (re *RaceError) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			var ok bool
			if re, ok = r.(*RaceError); !ok {
				t.Fatalf("panicked with %v, want *RaceError", r)
			}
		}
	}()
	fn()
	return nil
}

func TestWriteWriteRace(t *testing.T) {
	d, _ := newTest(2, Word)
	d.Access(0, 0x1000, true)
	re := catchRace(t, func() { d.Access(1, 0x1000, true) })
	if re == nil {
		t.Fatal("unsynchronized write/write not reported")
	}
	if !re.Prev.Write || !re.Curr.Write || re.Prev.Thread != 0 || re.Curr.Thread != 1 {
		t.Fatalf("sites = %+v / %+v", re.Prev, re.Curr)
	}
	if re.Addr != 0x1000 {
		t.Fatalf("Addr = %#x, want 0x1000", re.Addr)
	}
}

func TestWriteReadRace(t *testing.T) {
	d, now := newTest(2, Word)
	d.Access(0, 0x2000, true)
	*now = 50
	re := catchRace(t, func() { d.Access(1, 0x2000, false) })
	if re == nil {
		t.Fatal("unsynchronized write/read not reported")
	}
	if !re.Prev.Write || re.Curr.Write {
		t.Fatalf("sites = %+v / %+v", re.Prev, re.Curr)
	}
	if re.Prev.At != 0 || re.Curr.At != 50 {
		t.Fatalf("times = %d / %d, want 0 / 50", re.Prev.At, re.Curr.At)
	}
}

func TestReadWriteRaceExclusive(t *testing.T) {
	d, _ := newTest(2, Word)
	d.Access(0, 0x3000, false)
	re := catchRace(t, func() { d.Access(1, 0x3000, true) })
	if re == nil || re.Prev.Write || !re.Curr.Write {
		t.Fatalf("re = %+v", re)
	}
}

func TestLockOrdering(t *testing.T) {
	d, _ := newTest(2, Word)
	d.Access(0, 0x1000, true)
	d.Release(0, 7)
	d.Acquire(1, 7)
	if re := catchRace(t, func() { d.Access(1, 0x1000, true) }); re != nil {
		t.Fatalf("release→acquire edge not honored: %v", re)
	}
}

func TestDistinctLocksDoNotOrder(t *testing.T) {
	d, _ := newTest(2, Word)
	d.Acquire(0, 1)
	d.Access(0, 0x1000, true)
	d.Release(0, 1)
	d.Acquire(1, 2)
	re := catchRace(t, func() { d.Access(1, 0x1000, true) })
	if re == nil {
		t.Fatal("writes under distinct locks must race")
	}
}

func TestBarrierOrdering(t *testing.T) {
	d, _ := newTest(3, Word)
	d.Access(0, 0x1000, true)
	d.BarrierArrive(0)
	d.BarrierArrive(1)
	d.BarrierArrive(2)
	if re := catchRace(t, func() { d.Access(2, 0x1000, false) }); re != nil {
		t.Fatalf("barrier episode cut not honored: %v", re)
	}
	// A second episode must be independent: thread 1's post-barrier write
	// is unordered with thread 2's post-barrier read just above.
	if re := catchRace(t, func() { d.Access(1, 0x1000, true) }); re == nil {
		t.Fatal("post-barrier unsynchronized accesses not reported")
	}
}

func TestBarrierReleasesWhenLastLiveArrives(t *testing.T) {
	d, _ := newTest(2, Word)
	d.Access(1, 0x1000, true)
	d.BarrierArrive(1)
	d.ThreadExit(0) // the barrier now only waits for thread 1
	d.BarrierArrive(1)
	d.BarrierArrive(1) // two more solo episodes must not deadlock the state
}

func TestReadSharedThenOrderedWrite(t *testing.T) {
	d, _ := newTest(3, Word)
	d.Access(0, 0x1000, false)
	d.Access(1, 0x1000, false) // concurrent reads: promoted to read-shared
	d.BarrierArrive(0)
	d.BarrierArrive(1)
	d.BarrierArrive(2)
	if re := catchRace(t, func() { d.Access(2, 0x1000, true) }); re != nil {
		t.Fatalf("write ordered after all shared reads reported: %v", re)
	}
}

func TestReadSharedWriteRace(t *testing.T) {
	d, _ := newTest(3, Word)
	d.Access(0, 0x1000, false)
	d.Access(1, 0x1000, false)
	d.Release(1, 4)
	d.Acquire(2, 4) // ordered after thread 1's read only
	re := catchRace(t, func() { d.Access(2, 0x1000, true) })
	if re == nil {
		t.Fatal("write concurrent with a shared read not reported")
	}
	if re.Prev.Thread != 0 || re.Prev.Write {
		t.Fatalf("prev = %+v, want thread 0's read", re.Prev)
	}
}

func TestExemptSuppressesBothSides(t *testing.T) {
	d, _ := newTest(2, Word)
	d.ExemptPush(0)
	d.Access(0, 0x1000, true)
	d.ExemptPop(0)
	// Thread 1 is not inside an Exempt region, but the granule was audited.
	if re := catchRace(t, func() { d.Access(1, 0x1000, true) }); re != nil {
		t.Fatalf("exempt granule reported: %v", re)
	}
	// Other granules stay checked.
	d.Access(0, 0x2000, true)
	if re := catchRace(t, func() { d.Access(1, 0x2000, true) }); re == nil {
		t.Fatal("non-exempt granule not reported")
	}
}

func TestWordGranularityDistinguishesWords(t *testing.T) {
	d, _ := newTest(2, Word)
	d.Access(0, 0x1000, true)
	if re := catchRace(t, func() { d.Access(1, 0x1008, true) }); re != nil {
		t.Fatalf("distinct words conflated: %v", re)
	}
}

func TestPageGranularityConflatesWords(t *testing.T) {
	d, _ := newTest(2, Page)
	d.Access(0, 0x1000, true)
	re := catchRace(t, func() { d.Access(1, 0x1008, true) })
	if re == nil {
		t.Fatal("same-page accesses must conflict at page granularity")
	}
	if re.Addr != 0x1000 || re.Page != 1 {
		t.Fatalf("Addr=%#x Page=%d, want page base 0x1000, page 1", re.Addr, re.Page)
	}
}

func TestParseGranularity(t *testing.T) {
	for s, want := range map[string]Granularity{"": Word, "word": Word, "page": Page} {
		g, err := ParseGranularity(s)
		if err != nil || g != want {
			t.Errorf("ParseGranularity(%q) = %v, %v", s, g, err)
		}
	}
	if _, err := ParseGranularity("cacheline"); err == nil {
		t.Error("ParseGranularity(cacheline) did not fail")
	}
}

func TestErrorRendering(t *testing.T) {
	d, now := newTest(4, Word)
	*now = 100
	d.Access(2, 0x5008, true)
	*now = 250
	re := catchRace(t, func() { d.Access(3, 0x5008, false) })
	if re == nil {
		t.Fatal("no race reported")
	}
	msg := re.Error()
	for _, want := range []string{
		"data race detected", "0x5008", "page 5",
		"write by thread 2", "t=100ns",
		"read  by thread 3", "t=250ns",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() missing %q:\n%s", want, msg)
		}
	}
	if got := re.Error(); got != msg {
		t.Error("Error() is not stable across calls")
	}
}
