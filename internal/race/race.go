// Package race is a deterministic happens-before data-race detector for the
// simulated machine. The DSM protocols the repo compares (LRC, ERC, HLRC)
// are only correct for data-race-free programs — release consistency may
// legally return stale data whenever two accesses are not ordered by
// Lock/Unlock/Barrier — so a racy application silently produces
// protocol-dependent results and poisons every cross-protocol comparison.
// The detector makes that contract checkable: core calls in at the machine's
// choke points (Env.access, Lock/Unlock, Barrier, thread exit) and the first
// pair of unordered conflicting accesses panics with a structured
// *RaceError naming both sites.
//
// The algorithm is FastTrack-style (Flanagan & Freund, PLDI 2009): each
// thread carries a vector clock; each tracked location carries the last
// write as a single epoch (clock, thread) and the reads as an epoch that is
// promoted to a full read vector clock only once two unordered reads are
// observed. Happens-before edges come from the machine's synchronization
// operations only:
//
//   - Unlock(l) → next Lock(l): the releaser's vector clock is stored per
//     lock ID and joined into the next acquirer (release→acquire order).
//   - Barrier: an episode cut — when the last live thread arrives, the join
//     of all arrivers' clocks is redistributed to every live thread.
//   - Thread start/exit: all threads are created by System.Run before any
//     shared access, and the host inspects memory only after Run returns,
//     so both edges are implicit; ThreadExit just removes the thread from
//     the barrier's live count.
//
// Because the simulator is fully deterministic and the detector is a
// synchronous hook (it emits no events, charges no simulated time, and
// allocates no shared state observed by the model), detection is exact and
// replayable: the same configuration either always reports the same first
// race, byte for byte, or never reports one. When Config.RaceCheck is off
// the detector is not constructed at all and the default path is untouched.
package race

import (
	"fmt"

	"godsm/internal/pagemem"
)

// Granularity selects the conflict unit the detector tracks.
type Granularity int

const (
	// Word tracks 8-byte words — exact for the repo's apps, which access
	// shared memory exclusively through the Env's 8-byte (and 4-byte,
	// word-aligned) accessors.
	Word Granularity = iota
	// Page tracks whole coherence pages. Coarse (false sharing within a
	// page reports as a race) but mirrors the protocol's own conflict
	// resolution unit; useful to find the access pairs that force diffs.
	Page
)

func (g Granularity) String() string {
	switch g {
	case Word:
		return "word"
	case Page:
		return "page"
	}
	panic(fmt.Sprintf("race: unknown granularity %d", int(g)))
}

func (g Granularity) shift() uint {
	if g == Page {
		return pagemem.PageShift
	}
	return 3 // 8-byte words
}

// ParseGranularity maps the user-facing spelling to a Granularity. The
// empty string selects the default (word).
func ParseGranularity(s string) (Granularity, error) {
	switch s {
	case "", "word":
		return Word, nil
	case "page":
		return Page, nil
	}
	return 0, fmt.Errorf("unknown race granularity %q (want word or page)", s)
}

// Config sizes a Detector for one simulated machine.
type Config struct {
	Threads        int         // total simulated threads, IDs 0..Threads-1
	ThreadsPerProc int         // for reporting a site's processor
	Granularity    Granularity // conflict unit
	Now            func() int64
}

// vclock is a fixed-width vector clock, indexed by thread ID.
type vclock []uint64

func (v vclock) join(o vclock) {
	for i, c := range o {
		if c > v[i] {
			v[i] = c
		}
	}
}

// epoch packs one (clock, thread) scalar timestamp. The zero epoch is the
// bottom element ⊥ (no access recorded): thread clocks start at 1, so a
// real epoch is never zero.
type epoch uint64

const epochTIDBits = 16

func makeEpoch(tid int, clk uint64) epoch {
	return epoch(clk<<epochTIDBits | uint64(tid))
}

func (e epoch) tid() int      { return int(e & (1<<epochTIDBits - 1)) }
func (e epoch) clock() uint64 { return uint64(e) >> epochTIDBits }

// ordered reports e ≤ v, i.e. the access at e happens before anything the
// thread owning v does from now on.
func (e epoch) ordered(v vclock) bool { return e.clock() <= v[e.tid()] }

// location is the per-granule shadow state: the last write as an epoch and
// the reads adaptively as either one epoch or, after the first pair of
// concurrent reads, a full vector clock (FastTrack's read-shared state).
// The *At fields remember each recorded access's virtual time purely for
// error reporting.
type location struct {
	w    epoch
	wAt  int64
	r    epoch // last read when rvc == nil; ⊥ if none
	rAt  int64
	rvc  vclock  // read-shared: per-thread last-read clocks (0 = none)
	rAts []int64 // read-shared: per-thread last-read times
	// exempt marks a granule that was touched inside an Exempt region:
	// races on it are audited as benign and never reported.
	exempt bool
}

// Detector holds the happens-before state of one simulated machine. It is
// owned by the kernel's event loop (all calls arrive from simulated-thread
// context, which the kernel serializes), so it needs no locking.
type Detector struct {
	cfg    Config
	shift  uint
	vcs    []vclock // per-thread clocks; vcs[t][t] is t's own epoch clock
	locks  map[int]vclock
	words  map[uint64]*location
	exempt []int // per-thread Exempt nesting depth

	// Barrier episode state: arrivals are joined into barVC; when every
	// live thread has arrived the join is redistributed.
	barVC   vclock
	arrived []bool
	barN    int
	live    int
	exited  []bool
}

// NewDetector returns a detector with every thread at its initial clock.
func NewDetector(cfg Config) *Detector {
	if cfg.Threads <= 0 || cfg.Threads >= 1<<epochTIDBits {
		panic(fmt.Sprintf("race: %d threads out of range", cfg.Threads))
	}
	d := &Detector{
		cfg:     cfg,
		shift:   cfg.Granularity.shift(),
		vcs:     make([]vclock, cfg.Threads),
		locks:   make(map[int]vclock),
		words:   make(map[uint64]*location),
		exempt:  make([]int, cfg.Threads),
		barVC:   make(vclock, cfg.Threads),
		arrived: make([]bool, cfg.Threads),
		live:    cfg.Threads,
		exited:  make([]bool, cfg.Threads),
	}
	for t := range d.vcs {
		d.vcs[t] = make(vclock, cfg.Threads)
		d.vcs[t][t] = 1
	}
	return d
}

func (d *Detector) loc(key uint64) *location {
	s := d.words[key]
	if s == nil {
		s = &location{}
		d.words[key] = s
	}
	return s
}

// Access records a shared-memory access by thread t and panics with a
// *RaceError on the first conflicting unordered pair.
func (d *Detector) Access(t int, addr uint64, write bool) {
	key := addr >> d.shift
	s := d.loc(key)
	ct := d.vcs[t]
	if d.exempt[t] > 0 {
		s.exempt = true
	}
	if write {
		d.write(t, key, s, ct)
	} else {
		d.read(t, key, s, ct)
	}
}

func (d *Detector) read(t int, key uint64, s *location, ct vclock) {
	if s.w != 0 && !s.w.ordered(ct) {
		d.report(key, s, prevWrite(s), Access{Write: false, Thread: t, Clock: ct[t], At: d.cfg.Now()})
	}
	now := d.cfg.Now()
	if s.rvc != nil {
		s.rvc[t] = ct[t]
		s.rAts[t] = now
		return
	}
	if s.r == 0 || s.r.tid() == t || s.r.ordered(ct) {
		// Exclusive read: the previous read (if any) happens before this
		// one, so one epoch keeps representing all reads.
		s.r = makeEpoch(t, ct[t])
		s.rAt = now
		return
	}
	// Two concurrent reads: promote to the read-shared vector clock.
	s.rvc = make(vclock, d.cfg.Threads)
	s.rAts = make([]int64, d.cfg.Threads)
	s.rvc[s.r.tid()] = s.r.clock()
	s.rAts[s.r.tid()] = s.rAt
	s.rvc[t] = ct[t]
	s.rAts[t] = now
	s.r = 0
}

func (d *Detector) write(t int, key uint64, s *location, ct vclock) {
	cur := Access{Write: true, Thread: t, Clock: ct[t], At: d.cfg.Now()}
	if s.w != 0 && !s.w.ordered(ct) {
		d.report(key, s, prevWrite(s), cur)
	}
	if s.rvc == nil {
		if s.r != 0 && !s.r.ordered(ct) {
			d.report(key, s, Access{Write: false, Thread: s.r.tid(), Clock: s.r.clock(), At: s.rAt}, cur)
		}
	} else {
		for u, c := range s.rvc {
			if c != 0 && c > ct[u] {
				d.report(key, s, Access{Write: false, Thread: u, Clock: c, At: s.rAts[u]}, cur)
			}
		}
		// All shared reads are ordered before this write; collapse the
		// read state back to ⊥ (FastTrack's write-shared transition).
		s.rvc, s.rAts = nil, nil
	}
	s.w = makeEpoch(t, ct[t])
	s.wAt = d.cfg.Now()
}

func prevWrite(s *location) Access {
	return Access{Write: true, Thread: s.w.tid(), Clock: s.w.clock(), At: s.wAt}
}

// report panics with a structured *RaceError — unless the granule was ever
// touched inside an Exempt region, in which case the race is audited as
// benign and recording simply continues.
func (d *Detector) report(key uint64, s *location, prev, cur Access) {
	if s.exempt {
		return
	}
	base := key << d.shift
	prev.Proc = prev.Thread / d.cfg.ThreadsPerProc
	cur.Proc = cur.Thread / d.cfg.ThreadsPerProc
	panic(&RaceError{
		Addr:        base,
		Page:        int64(base >> pagemem.PageShift),
		Granularity: d.cfg.Granularity.String(),
		Prev:        prev,
		Curr:        cur,
	})
}

// Acquire records thread t acquiring lock l: the previous releaser's clock
// (if any) is joined into t, creating the release→acquire edge.
func (d *Detector) Acquire(t, l int) {
	if lv := d.locks[l]; lv != nil {
		d.vcs[t].join(lv)
	}
}

// Release records thread t releasing lock l: t's clock is published to the
// lock and t moves to a fresh epoch.
func (d *Detector) Release(t, l int) {
	lv := d.locks[l]
	if lv == nil {
		lv = make(vclock, d.cfg.Threads)
		d.locks[l] = lv
	}
	copy(lv, d.vcs[t])
	d.vcs[t][t]++
}

// BarrierArrive records thread t arriving at the (single, phase-reused)
// barrier. When the last live thread arrives, every live thread's clock
// becomes the join of all arrivals — the episode cut — and each moves to a
// fresh epoch.
func (d *Detector) BarrierArrive(t int) {
	if d.arrived[t] {
		panic(fmt.Sprintf("race: thread %d arrived twice in one barrier episode", t))
	}
	d.arrived[t] = true
	d.barVC.join(d.vcs[t])
	d.barN++
	d.maybeReleaseBarrier()
}

// ThreadExit removes t from the barrier's live count (the simulated barrier
// only waits for live threads). An exited thread's clock is left as is: its
// final accesses stay unordered with respect to everything that does not
// synchronize with them, exactly like the machine.
func (d *Detector) ThreadExit(t int) {
	if d.exited[t] {
		return
	}
	d.exited[t] = true
	d.live--
	d.maybeReleaseBarrier()
}

func (d *Detector) maybeReleaseBarrier() {
	if d.barN == 0 || d.barN < d.live {
		return
	}
	for t := range d.vcs {
		if d.exited[t] {
			continue
		}
		copy(d.vcs[t], d.barVC)
		d.vcs[t][t]++
		d.arrived[t] = false
	}
	for i := range d.barVC {
		d.barVC[i] = 0
	}
	d.barN = 0
}

// ExemptPush enters an audited-benign region for thread t: every granule
// the thread touches until the matching ExemptPop is permanently excluded
// from reporting (on both sides — the exemption travels with the granule,
// not the thread). Regions nest.
func (d *Detector) ExemptPush(t int) { d.exempt[t]++ }

// ExemptPop leaves the innermost Exempt region.
func (d *Detector) ExemptPop(t int) {
	if d.exempt[t] == 0 {
		panic("race: ExemptPop without matching ExemptPush")
	}
	d.exempt[t]--
}
