package race

import (
	"fmt"
	"strings"

	"godsm/internal/event"
)

// Access describes one side of a reported race: what kind of access it was,
// which simulated thread (and its processor) performed it, at what virtual
// time, and the thread's epoch clock when it did.
type Access struct {
	Write  bool
	Thread int
	Proc   int
	Clock  uint64
	At     int64 // virtual time, ns
}

func (a Access) kind() string {
	if a.Write {
		return "write"
	}
	return "read "
}

// RaceError is the panic value raised on the first pair of conflicting,
// happens-before-unordered accesses. It is modeled on proto.InvariantError:
// every field renders deterministically, and once it unwinds through the
// simulation kernel's run loop the bus's recent event history is attached
// (via sim.EventTraceAttacher), so the same seed always produces a
// byte-identical report.
type RaceError struct {
	Addr        uint64 // base address of the conflicting granule
	Page        int64  // page containing Addr
	Granularity string // "word" or "page"
	Prev        Access // the recorded access the new one conflicts with
	Curr        Access // the access that exposed the race

	// Events is the bus's recent event history, oldest first, attached by
	// the kernel's run loop as the panic unwinds.
	Events []event.Event
}

// Error renders both access sites and the event-trace context.
func (e *RaceError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "data race detected: unsynchronized %s/%s of %s 0x%x (page %d)\n",
		strings.TrimSpace(e.Prev.kind()), strings.TrimSpace(e.Curr.kind()), e.Granularity, e.Addr, e.Page)
	fmt.Fprintf(&b, "  prev: %s by thread %d (proc %d) at t=%dns clock=%d\n",
		e.Prev.kind(), e.Prev.Thread, e.Prev.Proc, e.Prev.At, e.Prev.Clock)
	fmt.Fprintf(&b, "  curr: %s by thread %d (proc %d) at t=%dns clock=%d",
		e.Curr.kind(), e.Curr.Thread, e.Curr.Proc, e.Curr.At, e.Curr.Clock)
	fmt.Fprintf(&b, "\n  the accesses are not ordered by any Lock/Unlock, Barrier, or thread start/exit edge")
	if len(e.Events) > 0 {
		fmt.Fprintf(&b, "\n  last %d events:", len(e.Events))
		for _, ev := range e.Events {
			fmt.Fprintf(&b, "\n    %s", ev.String())
		}
	}
	return b.String()
}

// AttachEventTrace implements sim.EventTraceAttacher.
func (e *RaceError) AttachEventTrace(evs []event.Event) {
	if e.Events == nil {
		e.Events = evs
	}
}
