package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"godsm/internal/sim"
)

// Property: per (src,dst) pair, messages are delivered in send order (the
// links are FIFO), regardless of sizes and send times.
func TestFIFOPerPairProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := sim.NewKernel()
		type key struct{ s, d NodeID }
		lastSeq := make(map[key]int)
		ok := true
		n := New(k, 4, testConfig(), func(m *Message) {
			pl := m.Payload.([2]int)
			kk := key{m.Src, m.Dst}
			if pl[0] <= lastSeq[kk] {
				ok = false
			}
			lastSeq[kk] = pl[0]
		})
		sendCount := make(map[key]int)
		for i := 0; i < 60; i++ {
			at := sim.Time(rng.Intn(5000))
			src := NodeID(rng.Intn(4))
			dst := NodeID(rng.Intn(4))
			size := 1 + rng.Intn(3000)
			k.At(at, func() {
				kk := key{src, dst}
				sendCount[kk]++ // per-pair send order, assigned at send time
				n.Send(&Message{Src: src, Dst: dst, Size: size, Reliable: true,
					Payload: [2]int{sendCount[kk], 0}})
			})
		}
		k.Run()
		_ = lastSeq
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: conservation — every reliable message sent is received exactly
// once; unreliable messages are received or counted as dropped.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := testConfig()
		cfg.DropThreshold = sim.Time(1 + rng.Intn(2000))
		k := sim.NewKernel()
		recv := 0
		n := New(k, 3, cfg, func(m *Message) { recv++ })
		sent := 40
		dropped := 0
		k.At(0, func() {
			for i := 0; i < sent; i++ {
				m := &Message{
					Src: NodeID(rng.Intn(3)), Dst: NodeID(rng.Intn(3)),
					Size: 1 + rng.Intn(4000), Reliable: rng.Intn(2) == 0,
				}
				if n.Send(m) < 0 {
					dropped++
				}
			}
		})
		k.Run()
		tot := n.TotalStats()
		return recv+dropped == sent && tot.Dropped == int64(dropped) &&
			tot.MsgsSent == int64(sent) && tot.MsgsRecv == int64(recv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: delivery time is never before send time plus the minimum
// physical path latency.
func TestMinimumLatencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := testConfig()
		k := sim.NewKernel()
		ok := true
		type meta struct {
			sent sim.Time
			size int
		}
		n := New(k, 4, cfg, nil)
		deliver := func(m *Message) {
			md := m.Payload.(meta)
			minLat := cfg.SwitchLatency
			if m.Src != m.Dst {
				ser := sim.Time(float64(md.size) * cfg.NsPerByte)
				minLat = 2*ser + 2*cfg.PropDelay + cfg.SwitchLatency
			}
			if k.Now() < md.sent+minLat {
				ok = false
			}
		}
		n.deliver = deliver
		for i := 0; i < 40; i++ {
			at := sim.Time(rng.Intn(3000))
			size := 1 + rng.Intn(2000)
			src, dst := NodeID(rng.Intn(4)), NodeID(rng.Intn(4))
			k.At(at, func() {
				n.Send(&Message{Src: src, Dst: dst, Size: size, Reliable: true,
					Payload: meta{sent: k.Now(), size: size}})
			})
		}
		k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
