package netsim

import (
	"fmt"

	"godsm/internal/event"
	"godsm/internal/sim"
)

// Fat-tree topology. Nodes hang off leaf switches of the configured radix;
// switches aggregate recursively until one root covers the cluster. A
// message climbs to the lowest common ancestor of source and destination and
// descends, paying serialization on every link it crosses and
// store-and-forward latency in every switch it passes through. Links fatten
// toward the root: a link at level l serializes at base/2^l (fatness 2 per
// level), the classic fat-tree compromise between a skinny tree's root
// bottleneck and a full Clos.
//
// When the cluster fits under one leaf switch (nodes <= radix) every path is
// edge-up, one switch, edge-down — term for term the single-switch timing
// formula — so the degenerate fat tree reproduces single-switch arrival
// times exactly. (The event stream still differs: fat-tree sends emit one
// NetHop per link, which the single switch never does.)
//
// Every directed link tracks its occupancy (messages, busy time, peak
// backlog); Network.LinkLoads surfaces them for the nodescale experiment's
// per-link congestion figures.

// topoLink is one directed link of the fat tree.
type topoLink struct {
	name      string
	idx       int // position in construction order; the id NetHop carries
	level     int // 0 = node<->leaf-switch edge link
	busyUntil sim.Time

	msgs int64
	busy sim.Time
	peak sim.Time
}

// hop is one planned link crossing of a message in flight: when the message
// was ready for the link, when serialization starts (after queueing), and
// when the link drains it.
type hop struct {
	link             *topoLink
	ready, start, en sim.Time
	ser              sim.Time
}

type fatTree struct {
	radix int
	top   int // level of the lowest switch covering the whole cluster

	edgeUp, edgeDown []*topoLink   // per node
	up, down         [][]*topoLink // [level l][switch at level l-1]: link to/from its parent
	links            []*topoLink   // all links, in construction order

	path []hop // reusable scratch; the simulation is single-threaded
}

// switchOf returns the index of the switch at level l covering node i.
func (t *fatTree) switchOf(i, l int) int {
	s := i
	for k := 0; k <= l; k++ {
		s /= t.radix
	}
	return s
}

func newFatTree(nodes, radix int) *fatTree {
	t := &fatTree{radix: radix}
	// Height: the top level is the lowest whose one switch spans all nodes.
	span := radix
	for span < nodes {
		span *= radix
		t.top++
	}
	t.edgeUp = make([]*topoLink, nodes)
	t.edgeDown = make([]*topoLink, nodes)
	for i := 0; i < nodes; i++ {
		t.edgeUp[i] = t.addLink(fmt.Sprintf("edge%d.up", i), 0)
		t.edgeDown[i] = t.addLink(fmt.Sprintf("edge%d.down", i), 0)
	}
	t.up = make([][]*topoLink, t.top+1)
	t.down = make([][]*topoLink, t.top+1)
	nsw := (nodes + radix - 1) / radix // switches at level 0
	for l := 1; l <= t.top; l++ {
		t.up[l] = make([]*topoLink, nsw)
		t.down[l] = make([]*topoLink, nsw)
		for s := 0; s < nsw; s++ {
			t.up[l][s] = t.addLink(fmt.Sprintf("l%d.sw%d.up", l, s), l)
			t.down[l][s] = t.addLink(fmt.Sprintf("l%d.sw%d.down", l, s), l)
		}
		nsw = (nsw + radix - 1) / radix
	}
	return t
}

func (t *fatTree) addLink(name string, level int) *topoLink {
	l := &topoLink{name: name, idx: len(t.links), level: level}
	t.links = append(t.links, l)
	return l
}

func (t *fatTree) loads() []LinkLoad {
	out := make([]LinkLoad, len(t.links))
	for i, l := range t.links {
		out[i] = LinkLoad{Name: l.name, Msgs: l.msgs, Busy: l.busy, Peak: l.peak}
	}
	return out
}

// serLevel is the serialization time of size bytes on a level-l link: links
// double in capacity per level toward the root.
func (n *Network) serLevel(size, level int) sim.Time {
	return sim.Time(float64(size) * n.cfg.NsPerByte / float64(int64(1)<<level))
}

// sendFatTree routes m through the fat tree. It mirrors the single-switch
// Send step for step — same fault-decision order, same statistics — but over
// the multi-link path: plan the whole path first (computing each link's
// queueing without committing it), decide congestion/brown-out/loss exactly
// as the single switch would, then commit occupancy and schedule delivery.
func (n *Network) sendFatTree(m *Message, now sim.Time) sim.Time {
	t := n.topo
	src, dst := &n.nics[m.Src], &n.nics[m.Dst]
	esrc, edst, ekind := int(m.Src), int(m.Dst), uint8(m.Kind)
	f := &n.cfg.Faults

	// Lowest common ancestor level of the two leaf switches.
	anc := 0
	for t.switchOf(int(m.Src), anc) != t.switchOf(int(m.Dst), anc) {
		anc++
	}

	// Assemble the path: edge up, climb to the ancestor, descend, edge down.
	path := t.path[:0]
	path = append(path, hop{link: t.edgeUp[m.Src]})
	for l := 1; l <= anc; l++ {
		path = append(path, hop{link: t.up[l][t.switchOf(int(m.Src), l-1)]})
	}
	for l := anc; l >= 1; l-- {
		path = append(path, hop{link: t.down[l][t.switchOf(int(m.Dst), l-1)]})
	}
	path = append(path, hop{link: t.edgeDown[m.Dst]})
	t.path = path // retain the (possibly regrown) scratch for the next send

	// Plan: walk the path accumulating queueing, store-and-forward latency
	// in each switch, and propagation on the two edge links only — PropDelay
	// models the host adapter/driver/UDP-stack path (see DefaultConfig),
	// which exists at the two endpoint NICs, not on switch-to-switch hops.
	// NIC stall windows likewise apply to the two edge links, keyed by the
	// node whose adapter is wedged — identical to the single switch.
	at := now
	var queueing sim.Time
	for i := range path {
		h := &path[i]
		h.ready = at
		h.ser = n.serLevel(m.Size, h.link.level)
		h.start = max(at, h.link.busyUntil)
		if n.rng != nil && h.link.level == 0 {
			stallNode := m.Src
			if i == len(path)-1 {
				stallNode = m.Dst
			}
			if stalled := f.stallEnd(stallNode, h.start); stalled != h.start {
				h.start = stalled
				n.bus.Emit(event.NetFault(esrc, edst, ekind, event.FaultStall))
			}
		}
		h.en = h.start + h.ser
		queueing += h.start - h.ready
		at = h.en
		if h.link.level == 0 {
			at += n.cfg.PropDelay
		}
		if i < len(path)-1 {
			at += n.cfg.SwitchLatency
		}
	}
	arrive := at

	if !m.Reliable && n.cfg.DropThreshold > 0 && queueing > n.cfg.DropThreshold {
		n.bus.Emit(event.NetDrop(esrc, edst, ekind, m.Size, event.DropCongestion))
		src.stats.Dropped++
		src.stats.BytesDropped += int64(m.Size)
		return -1
	}

	first, last := &path[0], &path[len(path)-1]
	if n.rng != nil {
		// Brown-outs eat the frame while it occupies a faulted edge link.
		if f.brownedOut(m.Src, first.start, first.en) || f.brownedOut(m.Dst, last.start, last.en) {
			n.bus.Emit(event.NetDrop(esrc, edst, ekind, m.Size, event.DropBrownout))
			src.stats.Dropped++
			src.stats.BytesDropped += int64(m.Size)
			return -1
		}
		// Probabilistic loss. The frame still occupied every link it crossed.
		if f.Loss > 0 && n.rng.Float64() < f.Loss {
			t.commit(n, path, esrc, edst, ekind)
			n.bus.Emit(event.NetDrop(esrc, edst, ekind, m.Size, event.DropLoss))
			src.stats.Dropped++
			src.stats.BytesDropped += int64(m.Size)
			return -1
		}
	}

	t.commit(n, path, esrc, edst, ekind)
	dst.stats.MsgsRecv++
	dst.stats.BytesRecv += int64(m.Size)

	if n.rng != nil {
		if f.Reorder > 0 && f.MaxJitter > 0 && n.rng.Float64() < f.Reorder {
			arrive += 1 + n.rng.Int63n(f.MaxJitter)
			n.bus.Emit(event.NetFault(esrc, edst, ekind, event.FaultJitter))
		}
		if f.Dup > 0 && n.rng.Float64() < f.Dup {
			dupAt := arrive + n.cfg.SwitchLatency
			if f.Reorder > 0 && f.MaxJitter > 0 && n.rng.Float64() < f.Reorder {
				dupAt += n.rng.Int63n(f.MaxJitter)
			}
			n.bus.Emit(event.NetFault(esrc, edst, ekind, event.FaultDup))
			src.stats.Duplicated++
			src.stats.BytesDup += int64(m.Size)
			dst.stats.MsgsRecv++
			dst.stats.BytesRecv += int64(m.Size)
			n.deliverAt(dupAt, m)
		}
	}

	n.bus.Emit(event.NetTransmit(esrc, edst, ekind, arrive, queueing))
	n.deliverAt(arrive, m)
	return arrive
}

// commit stamps the planned occupancy onto every link of the path and emits
// one NetHop per crossing. The scratch slice is retained for the next send.
func (t *fatTree) commit(n *Network, path []hop, esrc, edst int, ekind uint8) {
	for i := range path {
		h := &path[i]
		h.link.busyUntil = h.en
		h.link.msgs++
		h.link.busy += h.ser
		if backlog := h.en - h.ready; backlog > h.link.peak {
			h.link.peak = backlog
		}
		n.bus.Emit(event.NetHop(esrc, edst, ekind, h.link.idx, h.start-h.ready))
	}
}
