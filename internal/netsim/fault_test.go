package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"godsm/internal/sim"
)

// faultTrafficResult summarizes one randomized traffic run under a fault plan.
type faultTrafficResult struct {
	sent, recv int64
	arrivals   []sim.Time // delivery times, in delivery order
	stats      LinkStats
}

// runFaultTraffic replays a fixed random traffic pattern (derived from
// trafficSeed) through a network configured with the given fault plan and
// returns what happened.
func runFaultTraffic(trafficSeed int64, plan FaultPlan) faultTrafficResult {
	rng := rand.New(rand.NewSource(trafficSeed))
	cfg := testConfig()
	cfg.DropThreshold = sim.Time(1 + rng.Intn(2000))
	cfg.Faults = plan
	k := sim.NewKernel()
	var res faultTrafficResult
	n := New(k, 4, cfg, func(m *Message) {
		res.recv++
		res.arrivals = append(res.arrivals, k.Now())
	})
	for i := 0; i < 80; i++ {
		at := sim.Time(rng.Intn(6000))
		src, dst := NodeID(rng.Intn(4)), NodeID(rng.Intn(4))
		size := 1 + rng.Intn(4000)
		reliable := rng.Intn(4) != 0
		k.At(at, func() {
			res.sent++
			n.Send(&Message{Src: src, Dst: dst, Size: size, Reliable: reliable})
		})
	}
	k.Run()
	res.stats = n.TotalStats()
	return res
}

// Property: under probabilistic loss and duplication, the counters conserve:
// every message sent is either received, dropped, or received more than once
// via duplication — MsgsRecv + Dropped == MsgsSent + Duplicated, and the
// same for bytes.
func TestFaultConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		plan := FaultPlan{
			Seed:      seed,
			Loss:      0.15,
			Dup:       0.15,
			Reorder:   0.10,
			MaxJitter: 2 * sim.Millisecond,
		}
		res := runFaultTraffic(seed^0x5dee7, plan)
		s := res.stats
		if s.MsgsRecv+s.Dropped != s.MsgsSent+s.Duplicated {
			return false
		}
		if s.BytesRecv+s.BytesDropped != s.BytesSent+s.BytesDup {
			return false
		}
		// The deliver callback and the counters must agree.
		return s.MsgsSent == res.sent && s.MsgsRecv == res.recv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Same fault seed, same traffic: the delivery schedule and every counter are
// identical across runs. A different fault seed perturbs the run.
func TestFaultDeterminism(t *testing.T) {
	plan := FaultPlan{Seed: 42, Loss: 0.2, Dup: 0.1, Reorder: 0.2, MaxJitter: sim.Millisecond}
	a := runFaultTraffic(7, plan)
	b := runFaultTraffic(7, plan)
	if a.stats != b.stats {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", a.stats, b.stats)
	}
	if len(a.arrivals) != len(b.arrivals) {
		t.Fatalf("same seed, different delivery count: %d vs %d", len(a.arrivals), len(b.arrivals))
	}
	for i := range a.arrivals {
		if a.arrivals[i] != b.arrivals[i] {
			t.Fatalf("same seed, delivery %d at %d vs %d", i, a.arrivals[i], b.arrivals[i])
		}
	}
	plan.Seed = 43
	c := runFaultTraffic(7, plan)
	if c.stats == a.stats {
		t.Fatal("different fault seed produced identical stats — PRNG not in play?")
	}
}

// The zero plan must leave the network byte-for-byte as it was: no PRNG, no
// fault counters, identical delivery schedule to a network with no Faults
// field set at all.
func TestZeroPlanIsInert(t *testing.T) {
	var zero FaultPlan
	if zero.Active() {
		t.Fatal("zero FaultPlan reports Active")
	}
	a := runFaultTraffic(11, zero)
	b := runFaultTraffic(11, FaultPlan{Seed: 999}) // seed alone is not a fault
	if a.stats != b.stats || len(a.arrivals) != len(b.arrivals) {
		t.Fatalf("zero plan not inert:\n%+v\n%+v", a.stats, b.stats)
	}
	if a.stats.FaultDrops != 0 || a.stats.Duplicated != 0 {
		t.Fatalf("zero plan injected faults: %+v", a.stats)
	}
}

// Brown-outs drop every frame crossing the window; stalls only delay.
func TestBrownoutAndStallWindows(t *testing.T) {
	mk := func(plan FaultPlan) (recv int, when sim.Time) {
		k := sim.NewKernel()
		cfg := testConfig()
		cfg.Faults = plan
		n := New(k, 2, cfg, func(m *Message) { recv++; when = k.Now() })
		k.At(0, func() {
			n.Send(&Message{Src: 0, Dst: 1, Size: 100, Reliable: true})
		})
		k.Run()
		return recv, when
	}

	base, baseAt := mk(FaultPlan{Stalls: []LinkFault{{Node: 1, From: 0, To: 0}}})
	if base != 1 {
		t.Fatalf("inactive windows: recv=%d", base)
	}

	recv, _ := mk(FaultPlan{Brownouts: []LinkFault{{Node: 0, From: 0, To: sim.Second}}})
	if recv != 0 {
		t.Fatalf("brown-out on sender link: message delivered anyway")
	}
	recv, _ = mk(FaultPlan{Brownouts: []LinkFault{{Node: 1, From: 0, To: sim.Second}}})
	if recv != 0 {
		t.Fatalf("brown-out on receiver link: message delivered anyway")
	}

	stallTo := 5 * sim.Millisecond
	recv, at := mk(FaultPlan{Stalls: []LinkFault{{Node: 0, From: 0, To: stallTo}}})
	if recv != 1 {
		t.Fatalf("stall dropped the message")
	}
	if at < stallTo || at <= baseAt {
		t.Fatalf("stalled delivery at %d, want after window end %d (base %d)", at, stallTo, baseAt)
	}
}
