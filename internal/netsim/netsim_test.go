package netsim

import (
	"testing"

	"godsm/internal/sim"
)

func testConfig() Config {
	return Config{
		NsPerByte:     10,
		SwitchLatency: 100,
		PropDelay:     5,
		DropThreshold: 0,
	}
}

func TestPointToPointLatency(t *testing.T) {
	k := sim.NewKernel()
	var arrived sim.Time = -1
	var got *Message
	n := New(k, 4, testConfig(), func(m *Message) {
		arrived = k.Now()
		got = m
	})
	m := &Message{Src: 0, Dst: 1, Size: 100, Reliable: true, Payload: "hi"}
	predicted := n.Send(m)
	k.Run()
	// ser = 1000; out [0,1000]; switch out at 1105; in [1105,2105]; +5 = 2110.
	if want := sim.Time(2110); arrived != want || predicted != want {
		t.Fatalf("arrived=%d predicted=%d, want %d", arrived, predicted, want)
	}
	if got.Payload != "hi" {
		t.Fatalf("payload = %v", got.Payload)
	}
}

func TestLoopback(t *testing.T) {
	k := sim.NewKernel()
	var arrived sim.Time = -1
	n := New(k, 2, testConfig(), func(m *Message) { arrived = k.Now() })
	n.Send(&Message{Src: 1, Dst: 1, Size: 4096, Reliable: true})
	k.Run()
	if arrived != 100 {
		t.Fatalf("loopback arrived at %d, want switch latency 100", arrived)
	}
}

func TestSenderSerializationQueueing(t *testing.T) {
	k := sim.NewKernel()
	var arrivals []sim.Time
	n := New(k, 4, testConfig(), func(m *Message) { arrivals = append(arrivals, k.Now()) })
	k.At(0, func() {
		n.Send(&Message{Src: 0, Dst: 1, Size: 100, Reliable: true})
		n.Send(&Message{Src: 0, Dst: 2, Size: 100, Reliable: true})
	})
	k.Run()
	if len(arrivals) != 2 {
		t.Fatalf("%d arrivals", len(arrivals))
	}
	// Second message serializes after the first on the shared output link.
	if arrivals[1]-arrivals[0] != 1000 {
		t.Fatalf("arrivals %v: second should trail first by one serialization (1000)", arrivals)
	}
}

func TestHotSpotInboundQueueing(t *testing.T) {
	k := sim.NewKernel()
	var arrivals []sim.Time
	n := New(k, 8, testConfig(), func(m *Message) { arrivals = append(arrivals, k.Now()) })
	k.At(0, func() {
		for src := 1; src < 8; src++ {
			n.Send(&Message{Src: NodeID(src), Dst: 0, Size: 100, Reliable: true})
		}
	})
	k.Run()
	if len(arrivals) != 7 {
		t.Fatalf("%d arrivals, want 7", len(arrivals))
	}
	// All senders transmit in parallel, but node 0's inbound link is shared:
	// deliveries must be spaced one serialization (1000 ns) apart.
	for i := 1; i < len(arrivals); i++ {
		if d := arrivals[i] - arrivals[i-1]; d != 1000 {
			t.Fatalf("arrival gap %d = %d, want 1000 (inbound link contention)", i, d)
		}
	}
}

func TestUnreliableDropUnderCongestion(t *testing.T) {
	cfg := testConfig()
	cfg.DropThreshold = 500
	k := sim.NewKernel()
	delivered := 0
	n := New(k, 4, cfg, func(m *Message) { delivered++ })
	var results []sim.Time
	k.At(0, func() {
		// First message occupies the link for 1000 ns; the unreliable
		// second would wait 1000 > 500 and must be dropped.
		results = append(results, n.Send(&Message{Src: 0, Dst: 1, Size: 100, Reliable: true}))
		results = append(results, n.Send(&Message{Src: 0, Dst: 1, Size: 100, Reliable: false}))
	})
	k.Run()
	if results[1] != -1 {
		t.Fatalf("unreliable message not dropped: %v", results)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if n.Stats(0).Dropped != 1 {
		t.Fatalf("drop count = %d, want 1", n.Stats(0).Dropped)
	}
}

func TestReliableNeverDropped(t *testing.T) {
	cfg := testConfig()
	cfg.DropThreshold = 1
	k := sim.NewKernel()
	delivered := 0
	n := New(k, 2, cfg, func(m *Message) { delivered++ })
	k.At(0, func() {
		for i := 0; i < 20; i++ {
			n.Send(&Message{Src: 0, Dst: 1, Size: 1000, Reliable: true})
		}
	})
	k.Run()
	if delivered != 20 {
		t.Fatalf("delivered = %d, want 20", delivered)
	}
}

func TestStatsCounters(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, 3, testConfig(), func(m *Message) {})
	k.At(0, func() {
		n.Send(&Message{Src: 0, Dst: 1, Size: 100, Reliable: true, Kind: 2})
		n.Send(&Message{Src: 1, Dst: 0, Size: 200, Reliable: true, Kind: 2})
		n.Send(&Message{Src: 0, Dst: 2, Size: 50, Reliable: true, Kind: 3})
	})
	k.Run()
	if s := n.Stats(0); s.MsgsSent != 2 || s.BytesSent != 150 || s.MsgsRecv != 1 || s.BytesRecv != 200 {
		t.Fatalf("node0 stats = %+v", s)
	}
	tot := n.TotalStats()
	if tot.MsgsSent != 3 || tot.BytesSent != 350 || tot.MsgsRecv != 3 || tot.BytesRecv != 350 {
		t.Fatalf("total stats = %+v", tot)
	}
	if m, b := n.KindStats(2); m != 2 || b != 300 {
		t.Fatalf("kind 2 stats = %d msgs %d bytes", m, b)
	}
	if m, b := n.KindStats(3); m != 1 || b != 50 {
		t.Fatalf("kind 3 stats = %d msgs %d bytes", m, b)
	}
}

func TestDefaultConfigRoundTripScale(t *testing.T) {
	// Sanity: a 4 KB page reply over the default config takes on the order
	// of a few hundred microseconds, matching software-DSM scale.
	k := sim.NewKernel()
	var arrived sim.Time
	n := New(k, 2, DefaultConfig(), func(m *Message) { arrived = k.Now() })
	n.Send(&Message{Src: 0, Dst: 1, Size: 4160, Reliable: true})
	k.Run()
	if arrived < 500*sim.Microsecond || arrived > 2000*sim.Microsecond {
		t.Fatalf("4KB transfer latency = %d µs, outside software-DSM scale", arrived/sim.Microsecond)
	}
}
