// Package netsim models the cluster interconnect: a single ATM-style switch
// with one full-duplex link per node. Messages experience sender-side
// serialization, store-and-forward switching, and receiver-side link
// occupancy, so concurrent traffic to one node queues on that node's inbound
// link — reproducing the hot-spotting the paper observes when all processors
// fetch their initial data from the master.
//
// Unreliable messages (the paper's prefetch requests and replies) are
// dropped deterministically when the queueing delay they would suffer
// exceeds a configurable threshold, modelling congestion loss.
//
// A FaultPlan additionally injects faults into ANY message — including ones
// marked reliable: probabilistic loss and duplication, bounded reordering
// jitter, transient link brown-outs, and per-NIC stall windows. All
// randomness comes from a per-network PRNG seeded by the plan, and the
// simulation is single-threaded, so a given (workload, plan) pair replays
// exactly. Recovering reliable messages lost to an active plan is the
// protocol layer's job (see proto's ack/retransmit transport).
package netsim

import (
	"fmt"
	"math/rand"

	"godsm/internal/event"
	"godsm/internal/sim"
)

// NodeID identifies a node (processor) on the network.
type NodeID int

// Kind tags a message for traffic statistics. The protocol layer defines
// the actual kinds; netsim only requires them to be small integers.
type Kind uint8

// MaxKinds bounds the Kind space for statistics arrays.
const MaxKinds = 24

// Message is one datagram on the simulated network.
//
// Seq and Ack are the transport header used by the protocol layer's
// reliability machinery; netsim carries them opaquely. Seq is a 1-based
// per-(src,dst) sequence number (0 = unsequenced datagram) and Ack is the
// cumulative acknowledgement (all sequence numbers below Ack received;
// 0 = no acknowledgement information).
type Message struct {
	Src, Dst NodeID
	Size     int  // bytes on the wire, including headers
	Reliable bool // unreliable messages may be dropped under congestion
	Kind     Kind
	Seq, Ack uint64
	Payload  any
}

// LinkFault is one transient fault window on a node's full-duplex link,
// active for virtual times in [From, To).
type LinkFault struct {
	Node     NodeID
	From, To sim.Time
}

// FaultPlan describes deterministic fault injection. The zero plan injects
// nothing; Active reports whether any fault is configured. All probability
// draws come from one PRNG seeded with Seed, created per Network, so runs
// replay exactly.
type FaultPlan struct {
	Seed int64

	Loss float64 // per-message drop probability (reliable messages too)
	Dup  float64 // per-message duplication probability

	// Reorder is the probability a message is delayed by extra jitter drawn
	// uniformly from (0, MaxJitter], letting later traffic overtake it.
	// Ineffective when MaxJitter is zero.
	Reorder   float64
	MaxJitter sim.Time

	// Brownouts drop every message whose link occupancy overlaps the window
	// on the named node's link (either direction).
	Brownouts []LinkFault

	// Stalls model a wedged NIC: traffic that would occupy the named node's
	// link during the window waits until the window ends.
	Stalls []LinkFault
}

// Active reports whether the plan injects any fault.
func (p *FaultPlan) Active() bool {
	return p.Loss > 0 || p.Dup > 0 || (p.Reorder > 0 && p.MaxJitter > 0) ||
		len(p.Brownouts) > 0 || len(p.Stalls) > 0
}

// stallEnd returns the end of the stall window covering time t on node id's
// link, or t if none does.
func (p *FaultPlan) stallEnd(id NodeID, t sim.Time) sim.Time {
	for _, w := range p.Stalls {
		if w.Node == id && t >= w.From && t < w.To {
			t = w.To
		}
	}
	return t
}

// brownedOut reports whether [from, to) overlaps a brown-out window on node
// id's link.
func (p *FaultPlan) brownedOut(id NodeID, from, to sim.Time) bool {
	for _, w := range p.Brownouts {
		if w.Node == id && from < w.To && to > w.From {
			return true
		}
	}
	return false
}

// DefaultFatTreeRadix is the switch radix used when Config.FatTreeRadix is
// zero: four downward ports per switch, so eight nodes need two levels and
// 1024 nodes need five.
const DefaultFatTreeRadix = 4

// Config holds the network's physical parameters. The defaults in
// DefaultConfig approximate the paper's 155 Mbps FORE ATM LAN.
type Config struct {
	NsPerByte     float64  // serialization cost per byte on each link
	SwitchLatency sim.Time // fixed store-and-forward latency in the switch
	PropDelay     sim.Time // propagation delay per link traversal
	// DropThreshold is the maximum total queueing delay an unreliable
	// message may suffer before it is dropped. Zero disables dropping.
	DropThreshold sim.Time

	// Topology selects the interconnect shape. "" and "single" are the
	// paper's one-switch LAN (the byte-identical default); "fattree" is a
	// multi-switch fat tree with per-link serialization, per-switch
	// store-and-forward latency, and per-link occupancy tracking (see
	// fattree.go).
	Topology string
	// FatTreeRadix is the fat tree's downward port count per switch; zero
	// means DefaultFatTreeRadix. Must be a power of two >= 2.
	FatTreeRadix int

	// Faults injects deterministic faults into all traffic (see FaultPlan).
	// The zero plan leaves the network exactly as fault-free.
	Faults FaultPlan
}

// Validate checks the topology parameters against a node count. The single
// switch accepts any cluster (including one node); the fat tree's routing
// arithmetic assumes power-of-two node counts and radices.
func (c *Config) Validate(nodes int) error {
	switch c.Topology {
	case "", "single":
		return nil
	case "fattree":
		r := c.FatTreeRadix
		if r == 0 {
			r = DefaultFatTreeRadix
		}
		if r < 2 || r&(r-1) != 0 {
			return fmt.Errorf("fattree: radix %d is not a power of two >= 2", r)
		}
		if nodes < 2 || nodes&(nodes-1) != 0 {
			return fmt.Errorf("fattree: %d nodes; the fat tree assumes a power-of-two node count >= 2", nodes)
		}
		return nil
	default:
		return fmt.Errorf("unknown topology %q (have: single, fattree)", c.Topology)
	}
}

// DefaultConfig returns parameters approximating the paper's platform: a
// 155 Mbps OC-3 ATM LAN (51.6 ns/byte serialization, 20 µs switch) whose
// end-to-end latency is dominated by the per-hop adapter/driver/UDP-stack
// path (~300 µs per link traversal, which does not consume host CPU in the
// model — the CPU-visible protocol costs are in proto.Costs). Unreliable
// messages drop past 1.5 ms of queueing.
func DefaultConfig() Config {
	return Config{
		NsPerByte:     51.6,
		SwitchLatency: 20 * sim.Microsecond,
		PropDelay:     300 * sim.Microsecond,
		DropThreshold: 1500 * sim.Microsecond,
	}
}

// LinkStats counts traffic observed at one node. Counters conserve:
// MsgsRecv + Dropped == MsgsSent + Duplicated (and likewise for bytes),
// summed over all nodes.
type LinkStats struct {
	MsgsSent, MsgsRecv   int64
	BytesSent, BytesRecv int64
	Dropped              int64 // messages lost (congestion + injected faults)
	BytesDropped         int64
	FaultDrops           int64 // subset of Dropped due to injected loss/brown-outs
	Duplicated           int64 // extra copies created by fault injection
	BytesDup             int64
}

type nic struct {
	outBusyUntil sim.Time // sender-side link free time
	inBusyUntil  sim.Time // receiver-side link free time
	stats        LinkStats

	// Passive occupancy accounting for LinkLoads (never read by the timing
	// model, so recording it cannot perturb existing goldens).
	outMsgs, inMsgs int64
	outBusy, inBusy sim.Time // total serialization time the link was held
	outPeak, inPeak sim.Time // largest ready-to-drained backlog of one message
}

func (c *nic) noteOut(ser, backlog sim.Time) {
	c.outMsgs++
	c.outBusy += ser
	if backlog > c.outPeak {
		c.outPeak = backlog
	}
}

func (c *nic) noteIn(ser, backlog sim.Time) {
	c.inMsgs++
	c.inBusy += ser
	if backlog > c.inPeak {
		c.inPeak = backlog
	}
}

// LinkLoad is the observed load on one directed link of the topology: how
// many messages crossed it, how long it was busy serializing in total, and
// the largest backlog one message saw (time from the message being ready for
// the link until the link had drained it — queueing wait plus its own
// serialization).
type LinkLoad struct {
	Name string
	Msgs int64
	Busy sim.Time
	Peak sim.Time
}

// Network is the simulated LAN. Construct with New.
type Network struct {
	k       *sim.Kernel
	bus     *event.Bus
	cfg     Config
	nics    []nic
	deliver func(*Message)
	rng     *rand.Rand // non-nil iff cfg.Faults.Active()
	topo    *fatTree   // non-nil iff cfg.Topology == "fattree"

	kindMsgs  [MaxKinds]int64
	kindBytes [MaxKinds]int64
}

// New creates a network of n nodes on kernel k. deliver is invoked (in
// kernel context) when a message arrives at its destination.
func New(k *sim.Kernel, n int, cfg Config, deliver func(*Message)) *Network {
	if n <= 0 {
		panic("netsim: need at least one node")
	}
	if err := cfg.Validate(n); err != nil {
		panic("netsim: " + err.Error())
	}
	net := &Network{k: k, bus: k.Bus(), cfg: cfg, nics: make([]nic, n), deliver: deliver}
	if cfg.Faults.Active() {
		net.rng = rand.New(rand.NewSource(cfg.Faults.Seed))
	}
	if cfg.Topology == "fattree" {
		radix := cfg.FatTreeRadix
		if radix == 0 {
			radix = DefaultFatTreeRadix
		}
		net.topo = newFatTree(n, radix)
	}
	return net
}

// LinkLoads returns the per-link occupancy observed so far, in a fixed
// deterministic order. Under the single switch each node contributes its
// outbound and inbound link; under the fat tree every edge and inter-switch
// link (both directions) is reported.
func (n *Network) LinkLoads() []LinkLoad {
	if n.topo != nil {
		return n.topo.loads()
	}
	out := make([]LinkLoad, 0, 2*len(n.nics))
	for i := range n.nics {
		c := &n.nics[i]
		out = append(out,
			LinkLoad{Name: fmt.Sprintf("node%d.out", i), Msgs: c.outMsgs, Busy: c.outBusy, Peak: c.outPeak},
			LinkLoad{Name: fmt.Sprintf("node%d.in", i), Msgs: c.inMsgs, Busy: c.inBusy, Peak: c.inPeak})
	}
	return out
}

// FaultsActive reports whether this network injects faults.
func (n *Network) FaultsActive() bool { return n.rng != nil }

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return len(n.nics) }

// Stats returns the traffic counters for node id.
func (n *Network) Stats(id NodeID) LinkStats { return n.nics[id].stats }

// TotalStats sums traffic over all nodes (sent-side counters).
func (n *Network) TotalStats() LinkStats {
	var t LinkStats
	for i := range n.nics {
		s := &n.nics[i].stats
		t.MsgsSent += s.MsgsSent
		t.MsgsRecv += s.MsgsRecv
		t.BytesSent += s.BytesSent
		t.BytesRecv += s.BytesRecv
		t.Dropped += s.Dropped
		t.BytesDropped += s.BytesDropped
		t.FaultDrops += s.FaultDrops
		t.Duplicated += s.Duplicated
		t.BytesDup += s.BytesDup
	}
	return t
}

// KindStats returns (messages, bytes) sent with the given kind.
func (n *Network) KindStats(kind Kind) (msgs, bytes int64) {
	return n.kindMsgs[kind], n.kindBytes[kind]
}

func (n *Network) serialization(size int) sim.Time {
	return sim.Time(float64(size) * n.cfg.NsPerByte)
}

// deliverAt schedules m's arrival at time at, emitting the delivery event
// at the moment it happens.
func (n *Network) deliverAt(at sim.Time, m *Message) {
	n.k.At(at, func() {
		n.bus.Emit(event.NetDeliver(int(m.Src), int(m.Dst), uint8(m.Kind), m.Size, m.Seq))
		n.deliver(m)
	})
}

// Send transmits m at the current virtual time. It returns the delivery
// time, or -1 if the message was dropped. Loopback (Src == Dst) is
// delivered after the switch latency only, mirroring local IPC.
func (n *Network) Send(m *Message) sim.Time {
	if m.Dst < 0 || int(m.Dst) >= len(n.nics) {
		panic(fmt.Sprintf("netsim: bad destination %d", m.Dst))
	}
	now := n.k.Now()
	src, dst := &n.nics[m.Src], &n.nics[m.Dst]
	esrc, edst, ekind := int(m.Src), int(m.Dst), uint8(m.Kind)

	n.bus.Emit(event.NetEnqueue(esrc, edst, ekind, m.Size, m.Seq))
	src.stats.MsgsSent++
	src.stats.BytesSent += int64(m.Size)
	n.kindMsgs[m.Kind]++
	n.kindBytes[m.Kind] += int64(m.Size)

	if m.Src == m.Dst {
		at := now + n.cfg.SwitchLatency
		dst.stats.MsgsRecv++
		dst.stats.BytesRecv += int64(m.Size)
		n.bus.Emit(event.NetTransmit(esrc, edst, ekind, at, 0))
		n.deliverAt(at, m)
		return at
	}

	if n.topo != nil {
		return n.sendFatTree(m, now)
	}

	ser := n.serialization(m.Size)
	f := &n.cfg.Faults

	// Sender-side link. A stalled NIC holds traffic until its window ends.
	outStart := max(now, src.outBusyUntil)
	if n.rng != nil {
		if stalled := f.stallEnd(m.Src, outStart); stalled != outStart {
			outStart = stalled
			n.bus.Emit(event.NetFault(esrc, edst, ekind, event.FaultStall))
		}
	}
	outEnd := outStart + ser

	// Switch + propagation.
	atSwitchOut := outEnd + n.cfg.PropDelay + n.cfg.SwitchLatency

	// Receiver-side link (store-and-forward from the switch).
	inStart := max(atSwitchOut, dst.inBusyUntil)
	if n.rng != nil {
		if stalled := f.stallEnd(m.Dst, inStart); stalled != inStart {
			inStart = stalled
			n.bus.Emit(event.NetFault(esrc, edst, ekind, event.FaultStall))
		}
	}
	inEnd := inStart + ser
	arrive := inEnd + n.cfg.PropDelay

	queueing := (outStart - now) + (inStart - atSwitchOut)
	if !m.Reliable && n.cfg.DropThreshold > 0 && queueing > n.cfg.DropThreshold {
		n.bus.Emit(event.NetDrop(esrc, edst, ekind, m.Size, event.DropCongestion))
		src.stats.Dropped++
		src.stats.BytesDropped += int64(m.Size)
		return -1
	}

	if n.rng != nil {
		// Brown-outs eat the frame while it occupies a faulted link.
		if f.brownedOut(m.Src, outStart, outEnd) || f.brownedOut(m.Dst, inStart, inEnd) {
			n.bus.Emit(event.NetDrop(esrc, edst, ekind, m.Size, event.DropBrownout))
			src.stats.Dropped++
			src.stats.BytesDropped += int64(m.Size)
			src.stats.FaultDrops++
			return -1
		}
		// Probabilistic loss. The frame still occupied both links.
		if f.Loss > 0 && n.rng.Float64() < f.Loss {
			src.outBusyUntil = outEnd
			dst.inBusyUntil = inEnd
			src.noteOut(ser, outEnd-now)
			dst.noteIn(ser, inEnd-atSwitchOut)
			n.bus.Emit(event.NetDrop(esrc, edst, ekind, m.Size, event.DropLoss))
			src.stats.Dropped++
			src.stats.BytesDropped += int64(m.Size)
			src.stats.FaultDrops++
			return -1
		}
	}

	src.outBusyUntil = outEnd
	dst.inBusyUntil = inEnd
	src.noteOut(ser, outEnd-now)
	dst.noteIn(ser, inEnd-atSwitchOut)
	dst.stats.MsgsRecv++
	dst.stats.BytesRecv += int64(m.Size)

	if n.rng != nil {
		// Reordering: extra jitter lets later traffic overtake this frame.
		if f.Reorder > 0 && f.MaxJitter > 0 && n.rng.Float64() < f.Reorder {
			arrive += 1 + n.rng.Int63n(f.MaxJitter)
			n.bus.Emit(event.NetFault(esrc, edst, ekind, event.FaultJitter))
		}
		// Duplication: a second copy pops out of the switch a beat later.
		if f.Dup > 0 && n.rng.Float64() < f.Dup {
			dupAt := arrive + n.cfg.SwitchLatency
			if f.Reorder > 0 && f.MaxJitter > 0 && n.rng.Float64() < f.Reorder {
				dupAt += n.rng.Int63n(f.MaxJitter)
			}
			n.bus.Emit(event.NetFault(esrc, edst, ekind, event.FaultDup))
			src.stats.Duplicated++
			src.stats.BytesDup += int64(m.Size)
			dst.stats.MsgsRecv++
			dst.stats.BytesRecv += int64(m.Size)
			n.deliverAt(dupAt, m)
		}
	}

	n.bus.Emit(event.NetTransmit(esrc, edst, ekind, arrive, queueing))
	n.deliverAt(arrive, m)
	return arrive
}
