// Package netsim models the cluster interconnect: a single ATM-style switch
// with one full-duplex link per node. Messages experience sender-side
// serialization, store-and-forward switching, and receiver-side link
// occupancy, so concurrent traffic to one node queues on that node's inbound
// link — reproducing the hot-spotting the paper observes when all processors
// fetch their initial data from the master.
//
// Unreliable messages (the paper's prefetch requests and replies) are
// dropped deterministically when the queueing delay they would suffer
// exceeds a configurable threshold, modelling congestion loss.
package netsim

import (
	"fmt"

	"godsm/internal/sim"
)

// NodeID identifies a node (processor) on the network.
type NodeID int

// Kind tags a message for traffic statistics. The protocol layer defines
// the actual kinds; netsim only requires them to be small integers.
type Kind uint8

// MaxKinds bounds the Kind space for statistics arrays.
const MaxKinds = 24

// Message is one datagram on the simulated network.
type Message struct {
	Src, Dst NodeID
	Size     int  // bytes on the wire, including headers
	Reliable bool // unreliable messages may be dropped under congestion
	Kind     Kind
	Payload  any
}

// Config holds the network's physical parameters. The defaults in
// DefaultConfig approximate the paper's 155 Mbps FORE ATM LAN.
type Config struct {
	NsPerByte     float64  // serialization cost per byte on each link
	SwitchLatency sim.Time // fixed store-and-forward latency in the switch
	PropDelay     sim.Time // propagation delay per link traversal
	// DropThreshold is the maximum total queueing delay an unreliable
	// message may suffer before it is dropped. Zero disables dropping.
	DropThreshold sim.Time
}

// DefaultConfig returns parameters approximating the paper's platform: a
// 155 Mbps OC-3 ATM LAN (51.6 ns/byte serialization, 20 µs switch) whose
// end-to-end latency is dominated by the per-hop adapter/driver/UDP-stack
// path (~300 µs per link traversal, which does not consume host CPU in the
// model — the CPU-visible protocol costs are in proto.Costs). Unreliable
// messages drop past 1.5 ms of queueing.
func DefaultConfig() Config {
	return Config{
		NsPerByte:     51.6,
		SwitchLatency: 20 * sim.Microsecond,
		PropDelay:     300 * sim.Microsecond,
		DropThreshold: 1500 * sim.Microsecond,
	}
}

// LinkStats counts traffic observed at one node.
type LinkStats struct {
	MsgsSent, MsgsRecv   int64
	BytesSent, BytesRecv int64
	Dropped              int64 // unreliable messages lost to congestion
}

type nic struct {
	outBusyUntil sim.Time // sender-side link free time
	inBusyUntil  sim.Time // receiver-side link free time
	stats        LinkStats
}

// Network is the simulated LAN. Construct with New.
type Network struct {
	k       *sim.Kernel
	cfg     Config
	nics    []nic
	deliver func(*Message)

	kindMsgs  [MaxKinds]int64
	kindBytes [MaxKinds]int64
}

// New creates a network of n nodes on kernel k. deliver is invoked (in
// kernel context) when a message arrives at its destination.
func New(k *sim.Kernel, n int, cfg Config, deliver func(*Message)) *Network {
	if n <= 0 {
		panic("netsim: need at least one node")
	}
	return &Network{k: k, cfg: cfg, nics: make([]nic, n), deliver: deliver}
}

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return len(n.nics) }

// Stats returns the traffic counters for node id.
func (n *Network) Stats(id NodeID) LinkStats { return n.nics[id].stats }

// TotalStats sums traffic over all nodes (sent-side counters).
func (n *Network) TotalStats() LinkStats {
	var t LinkStats
	for i := range n.nics {
		s := &n.nics[i].stats
		t.MsgsSent += s.MsgsSent
		t.MsgsRecv += s.MsgsRecv
		t.BytesSent += s.BytesSent
		t.BytesRecv += s.BytesRecv
		t.Dropped += s.Dropped
	}
	return t
}

// KindStats returns (messages, bytes) sent with the given kind.
func (n *Network) KindStats(kind Kind) (msgs, bytes int64) {
	return n.kindMsgs[kind], n.kindBytes[kind]
}

func (n *Network) serialization(size int) sim.Time {
	return sim.Time(float64(size) * n.cfg.NsPerByte)
}

// Send transmits m at the current virtual time. It returns the delivery
// time, or -1 if the message was dropped. Loopback (Src == Dst) is
// delivered after the switch latency only, mirroring local IPC.
func (n *Network) Send(m *Message) sim.Time {
	if m.Dst < 0 || int(m.Dst) >= len(n.nics) {
		panic(fmt.Sprintf("netsim: bad destination %d", m.Dst))
	}
	now := n.k.Now()
	src, dst := &n.nics[m.Src], &n.nics[m.Dst]

	src.stats.MsgsSent++
	src.stats.BytesSent += int64(m.Size)
	n.kindMsgs[m.Kind]++
	n.kindBytes[m.Kind] += int64(m.Size)

	if m.Src == m.Dst {
		at := now + n.cfg.SwitchLatency
		dst.stats.MsgsRecv++
		dst.stats.BytesRecv += int64(m.Size)
		n.k.At(at, func() { n.deliver(m) })
		return at
	}

	ser := n.serialization(m.Size)

	// Sender-side link.
	outStart := max(now, src.outBusyUntil)
	outEnd := outStart + ser

	// Switch + propagation.
	atSwitchOut := outEnd + n.cfg.PropDelay + n.cfg.SwitchLatency

	// Receiver-side link (store-and-forward from the switch).
	inStart := max(atSwitchOut, dst.inBusyUntil)
	inEnd := inStart + ser
	arrive := inEnd + n.cfg.PropDelay

	queueing := (outStart - now) + (inStart - atSwitchOut)
	if !m.Reliable && n.cfg.DropThreshold > 0 && queueing > n.cfg.DropThreshold {
		src.stats.Dropped++
		return -1
	}

	src.outBusyUntil = outEnd
	dst.inBusyUntil = inEnd
	dst.stats.MsgsRecv++
	dst.stats.BytesRecv += int64(m.Size)
	n.k.At(arrive, func() { n.deliver(m) })
	return arrive
}
