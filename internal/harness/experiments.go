package harness

import (
	"fmt"
	"io"

	"godsm/internal/stats"
)

// RunFig1 regenerates Figure 1: the execution-time breakdown of the
// original (no latency tolerance) runs of all applications.
func RunFig1(s *Session, w io.Writer) error {
	fmt.Fprintln(w, "Figure 1: execution time breakdown (TreadMarks baseline, "+
		fmt.Sprint(s.Opt.Procs)+" processors)")
	writeBreakdownHeader(w)
	for _, app := range s.AppNames() {
		rep, err := s.Run(app, VarO)
		if err != nil {
			return err
		}
		writeBreakdownRow(w, app, VarO, rep, rep.Elapsed)
		fmt.Fprintf(w, "%-15s |%s|\n", "", bar(rep, rep.Elapsed))
	}
	fmt.Fprintln(w, "legend: B=Busy D=DSM overhead M=Memory miss idle S=Sync idle p=Prefetch ov t=MT ov")
	return nil
}

// RunFig2 regenerates Figure 2: original vs prefetching breakdowns,
// normalized to the original execution time.
func RunFig2(s *Session, w io.Writer) error {
	fmt.Fprintln(w, "Figure 2: performance impact of prefetching (O = original, P = with prefetching)")
	writeBreakdownHeader(w)
	for _, app := range s.AppNames() {
		repO, err := s.Run(app, VarO)
		if err != nil {
			return err
		}
		repP, err := s.Run(app, VarP)
		if err != nil {
			return err
		}
		writeBreakdownRow(w, app, VarO, repO, repO.Elapsed)
		writeBreakdownRow(w, "", VarP, repP, repO.Elapsed)
		stallO := repO.Sum().MissStall
		stallP := repP.Sum().MissStall
		reduction := 0.0
		if stallO > 0 {
			reduction = 100 * (1 - float64(stallP)/float64(stallO))
		}
		fmt.Fprintf(w, "%-15s speedup %.2fx, miss-stall reduction %.0f%%\n", "",
			repP.Speedup(repO), reduction)
	}
	return nil
}

// RunTable1 regenerates Table 1: prefetching statistics.
func RunTable1(s *Session, w io.Writer) error {
	fmt.Fprintln(w, "Table 1: prefetching statistics (O = original, P = with prefetching)")
	fmt.Fprintf(w, "%-10s %8s %8s | %10s %10s | %8s %8s | %9s %9s | %7s %7s\n",
		"Benchmark", "Unnec%", "Covrge%", "TrafficO", "TrafficP",
		"MissesO", "MissesP", "AvgLatO", "AvgLatP", "ReqDrop", "RepDrop")
	for _, app := range s.AppNames() {
		repO, err := s.Run(app, VarO)
		if err != nil {
			return err
		}
		repP, err := s.Run(app, VarP)
		if err != nil {
			return err
		}
		fmt.Fprint(w, table1Row(app, repO, repP))
	}
	return nil
}

// table1Row renders one application's Table 1 line from its original (O) and
// prefetching (P) reports. Split out so the rendering — in particular the
// request/reply drop split — is testable against fabricated reports.
func table1Row(app string, repO, repP *stats.Report) string {
	nP := repP.Sum()
	return fmt.Sprintf("%-10s %7.2f%% %7.2f%% | %9sK %9sK | %8d %8d | %7sus %7sus | %7d %7d\n",
		app,
		repP.UnnecessaryPfPct(), repP.CoverageFactor(),
		kb(repO.BytesTotal), kb(repP.BytesTotal),
		repO.TotalMisses(), repP.TotalMisses(),
		usec(repO.AvgMissLatency()), usec(repP.AvgMissLatency()),
		nP.PfReqDropped, nP.PfReplyDropped)
}

// RunFig3 regenerates Figure 3: what happened to each original remote miss
// under prefetching (not prefetched / invalidated / too late / hit),
// normalized to the number of original misses.
func RunFig3(s *Session, w io.Writer) error {
	fmt.Fprintln(w, "Figure 3: breakdown of the original remote misses under prefetching")
	fmt.Fprintf(w, "%-10s %8s %8s %14s %12s %8s %8s\n",
		"App", "OrigMiss", "no-pf%", "pf-invalid%", "pf-late%", "pf-hit%", "drops")
	for _, app := range s.AppNames() {
		rep, err := s.Run(app, VarP)
		if err != nil {
			return err
		}
		n := rep.Sum()
		total := float64(n.FaultNoPf + n.FaultPfHit + n.FaultPfLate + n.FaultPfInvalided)
		if total == 0 {
			total = 1
		}
		pct := func(v int64) float64 { return 100 * float64(v) / total }
		fmt.Fprintf(w, "%-10s %8d %7.1f%% %13.1f%% %11.1f%% %7.1f%% %8d\n",
			app, int64(total), pct(n.FaultNoPf), pct(n.FaultPfInvalided),
			pct(n.FaultPfLate), pct(n.FaultPfHit), rep.Drops)
	}
	return nil
}

// RunFig4 regenerates Figure 4: multithreading with 2, 4 and 8 threads per
// processor vs the original, normalized to the original execution time.
func RunFig4(s *Session, w io.Writer) error {
	fmt.Fprintln(w, "Figure 4: performance impact of multithreading (nT = n threads per processor)")
	writeBreakdownHeader(w)
	for _, app := range s.AppNames() {
		repO, err := s.Run(app, VarO)
		if err != nil {
			return err
		}
		writeBreakdownRow(w, app, VarO, repO, repO.Elapsed)
		for _, v := range []Variant{Var2T, Var4T, Var8T} {
			rep, err := s.Run(app, v)
			if err != nil {
				return err
			}
			writeBreakdownRow(w, "", v, rep, repO.Elapsed)
		}
	}
	return nil
}

// RunTable2 regenerates Table 2: multithreading statistics.
func RunTable2(s *Session, w io.Writer) error {
	fmt.Fprintln(w, "Table 2: multithreading statistics")
	fmt.Fprintf(w, "%-10s %-4s %9s %9s | %8s %9s | %8s %9s | %7s %9s | %7s %9s\n",
		"Benchmark", "Cfg", "AvgStall", "AvgRun",
		"Msgs", "VolKB", "RemMiss", "MissStal", "RemLock", "LockStal", "Barrs", "BarrStal")
	for _, app := range s.AppNames() {
		for _, v := range []Variant{VarO, Var2T, Var4T, Var8T} {
			rep, err := s.Run(app, v)
			if err != nil {
				return err
			}
			n := rep.Sum()
			avgMiss := int64(0)
			if n.Misses > 0 {
				avgMiss = int64(n.MissStall) / n.Misses
			}
			avgLock := int64(0)
			if n.RemoteLockAcqs > 0 {
				avgLock = int64(n.LockStall) / n.RemoteLockAcqs
			}
			avgBar := int64(0)
			if n.BarrierArrives > 0 {
				avgBar = int64(n.BarrierStall) / n.BarrierArrives
			}
			fmt.Fprintf(w, "%-10s %-4s %7sus %7sus | %8d %9s | %8d %7dus | %7d %7dus | %7d %7dus\n",
				app, v, usec(rep.AvgStall()), usec(rep.AvgRunLength()),
				rep.MsgsTotal, kb(rep.BytesTotal),
				n.Misses, avgMiss/1000,
				n.RemoteLockAcqs, avgLock/1000,
				n.BarrierArrives, avgBar/1000)
		}
	}
	return nil
}

// RunFig5 regenerates Figure 5: all eight configurations per application,
// normalized to the original execution time, with the winner marked.
func RunFig5(s *Session, w io.Writer) error {
	fmt.Fprintln(w, "Figure 5: combining prefetching and multithreading")
	fmt.Fprintln(w, "(nTP = n threads switching on synchronization only, plus prefetching)")
	writeBreakdownHeader(w)
	order := []Variant{VarO, Var2T, Var4T, Var8T, VarP, Var2TP, Var4TP, Var8TP}
	for _, app := range s.AppNames() {
		repO, err := s.Run(app, VarO)
		if err != nil {
			return err
		}
		best, bestVar := repO.Elapsed, VarO
		for _, v := range order {
			rep, err := s.Run(app, v)
			if err != nil {
				return err
			}
			writeBreakdownRow(w, appLabel(app, v), v, rep, repO.Elapsed)
			if rep.Elapsed < best {
				best, bestVar = rep.Elapsed, v
			}
		}
		fmt.Fprintf(w, "%-15s best: %s (%.2fx over O)\n", "", bestVar,
			float64(repO.Elapsed)/float64(best))
	}
	return nil
}

func appLabel(app string, v Variant) string {
	if v == VarO {
		return app
	}
	return ""
}
