package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"godsm/dsm"
	"godsm/internal/apps"
	"godsm/internal/event"
	"godsm/internal/stats"
)

// traceRun runs one SOR simulation in the paper's combined configuration
// (prefetching + multithreading) with a trace sink subscribed, returning the
// trace bytes.
func traceRun(t *testing.T) []byte {
	t.Helper()
	spec, err := apps.ByName("SOR")
	if err != nil {
		t.Fatal(err)
	}
	cfg := dsm.DefaultConfig()
	cfg.Procs = 4
	cfg.ThreadsPerProc = 4
	cfg.SwitchOnSync = true
	cfg.Prefetch = true
	var buf bytes.Buffer
	sys := dsm.NewSystem(cfg)
	tw := event.NewTraceWriter(&buf)
	sys.K.Bus().Subscribe(tw)
	inst := spec.Build(sys, apps.Options{Scale: apps.Unit})
	sys.Run(inst.Run)
	if err := inst.Err(); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The determinism contract extends to the trace sink: same configuration,
// same seed, byte-identical trace JSON.
func TestTraceDeterministic(t *testing.T) {
	a := traceRun(t)
	b := traceRun(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical runs produced different traces (%d vs %d bytes)", len(a), len(b))
	}
	if !json.Valid(a) {
		t.Fatal("trace is not valid JSON")
	}
	out := string(a)
	// One track per processor plus the network track, all named.
	for _, frag := range []string{`"network"`, `"proc 0"`, `"proc 3"`, `"fault-remote"`, `"net-transmit"`} {
		if !strings.Contains(out, frag) {
			t.Errorf("trace lacks %q", frag)
		}
	}
}

// table1Row must surface the prefetch request/reply drop split from
// fabricated reports, so a regression in the counters or the rendering is
// caught without running a faulty network end to end.
func TestTable1RowDropSplit(t *testing.T) {
	repO := &stats.Report{Procs: 2, Nodes: make([]stats.Node, 2)}
	repO.Nodes[0].Misses = 100
	repO.Nodes[0].MissStall = 100 * 1700 * 1000 // 1700us avg, in ns
	repO.BytesTotal = 2048 * 1024

	repP := &stats.Report{Procs: 2, Nodes: make([]stats.Node, 2)}
	repP.Nodes[0] = stats.Node{
		Misses: 30, MissStall: 30 * 2000 * 1000,
		PfCalls: 80, PfUnnecessary: 20, PfMsgs: 60,
		PfReqDropped: 7,
		FaultNoPf:    10, FaultPfHit: 50, FaultPfLate: 5, FaultPfInvalided: 5,
	}
	repP.Nodes[1] = stats.Node{PfReplyDropped: 3}
	repP.BytesTotal = 1024 * 1024

	row := table1Row("SOR", repO, repP)
	for _, frag := range []string{
		"SOR", "25.00%", "85.71%", // 20/80 unnecessary, 60/70 covered
		"2048K", "1024K", "100", "30", "1700us", "2000us",
		"      7       3", // the request/reply drop split, right-aligned
	} {
		if !strings.Contains(row, frag) {
			t.Errorf("table1Row lacks %q:\n%s", frag, row)
		}
	}
}
