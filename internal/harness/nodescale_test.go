package harness

import (
	"testing"

	"godsm/internal/apps"
)

// TestTreeBarrierDegeneratesToCentral: with a fanout covering all N-1
// non-root nodes the combining tree has depth 1 — node 0 is every leaf's
// parent — and the tree's wire format, charging pattern, and release
// filtering are the central barrier's, message for message. The whole
// measurement report must therefore be byte-identical across the default
// barrier, the explicit central barrier, and the degenerate tree, for
// every protocol.
func TestTreeBarrierDegeneratesToCentral(t *testing.T) {
	s := NewSession(Options{Procs: 8, Scale: apps.Unit, Workers: 1})
	for _, app := range []string{"SOR", "FFT"} {
		for _, protocol := range ProtocolNames {
			base := s.Config(app, VarO)
			base.Protocol = protocol

			central := base
			central.Barrier = "central"
			tree := base
			tree.Barrier = "tree"
			tree.BarrierFanout = base.Procs - 1

			rd, err := s.RunConfig(app, base)
			if err != nil {
				t.Fatal(err)
			}
			rc, err := s.RunConfig(app, central)
			if err != nil {
				t.Fatal(err)
			}
			rt, err := s.RunConfig(app, tree)
			if err != nil {
				t.Fatal(err)
			}
			fd, fc, ft := rd.Fingerprint(), rc.Fingerprint(), rt.Fingerprint()
			if fd != fc {
				t.Errorf("%s/%s: explicit central barrier differs from default:\ndefault: %s\ncentral: %s",
					app, protocol, fd, fc)
			}
			if fc != ft {
				t.Errorf("%s/%s: depth-1 combining tree differs from central barrier:\ncentral: %s\ntree:    %s",
					app, protocol, fc, ft)
			}
		}
	}
}

// TestScaledMachineDeterminism: the full scaled machine — fat tree,
// combining tree, gossip — must be deterministic across reruns and worker
// counts, like every other configuration the simulator runs.
func TestScaledMachineDeterminism(t *testing.T) {
	run := func(workers int) string {
		s := NewSession(Options{Procs: 16, Scale: apps.Unit, Workers: workers})
		cfg := s.nodeScaleConfig("SOR", "erc", 16, true)
		rep, err := s.RunConfig("SOR", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Fingerprint()
	}
	seq, par, rerun := run(1), run(8), run(1)
	if seq != par {
		t.Errorf("scaled machine differs across worker counts:\nseq: %s\npar: %s", seq, par)
	}
	if seq != rerun {
		t.Errorf("scaled machine did not reproduce on rerun:\n1st: %s\n2nd: %s", seq, rerun)
	}
}
