package harness

import (
	"fmt"
	"io"
	"strings"

	"godsm/dsm"
	"godsm/internal/sim"
)

// breakdownOrder is the category order of the paper's stacked bars, top to
// bottom (rendered here left to right).
var breakdownOrder = []sim.Category{
	dsm.CatPrefetchOv, dsm.CatMTOv, dsm.CatSyncIdle, dsm.CatMemIdle, dsm.CatDSM, dsm.CatBusy,
}

var breakdownShort = map[sim.Category]string{
	dsm.CatPrefetchOv: "PfOv",
	dsm.CatMTOv:       "MTOv",
	dsm.CatSyncIdle:   "Sync",
	dsm.CatMemIdle:    "Mem",
	dsm.CatDSM:        "DSM",
	dsm.CatBusy:       "Busy",
}

// writeBreakdownHeader prints the column legend for breakdown tables.
func writeBreakdownHeader(w io.Writer) {
	fmt.Fprintf(w, "%-10s %-4s", "App", "Cfg")
	for _, c := range breakdownOrder {
		fmt.Fprintf(w, " %6s", breakdownShort[c])
	}
	fmt.Fprintf(w, " %7s %12s\n", "Norm", "Elapsed")
}

// writeBreakdownRow prints one normalized breakdown row (percentages of the
// reference elapsed time, the paper's normalization).
func writeBreakdownRow(w io.Writer, app string, v Variant, rep *dsm.Report, ref sim.Time) {
	norm := rep.Breakdown.Normalized(ref)
	label := app
	fmt.Fprintf(w, "%-10s %-4s", label, v)
	total := 0.0
	for _, c := range breakdownOrder {
		fmt.Fprintf(w, " %6.1f", norm[c])
		total += norm[c]
	}
	fmt.Fprintf(w, " %7.1f %10dus\n", total, rep.Elapsed/sim.Microsecond)
}

// bar renders an ASCII stacked bar of the normalized breakdown, 1 char per
// 2 percent, using one letter per category.
func bar(rep *dsm.Report, ref sim.Time) string {
	letters := map[sim.Category]byte{
		dsm.CatBusy:       'B',
		dsm.CatDSM:        'D',
		dsm.CatMemIdle:    'M',
		dsm.CatSyncIdle:   'S',
		dsm.CatPrefetchOv: 'p',
		dsm.CatMTOv:       't',
	}
	norm := rep.Breakdown.Normalized(ref)
	var sb strings.Builder
	for _, c := range []sim.Category{dsm.CatBusy, dsm.CatDSM, dsm.CatMemIdle, dsm.CatSyncIdle, dsm.CatPrefetchOv, dsm.CatMTOv} {
		n := int(norm[c]/2 + 0.5)
		for i := 0; i < n; i++ {
			sb.WriteByte(letters[c])
		}
	}
	return sb.String()
}

// kb formats bytes as the paper's KByte columns.
func kb(b int64) string { return fmt.Sprintf("%d", b/1024) }

// usec formats a duration in microseconds.
func usec(t sim.Time) string { return fmt.Sprintf("%d", t/sim.Microsecond) }
