package harness

import (
	"fmt"
	"io"

	"godsm/dsm"
	"godsm/internal/sim"
)

// Ablations of the design choices the protocol (and the paper) relies on.
// Each toggle removes one mechanism; the experiment reports the resulting
// slowdown (or speedup) relative to the full system under the configuration
// where the mechanism matters most.
type ablation struct {
	name    string
	detail  string
	apps    []string
	variant Variant
	mutate  func(*dsm.Config)
}

var ablations = []ablation{
	{
		name:    "no-lock-token-caching",
		detail:  "locks return to their manager at every release (centralized locks)",
		apps:    []string{"WATER-NSQ", "WATER-SP", "OCEAN"},
		variant: VarO,
		mutate:  func(c *dsm.Config) { c.NoTokenCache = true },
	},
	{
		name:    "reliable-prefetches",
		detail:  "prefetch messages are never dropped (paper §3.1 argues against)",
		apps:    []string{"FFT", "RADIX", "LU-NCONT"},
		variant: VarP,
		mutate:  func(c *dsm.Config) { c.PfReliable = true },
	},
	{
		name:    "no-redundant-pf-suppression",
		detail:  "sibling threads issue duplicate prefetches (paper §5.1 opt. 1)",
		apps:    []string{"SOR", "OCEAN", "WATER-NSQ"},
		variant: Var4TP,
		mutate:  func(c *dsm.Config) { c.NoPfSuppress = true },
	},
	{
		name:    "no-radix-throttling",
		detail:  "RADIX combined mode issues every prefetch (paper §5.1 opt. 2)",
		apps:    []string{"RADIX"},
		variant: Var2TP,
		mutate:  func(c *dsm.Config) { c.ThrottlePf = 0 },
	},
	{
		name:    "eager-release-consistency",
		detail:  "write notices broadcast at every release (Munin-style) instead of lazily",
		apps:    []string{"OCEAN", "WATER-NSQ", "SOR"},
		variant: VarO,
		mutate:  func(c *dsm.Config) { c.EagerRC = true },
	},
	{
		name:    "shared-prefetch-heap",
		detail:  "prefetch cache counts toward the GC trigger (paper footnote 6)",
		apps:    []string{"LU-NCONT", "FFT"},
		variant: VarP,
		mutate: func(c *dsm.Config) {
			c.PfHeapSharedGC = true
			c.GCThreshold = 256 * 1024
		},
	},
}

// RunAblations regenerates the design-choice ablation table. Each row runs
// the full system and the ablated system under the same configuration and
// reports the elapsed-time ratio (>1 means the mechanism was helping). All
// rows simulate concurrently on the session's worker pool; rendering waits
// and prints in table order.
func RunAblations(s *Session, w io.Writer) error {
	type row struct {
		ab        ablation
		app       string
		base, abl *dsm.Report
	}
	var rows []*row
	for _, ab := range ablations {
		for _, app := range ab.apps {
			if contains(s.AppNames(), app) {
				rows = append(rows, &row{ab: ab, app: app})
			}
		}
	}
	if err := each(len(rows), func(i int) error {
		r := rows[i]
		// Ablated runs bypass the variant cache (configs differ).
		cfg := s.Config(r.app, r.ab.variant)
		if r.ab.name == "shared-prefetch-heap" {
			// Compare against the same GC threshold with the separate
			// heap, so the ratio isolates the heap-sharing choice.
			cfgBase := cfg
			cfgBase.GCThreshold = 256 * 1024
			base, err := s.RunConfig(r.app, cfgBase)
			if err != nil {
				return err
			}
			r.base = base
		} else {
			base, err := s.Run(r.app, r.ab.variant)
			if err != nil {
				return err
			}
			r.base = base
		}
		r.ab.mutate(&cfg)
		abl, err := s.RunConfig(r.app, cfg)
		if err != nil {
			return err
		}
		r.abl = abl
		return nil
	}); err != nil {
		return err
	}

	fmt.Fprintln(w, "Ablation study: cost of removing each design mechanism")
	fmt.Fprintf(w, "%-28s %-10s %-5s %12s %12s %8s\n",
		"Mechanism removed", "App", "Cfg", "Full", "Ablated", "Ratio")
	i := 0
	for _, ab := range ablations {
		for ; i < len(rows) && rows[i].ab.name == ab.name; i++ {
			r := rows[i]
			fmt.Fprintf(w, "%-28s %-10s %-5s %10dus %10dus %7.2fx\n",
				ab.name, r.app, ab.variant,
				r.base.Elapsed/sim.Microsecond, r.abl.Elapsed/sim.Microsecond,
				float64(r.abl.Elapsed)/float64(r.base.Elapsed))
		}
		fmt.Fprintf(w, "  (%s)\n", ab.detail)
	}
	return nil
}

func contains(ss []string, v string) bool {
	for _, s := range ss {
		if s == v {
			return true
		}
	}
	return false
}

func init() {
	Experiments = append(Experiments, Experiment{
		ID:    "ablation",
		Title: "Ablation study of the design mechanisms",
		Run:   RunAblations,
	})
}
