package harness

import (
	"fmt"
	"io"

	"godsm/dsm"
)

// Race-checked application grid: every application under the
// happens-before race detector, across the protocol-comparison grid
// ({O, P, 4T, 4TP} × {lrc, erc, hlrc}). The detector proves the data-
// race-freedom contract release consistency demands: a racy application
// would produce protocol-dependent results and invalidate every
// cross-protocol comparison, so this experiment is the evidence that the
// repo's comparisons compare like with like. Outputs are additionally
// verified against the sequential goldens; any detected race aborts the
// experiment with the two-site RaceError report.

// RunRaceCheck runs the race-checked grid and renders a per-protocol
// elapsed-time table. Elapsed times are identical to an unchecked run's —
// the detector charges no simulated time — so the table doubles as a
// byte-level witness that checking is observation-free.
func RunRaceCheck(s *Session, w io.Writer) error {
	type cell struct {
		app   string
		v     Variant
		proto string
		rep   *dsm.Report
	}
	var cells []*cell
	idx := make(map[string]*cell)
	for _, proto := range ProtocolNames {
		for _, app := range s.AppNames() {
			for _, v := range ProtocolVariants {
				c := &cell{app: app, v: v, proto: proto}
				cells = append(cells, c)
				idx[c.app+"/"+c.proto+"/"+string(c.v)] = c
			}
		}
	}
	if err := each(len(cells), func(i int) error {
		c := cells[i]
		rep, err := s.RunRaceChecked(c.app, c.v, c.proto)
		if err != nil {
			return err
		}
		c.rep = rep
		return nil
	}); err != nil {
		return err
	}

	fmt.Fprintln(w, "Race-checked grid: every access checked against the Lock/Barrier happens-before order, outputs verified")
	fmt.Fprintf(w, "%-10s %-4s", "App", "Cfg")
	for _, proto := range ProtocolNames {
		fmt.Fprintf(w, " %12s", proto)
	}
	fmt.Fprintln(w)
	for _, app := range s.AppNames() {
		for _, v := range ProtocolVariants {
			fmt.Fprintf(w, "%-10s %-4s", app, v)
			for _, proto := range ProtocolNames {
				fmt.Fprintf(w, " %10sus", usec(idx[app+"/"+proto+"/"+string(v)].rep.Elapsed))
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "\n%d runs, 0 data races: the applications are data-race-free under every protocol\n", len(cells))
	return nil
}

// RunRaceChecked simulates one application/variant/protocol cell with the
// race detector on and golden verification forced, cached and
// singleflighted like the other session runs.
func (s *Session) RunRaceChecked(app string, v Variant, protocol string) (*dsm.Report, error) {
	return s.cached(app+"/"+protocol+"/"+string(v)+"/raced", func() (*dsm.Report, error) {
		cfg := s.Config(app, v)
		cfg.Protocol = protocol
		cfg.RaceCheck = true
		rep, err := s.runConfig(app, cfg, true)
		if err != nil {
			err = fmt.Errorf("%s/%s under %s with race checking: %w", app, v, protocol, err)
		}
		return rep, err
	})
}

func init() {
	Experiments = append(Experiments, Experiment{
		ID:    "racecheck",
		Title: "Race-checked grid: happens-before detection over every app x protocol",
		Run:   RunRaceCheck,
	})
}
