package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"godsm/dsm"
	"godsm/internal/proto"
	"godsm/internal/sim"
)

// Node-count scaling of the machine itself (an extension: the paper fixes
// eight workstations on one ATM switch). For each protocol and processor
// count the experiment runs the same application twice:
//
//   - baseline: the paper's machine — one switch, the centralized barrier
//     manager on node 0, and (under erc) the O(N) release broadcast;
//   - scaled: the large-machine configuration — fat-tree topology,
//     combining-tree barrier, and (under erc, whose release broadcast is the
//     O(N) path being replaced) gossip write-notice dissemination. lrc has
//     no broadcast and hlrc distributes notices through page homes, so they
//     scale only the topology and barrier.
//
// Reported per cell: elapsed time, total messages, the barrier service
// time (mean per-node cumulative barrier stall — under the centralized
// barrier this is dominated by the manager serializing N arrivals and N-1
// release sends through one node and one link), barrier and notice message
// counts, and the busiest link's peak backlog. A machine-readable snapshot
// lands in BENCH_nodescale.json when the session's NodeScaleJSON option is
// set.

// NodeScaleDefaultProcs is the default processor sweep.
var NodeScaleDefaultProcs = []int{8, 64, 256, 1024}

// nodeScaleDefaultApps keeps the sweep affordable: SOR is barrier-dominated
// (the machine cost shows directly) and FFT's transposes stress the
// interconnect with all-to-all traffic.
var nodeScaleDefaultApps = []string{"SOR", "FFT"}

// nodeScaleSeed seeds the gossip peer choice for every scaled run.
const nodeScaleSeed = 6

// NodeScaleRow is one cell of the sweep in the JSON snapshot.
type NodeScaleRow struct {
	App       string `json:"app"`
	Protocol  string `json:"protocol"`
	Procs     int    `json:"procs"`
	Machine   string `json:"machine"` // "baseline" or "scaled"
	ElapsedUs int64  `json:"elapsed_us"`
	Msgs      int64  `json:"msgs"`
	// BarrierUs is the barrier subsystem's service time as experienced per
	// node: the mean cumulative barrier stall. It charges the centralized
	// manager for everything it serializes — N arrival services and N-1
	// release sends funnelled through node 0's CPU and outbound link — which
	// the waiting leaves pay for in release-delivery lateness.
	BarrierUs    int64  `json:"barrier_us"`
	BarrierMsgs  int64  `json:"barrier_msgs"` // arrivals + releases on the wire
	NoticeMsgs   int64  `json:"notice_msgs"`  // eager-notice + gossip messages
	GossipRounds int64  `json:"gossip_rounds"`
	PeakLink     string `json:"peak_link"`
	PeakLinkUs   int64  `json:"peak_link_us"`
}

// NodeScaleCheck is one acceptance comparison in the JSON snapshot: at 64+
// nodes the scaled machine must strictly beat the baseline.
type NodeScaleCheck struct {
	App             string `json:"app"`
	Protocol        string `json:"protocol"`
	Procs           int    `json:"procs"`
	BarrierLower    bool   `json:"barrier_lower"`
	NoticeMsgsLower bool   `json:"notice_msgs_lower,omitempty"` // erc only
}

type nodeScaleSnapshot struct {
	Scale  string           `json:"scale"`
	Apps   []string         `json:"apps"`
	Procs  []int            `json:"procs"`
	Rows   []NodeScaleRow   `json:"rows"`
	Checks []NodeScaleCheck `json:"checks"`
}

func (s *Session) nodeScaleProcs() []int {
	if len(s.Opt.NodeScaleProcs) > 0 {
		return s.Opt.NodeScaleProcs
	}
	return NodeScaleDefaultProcs
}

func (s *Session) nodeScaleApps() []string {
	if len(s.Opt.Apps) > 0 {
		return s.Opt.Apps
	}
	return nodeScaleDefaultApps
}

// nodeScaleConfig builds one cell's configuration.
func (s *Session) nodeScaleConfig(app, protocol string, procs int, scaled bool) dsm.Config {
	cfg := s.Config(app, VarO)
	cfg.Procs = procs
	cfg.Protocol = protocol
	if scaled {
		cfg.Net.Topology = "fattree"
		cfg.Barrier = "tree"
		// Gossip replaces erc's O(N) release broadcast. lrc sends no eager
		// notices (gossip would only add traffic) and hlrc routes notices
		// through page homes, so both keep their notice paths.
		if protocol == "erc" {
			cfg.Gossip = true
			cfg.GossipSeed = nodeScaleSeed
		}
	}
	return cfg
}

// RunNodeScale runs the machine-scaling sweep.
func RunNodeScale(s *Session, w io.Writer) error {
	apps := s.nodeScaleApps()
	procsList := s.nodeScaleProcs()
	protocols := ProtocolNames
	machines := []string{"baseline", "scaled"}

	type cell struct {
		row NodeScaleRow
		rep *dsm.Report
	}
	var cells []*cell
	idx := make(map[string]*cell)
	key := func(app, protocol string, procs int, machine string) string {
		return fmt.Sprintf("%s/%s/%d/%s", app, protocol, procs, machine)
	}
	for _, app := range apps {
		for _, protocol := range protocols {
			for _, procs := range procsList {
				for _, machine := range machines {
					c := &cell{row: NodeScaleRow{App: app, Protocol: protocol, Procs: procs, Machine: machine}}
					cells = append(cells, c)
					idx[key(app, protocol, procs, machine)] = c
				}
			}
		}
	}

	if err := each(len(cells), func(i int) error {
		c := cells[i]
		cfg := s.nodeScaleConfig(c.row.App, c.row.Protocol, c.row.Procs, c.row.Machine == "scaled")
		rep, err := s.RunConfig(c.row.App, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", key(c.row.App, c.row.Protocol, c.row.Procs, c.row.Machine), err)
		}
		c.rep = rep
		sum := rep.Sum()
		c.row.ElapsedUs = int64(rep.Elapsed / sim.Microsecond)
		c.row.Msgs = rep.MsgsTotal
		c.row.BarrierUs = int64(sum.BarrierStall / sim.Time(len(rep.Nodes)) / sim.Microsecond)
		c.row.BarrierMsgs = rep.KindMsgs[proto.KindBarArrive] + rep.KindMsgs[proto.KindBarRelease]
		c.row.NoticeMsgs = rep.KindMsgs[proto.KindEagerNotice] + rep.KindMsgs[proto.KindGossip]
		c.row.GossipRounds = sum.GossipRounds
		c.row.PeakLink = rep.PeakLink
		c.row.PeakLinkUs = int64(rep.PeakLinkBacklog / sim.Microsecond)
		return nil
	}); err != nil {
		return err
	}

	fmt.Fprintln(w, "Node scaling: one switch + central barrier (+ erc broadcast) vs fat tree + combining tree + gossip")
	for _, app := range apps {
		for _, protocol := range protocols {
			fmt.Fprintf(w, "\n%s under %s\n", app, protocol)
			fmt.Fprintf(w, "%-6s %-9s %12s %9s %10s %8s %8s %7s %14s %9s\n",
				"Procs", "Machine", "Elapsed", "Msgs", "BarStall", "BarMsgs", "Notices", "Rounds", "PeakLink", "PeakWait")
			for _, procs := range procsList {
				for _, machine := range machines {
					r := idx[key(app, protocol, procs, machine)].row
					fmt.Fprintf(w, "%-6d %-9s %10dus %9d %8dus %8d %8d %7d %14s %7dus\n",
						procs, machine, r.ElapsedUs, r.Msgs, r.BarrierUs,
						r.BarrierMsgs, r.NoticeMsgs, r.GossipRounds, r.PeakLink, r.PeakLinkUs)
				}
			}
		}
	}

	// Acceptance summary: at 64+ nodes the scaled machine must strictly
	// lower the barrier service time, and under erc the notice message
	// count.
	var checks []NodeScaleCheck
	fmt.Fprintln(w, "\nScaled-machine wins at 64+ nodes (strictly lower than baseline)")
	fmt.Fprintf(w, "%-10s %-6s %-6s %12s %12s\n", "App", "Proto", "Procs", "BarStall", "NoticeMsgs")
	for _, app := range apps {
		for _, protocol := range protocols {
			for _, procs := range procsList {
				if procs < 64 {
					continue
				}
				base := idx[key(app, protocol, procs, "baseline")].row
				scal := idx[key(app, protocol, procs, "scaled")].row
				ck := NodeScaleCheck{
					App: app, Protocol: protocol, Procs: procs,
					BarrierLower: scal.BarrierUs < base.BarrierUs,
				}
				notices := "-"
				if protocol == "erc" {
					ck.NoticeMsgsLower = scal.NoticeMsgs < base.NoticeMsgs
					notices = verdict(ck.NoticeMsgsLower)
				}
				checks = append(checks, ck)
				fmt.Fprintf(w, "%-10s %-6s %-6d %12s %12s\n",
					app, protocol, procs, verdict(ck.BarrierLower), notices)
			}
		}
	}

	if path := s.Opt.NodeScaleJSON; path != "" {
		snap := nodeScaleSnapshot{
			Scale: s.Opt.Scale.String(),
			Apps:  apps,
			Procs: procsList,
		}
		for _, c := range cells {
			snap.Rows = append(snap.Rows, c.row)
		}
		snap.Checks = checks
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", path)
	}
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "lower ok"
	}
	return "NOT LOWER"
}

func init() {
	Experiments = append(Experiments, Experiment{
		ID:    "nodescale",
		Title: "Machine scaling: topologies, combining-tree barriers, gossip (extension)",
		Run:   RunNodeScale,
	})
}
