package harness

import "time"

// Wallclock returns the host's wall-clock time. It is the single
// sanctioned wall-clock read in the module — report timing and JSON date
// stamps only, never anything a simulation result depends on; simulated
// time comes from sim.Kernel. dsmvet's walltime analyzer rejects every
// other time.Now/time.Since in non-test code, so new host-time needs must
// either route through here or argue their own //dsmvet:allow annotation
// in review.
func Wallclock() time.Time {
	return time.Now() //dsmvet:allow walltime — the one sanctioned wall-clock read
}
