// Package harness regenerates every table and figure of the paper's
// evaluation: Figure 1 (baseline breakdown), Figure 2 + Table 1 + Figure 3
// (prefetching), Figure 4 + Table 2 (multithreading), and Figure 5
// (combined). Each experiment runs the applications under the relevant
// configurations and renders the same rows/series the paper reports.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"godsm/dsm"
	"godsm/internal/apps"
)

// Variant names a run configuration using the paper's labels: "O"
// (original), "P" (prefetching), "2T"/"4T"/"8T" (multithreading), and
// "2TP"/"4TP"/"8TP" (combined: multithreading on synchronization only,
// prefetching for memory latency).
type Variant string

// The paper's configurations.
const (
	VarO   Variant = "O"
	VarP   Variant = "P"
	Var2T  Variant = "2T"
	Var4T  Variant = "4T"
	Var8T  Variant = "8T"
	Var2TP Variant = "2TP"
	Var4TP Variant = "4TP"
	Var8TP Variant = "8TP"
)

// threadsOf decodes the leading thread count ("4TP" → 4); 1 for O/P.
func threadsOf(v Variant) int {
	switch v[0] {
	case '2':
		return 2
	case '4':
		return 4
	case '8':
		return 8
	default:
		return 1
	}
}

// prefetching reports whether the variant executes inserted prefetches.
func prefetching(v Variant) bool {
	return v == VarP || v[len(v)-1] == 'P'
}

// AllVariants lists the paper's eight configurations in Figure 5 order.
var AllVariants = []Variant{VarO, Var2T, Var4T, Var8T, VarP, Var2TP, Var4TP, Var8TP}

// Options configure a harness session.
type Options struct {
	Procs int
	Scale apps.Scale
	// Verify re-checks application output against the goldens (slower).
	Verify bool
	// Apps restricts the application list (nil = all eight).
	Apps []string
	// Workers bounds how many simulations may run concurrently
	// (0 = runtime.GOMAXPROCS(0)). Each simulation is single-threaded and
	// deterministic; parallelism exists only between independent
	// simulations, so results are identical for every worker count.
	Workers int
	// Faults injects deterministic network faults into every run of the
	// session (the zero plan injects nothing). The faults experiment uses
	// its own escalating schedules instead.
	Faults dsm.FaultPlan
	// Protocol selects the coherence backend for every run of the session
	// ("" = the default, lrc). The protocols experiment compares all
	// backends regardless of this option.
	Protocol string
	// HomePolicy selects the home-based backend's page→home assignment for
	// every run of the session ("" = static). Meaningful only when Protocol
	// is "hlrc"; the adaptive experiment sweeps policies regardless.
	HomePolicy string
	// NodeScaleProcs overrides the nodescale experiment's processor sweep
	// (nil = NodeScaleDefaultProcs). Fat-tree routing assumes powers of two.
	NodeScaleProcs []int
	// NodeScaleJSON, when non-empty, makes the nodescale experiment write
	// its machine-readable snapshot to this path.
	NodeScaleJSON string
	// RaceCheck runs every simulation of the session under the
	// happens-before race detector (dsm.Config.RaceCheck): a data race in
	// any application surfaces as a run error carrying the *dsm.RaceError.
	// The racecheck experiment forces this on regardless of the option.
	RaceCheck bool
}

// DefaultOptions mirrors the paper's platform: 8 processors, small scale.
func DefaultOptions() Options {
	return Options{Procs: 8, Scale: apps.Small}
}

// Session caches run results so that experiments sharing configurations
// (e.g. Table 1 and Figure 3) do not re-simulate, and fans independent
// runs out over a bounded worker pool.
//
// Thread-safety contract: every Session method may be called from any
// number of goroutines concurrently. Run deduplicates in-flight work
// (singleflight): concurrent calls for the same app/variant trigger exactly
// one simulation and all receive the same *dsm.Report. The number of
// simulations executing at once never exceeds Options.Workers, no matter
// how many goroutines call in; excess callers queue. Experiment render
// functions may therefore run concurrently against one shared Session.
type Session struct {
	Opt Options

	sem chan struct{} // counting semaphore bounding concurrent simulations

	mu    sync.Mutex
	cache map[string]*flight

	simCount atomic.Int64 // simulations executed (cache misses + RunConfig)
	simWall  atomic.Int64 // cumulative wall nanoseconds spent simulating
}

// flight is one cached (possibly still running) simulation.
type flight struct {
	done chan struct{} // closed when rep/err are valid
	rep  *dsm.Report
	err  error
}

// NewSession creates a harness session.
func NewSession(opt Options) *Session {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Session{
		Opt:   opt,
		sem:   make(chan struct{}, workers),
		cache: make(map[string]*flight),
	}
}

// Workers returns the effective worker-pool size.
func (s *Session) Workers() int { return cap(s.sem) }

// SimStats returns how many simulations have executed and their cumulative
// single-threaded wall time. Comparing the latter with the session's
// overall wall time gives the effective parallel speedup.
func (s *Session) SimStats() (runs int64, wall time.Duration) {
	return s.simCount.Load(), time.Duration(s.simWall.Load())
}

// AppNames returns the selected application names in figure order.
func (s *Session) AppNames() []string {
	if len(s.Opt.Apps) > 0 {
		return s.Opt.Apps
	}
	names := make([]string, len(apps.All))
	for i, a := range apps.All {
		names[i] = a.Name
	}
	return names
}

// Config builds the dsm.Config for an application/variant pair, encoding
// the paper's mode choices: "nT" switches on both miss and sync; "nTP"
// switches on sync only (Section 5); RADIX throttles every other prefetch
// in combined mode (Section 5.1).
func (s *Session) Config(app string, v Variant) dsm.Config {
	cfg := dsm.DefaultConfig()
	cfg.Procs = s.Opt.Procs
	cfg.ThreadsPerProc = threadsOf(v)
	cfg.Prefetch = prefetching(v)
	if cfg.ThreadsPerProc > 1 {
		cfg.SwitchOnSync = true
		cfg.SwitchOnMiss = !cfg.Prefetch // combined mode spins on misses
	}
	if app == "RADIX" && cfg.Prefetch && cfg.ThreadsPerProc > 1 {
		cfg.ThrottlePf = 2
	}
	cfg.Protocol = s.Opt.Protocol
	cfg.HomePolicy = s.Opt.HomePolicy
	cfg.Net.Faults = s.Opt.Faults
	cfg.RaceCheck = s.Opt.RaceCheck
	return cfg
}

// Run simulates one application under one variant (cached, singleflight).
// If another goroutine is already simulating the same pair, Run waits for
// its result instead of simulating again — so Fig2's "O" run and Fig4's
// "O" run simulate once even when the experiments render concurrently.
func (s *Session) Run(app string, v Variant) (*dsm.Report, error) {
	return s.cached(app+"/"+string(v), func() (*dsm.Report, error) {
		rep, err := s.RunConfig(app, s.Config(app, v))
		if err != nil {
			err = fmt.Errorf("%s/%s: %w", app, v, err)
		}
		return rep, err
	})
}

// RunProtocol simulates one application under one variant with the named
// coherence protocol, with golden-output verification forced on (a protocol
// comparison is only meaningful between runs that all computed the right
// answer). Results are cached and singleflighted like Run's.
func (s *Session) RunProtocol(app string, v Variant, protocol string) (*dsm.Report, error) {
	return s.RunProtocolPolicy(app, v, protocol, "")
}

// RunProtocolPolicy is RunProtocol with an explicit home policy for the
// home-based backend (empty = the protocol's default assignment). The cache
// key includes the policy, so "hlrc" under different policies are distinct
// runs.
func (s *Session) RunProtocolPolicy(app string, v Variant, protocol, policy string) (*dsm.Report, error) {
	key := app + "/" + protocol
	if policy != "" {
		key += "@" + policy
	}
	return s.cached(key+"/"+string(v)+"/verified", func() (*dsm.Report, error) {
		cfg := s.Config(app, v)
		cfg.Protocol = protocol
		cfg.HomePolicy = policy
		rep, err := s.runConfig(app, cfg, true)
		if err != nil {
			label := protocol
			if policy != "" {
				label += "/" + policy
			}
			err = fmt.Errorf("%s/%s under %s: %w", app, v, label, err)
		}
		return rep, err
	})
}

// cached returns the result stored under key, simulating it with sim on the
// first call. Concurrent calls for the same key trigger exactly one
// simulation and all receive the same result (singleflight).
func (s *Session) cached(key string, sim func() (*dsm.Report, error)) (*dsm.Report, error) {
	s.mu.Lock()
	if f, ok := s.cache[key]; ok {
		s.mu.Unlock()
		<-f.done
		return f.rep, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.cache[key] = f
	s.mu.Unlock()

	f.rep, f.err = sim()
	close(f.done)
	return f.rep, f.err
}

// RunConfig simulates one application under an explicit configuration,
// outside the variant cache (ablations and sweeps use non-variant
// configs). The call counts against the session's worker pool, so
// arbitrarily many goroutines may invoke it concurrently.
func (s *Session) RunConfig(app string, cfg dsm.Config) (*dsm.Report, error) {
	return s.runConfig(app, cfg, s.Opt.Verify)
}

// RunConfigVerified is RunConfig with golden-output verification forced on,
// regardless of the session's Verify option. The chaos soak uses it: under
// fault injection, completing is not enough — the computed results must
// still match the sequential goldens.
func (s *Session) RunConfigVerified(app string, cfg dsm.Config) (*dsm.Report, error) {
	return s.runConfig(app, cfg, true)
}

func (s *Session) runConfig(app string, cfg dsm.Config, verify bool) (*dsm.Report, error) {
	spec, err := apps.ByName(app)
	if err != nil {
		return nil, err
	}
	// Reject bad protocol/knob combinations as a plain error here rather
	// than letting dsm.NewSystem panic inside a worker goroutine.
	if err := dsm.ValidateProtocolConfig(cfg); err != nil {
		return nil, err
	}
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	start := Wallclock()
	sys := dsm.NewSystem(cfg)
	inst := spec.Build(sys, apps.Options{Scale: s.Opt.Scale, Verify: verify})
	rep, err := runSim(sys, inst.Run)
	s.simCount.Add(1)
	s.simWall.Add(int64(Wallclock().Sub(start)))
	if err != nil {
		return nil, err
	}
	if err := inst.Err(); err != nil {
		return nil, fmt.Errorf("verification failed: %w", err)
	}
	return rep, nil
}

// runSim calls sys.Run, converting a *dsm.RaceError panic into a plain
// error: a data race is a property of the application under test, not a
// harness bug, so it must surface as a run failure (with the full
// two-site report) rather than crash the whole experiment fan-out.
func runSim(sys *dsm.System, body func(*dsm.Env)) (rep *dsm.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			re, ok := r.(*dsm.RaceError)
			if !ok {
				panic(r)
			}
			err = re
		}
	}()
	return sys.Run(body), nil
}

// RunKey names one cached simulation: an application/variant pair.
type RunKey struct {
	App     string
	Variant Variant
}

// Grid returns the cross product of the session's selected applications
// and the given variants, in rendering order.
func (s *Session) Grid(variants []Variant) []RunKey {
	var keys []RunKey
	for _, app := range s.AppNames() {
		for _, v := range variants {
			keys = append(keys, RunKey{app, v})
		}
	}
	return keys
}

// Prewarm schedules the given runs on the worker pool and returns
// immediately. Rendering code later calls Run in paper order and picks the
// finished (or in-flight) results out of the cache; errors surface there
// too.
func (s *Session) Prewarm(keys []RunKey) {
	for _, k := range keys {
		go s.Run(k.App, k.Variant)
	}
}

// RunAll simulates the given runs across the worker pool and blocks until
// all complete, returning the first error.
func (s *Session) RunAll(keys []RunKey) error {
	return each(len(keys), func(i int) error {
		_, err := s.Run(keys[i].App, keys[i].Variant)
		return err
	})
}

// each runs job(0) … job(n-1) concurrently, waits for all of them, and
// returns the lowest-index error. Jobs typically call Run or RunConfig,
// which bound actual simulation concurrency at the session's worker pool —
// each itself spawns freely.
func each(n int, job func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = job(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(s *Session, w io.Writer) error
	// Variants is the cached-run grid the experiment reads (crossed with
	// the session's applications); drivers prewarm it so the whole grid
	// simulates in parallel while rendering stays in paper order. Nil for
	// experiments that fan out over explicit configs internally.
	Variants []Variant
}

// Experiments lists every artifact in paper order.
var Experiments = []Experiment{
	{ID: "fig1", Title: "Figure 1: execution time breakdown, TreadMarks baseline",
		Run: RunFig1, Variants: []Variant{VarO}},
	{ID: "fig2", Title: "Figure 2: performance impact of prefetching",
		Run: RunFig2, Variants: []Variant{VarO, VarP}},
	{ID: "table1", Title: "Table 1: prefetching statistics",
		Run: RunTable1, Variants: []Variant{VarO, VarP}},
	{ID: "fig3", Title: "Figure 3: breakdown of the original remote misses",
		Run: RunFig3, Variants: []Variant{VarP}},
	{ID: "fig4", Title: "Figure 4: performance impact of multithreading",
		Run: RunFig4, Variants: []Variant{VarO, Var2T, Var4T, Var8T}},
	{ID: "table2", Title: "Table 2: multithreading statistics",
		Run: RunTable2, Variants: []Variant{VarO, Var2T, Var4T, Var8T}},
	{ID: "fig5", Title: "Figure 5: combining prefetching and multithreading",
		Run: RunFig5, Variants: AllVariants},
}

// PrewarmKeys returns the union of the cached-run grids the given
// experiments will read, deduplicated, in first-use order.
func PrewarmKeys(s *Session, exps []Experiment) []RunKey {
	seen := make(map[RunKey]bool)
	var keys []RunKey
	for _, e := range exps {
		for _, k := range s.Grid(e.Variants) {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	return keys
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("unknown experiment %q", id)
}
