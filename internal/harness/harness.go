// Package harness regenerates every table and figure of the paper's
// evaluation: Figure 1 (baseline breakdown), Figure 2 + Table 1 + Figure 3
// (prefetching), Figure 4 + Table 2 (multithreading), and Figure 5
// (combined). Each experiment runs the applications under the relevant
// configurations and renders the same rows/series the paper reports.
package harness

import (
	"fmt"
	"io"

	"godsm/dsm"
	"godsm/internal/apps"
)

// Variant names a run configuration using the paper's labels: "O"
// (original), "P" (prefetching), "2T"/"4T"/"8T" (multithreading), and
// "2TP"/"4TP"/"8TP" (combined: multithreading on synchronization only,
// prefetching for memory latency).
type Variant string

// The paper's configurations.
const (
	VarO   Variant = "O"
	VarP   Variant = "P"
	Var2T  Variant = "2T"
	Var4T  Variant = "4T"
	Var8T  Variant = "8T"
	Var2TP Variant = "2TP"
	Var4TP Variant = "4TP"
	Var8TP Variant = "8TP"
)

// threadsOf decodes the leading thread count ("4TP" → 4); 1 for O/P.
func threadsOf(v Variant) int {
	switch v[0] {
	case '2':
		return 2
	case '4':
		return 4
	case '8':
		return 8
	default:
		return 1
	}
}

// prefetching reports whether the variant executes inserted prefetches.
func prefetching(v Variant) bool {
	return v == VarP || v[len(v)-1] == 'P'
}

// Options configure a harness session.
type Options struct {
	Procs int
	Scale apps.Scale
	// Verify re-checks application output against the goldens (slower).
	Verify bool
	// Apps restricts the application list (nil = all eight).
	Apps []string
}

// DefaultOptions mirrors the paper's platform: 8 processors, small scale.
func DefaultOptions() Options {
	return Options{Procs: 8, Scale: apps.Small}
}

// Session caches run results so that experiments sharing configurations
// (e.g. Table 1 and Figure 3) do not re-simulate.
type Session struct {
	Opt   Options
	cache map[string]*dsm.Report
}

// NewSession creates a harness session.
func NewSession(opt Options) *Session {
	return &Session{Opt: opt, cache: make(map[string]*dsm.Report)}
}

// AppNames returns the selected application names in figure order.
func (s *Session) AppNames() []string {
	if len(s.Opt.Apps) > 0 {
		return s.Opt.Apps
	}
	names := make([]string, len(apps.All))
	for i, a := range apps.All {
		names[i] = a.Name
	}
	return names
}

// Config builds the dsm.Config for an application/variant pair, encoding
// the paper's mode choices: "nT" switches on both miss and sync; "nTP"
// switches on sync only (Section 5); RADIX throttles every other prefetch
// in combined mode (Section 5.1).
func (s *Session) Config(app string, v Variant) dsm.Config {
	cfg := dsm.DefaultConfig()
	cfg.Procs = s.Opt.Procs
	cfg.ThreadsPerProc = threadsOf(v)
	cfg.Prefetch = prefetching(v)
	if cfg.ThreadsPerProc > 1 {
		cfg.SwitchOnSync = true
		cfg.SwitchOnMiss = !cfg.Prefetch // combined mode spins on misses
	}
	if app == "RADIX" && cfg.Prefetch && cfg.ThreadsPerProc > 1 {
		cfg.ThrottlePf = 2
	}
	return cfg
}

// Run simulates one application under one variant (cached).
func (s *Session) Run(app string, v Variant) (*dsm.Report, error) {
	key := app + "/" + string(v)
	if r, ok := s.cache[key]; ok {
		return r, nil
	}
	spec, err := apps.ByName(app)
	if err != nil {
		return nil, err
	}
	sys := dsm.NewSystem(s.Config(app, v))
	inst := spec.Build(sys, apps.Options{Scale: s.Opt.Scale, Verify: s.Opt.Verify})
	rep := sys.Run(inst.Run)
	if err := inst.Err(); err != nil {
		return nil, fmt.Errorf("%s/%s: verification failed: %w", app, v, err)
	}
	s.cache[key] = rep
	return rep, nil
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(s *Session, w io.Writer) error
}

// Experiments lists every artifact in paper order.
var Experiments = []Experiment{
	{"fig1", "Figure 1: execution time breakdown, TreadMarks baseline", RunFig1},
	{"fig2", "Figure 2: performance impact of prefetching", RunFig2},
	{"table1", "Table 1: prefetching statistics", RunTable1},
	{"fig3", "Figure 3: breakdown of the original remote misses", RunFig3},
	{"fig4", "Figure 4: performance impact of multithreading", RunFig4},
	{"table2", "Table 2: multithreading statistics", RunTable2},
	{"fig5", "Figure 5: combining prefetching and multithreading", RunFig5},
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("unknown experiment %q", id)
}
