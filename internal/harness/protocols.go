package harness

import (
	"fmt"
	"io"

	"godsm/dsm"
)

// Protocol comparison: the full application grid under each registered
// coherence backend. The paper evaluates its latency-tolerance techniques on
// TreadMarks' lazy release consistency; this experiment asks how those
// results shift when the underlying protocol changes — eager notice
// broadcast (ERC) and home-based LRC (HLRC), which trades distributed diff
// fetches for whole-page fetches from a static home. Every run verifies its
// output against the sequential golden, so differences are pure protocol
// cost, never wrong answers.

// ProtocolVariants is the comparison grid: original, prefetching,
// multithreading, and combined — each protocol meets every traffic shape.
var ProtocolVariants = []Variant{VarO, VarP, Var4T, Var4TP}

// ProtocolNames lists the compared protocols, baseline first. The adaptive
// backend rides along so the comparison, the race-checked grid, and the
// machine-scaling sweep all cover it; its per-policy grid is the separate
// "adaptive" experiment.
var ProtocolNames = []string{"lrc", "erc", "hlrc", "adp"}

// RunProtocols runs the protocol-comparison grid and renders per-protocol
// tables plus a cross-protocol elapsed-time summary. The traffic columns
// attribute data movement to its protocol mechanism: diff fetches for the
// diff-based backends, home flushes and whole-page home fetches for HLRC.
func RunProtocols(s *Session, w io.Writer) error {
	type cell struct {
		app   string
		v     Variant
		proto string
		rep   *dsm.Report
	}
	var cells []*cell
	idx := make(map[string]*cell)
	for _, proto := range ProtocolNames {
		for _, app := range s.AppNames() {
			for _, v := range ProtocolVariants {
				c := &cell{app: app, v: v, proto: proto}
				cells = append(cells, c)
				idx[c.app+"/"+c.proto+"/"+string(c.v)] = c
			}
		}
	}
	if err := each(len(cells), func(i int) error {
		c := cells[i]
		rep, err := s.RunProtocol(c.app, c.v, c.proto)
		if err != nil {
			return err
		}
		c.rep = rep
		return nil
	}); err != nil {
		return err
	}

	fmt.Fprintln(w, "Protocol comparison: application grid under each coherence backend, outputs verified against goldens")
	for _, proto := range ProtocolNames {
		fmt.Fprintf(w, "\nProtocol %s\n", proto)
		fmt.Fprintf(w, "%-10s %-4s %10s %8s %7s %8s %8s %8s %8s %8s %7s\n",
			"App", "Cfg", "Elapsed", "Msgs", "VolKB", "RemMiss", "DiffAppl", "HomeFlsh", "HomeFtch", "HomeKB", "verify")
		for _, app := range s.AppNames() {
			for _, v := range ProtocolVariants {
				c := idx[app+"/"+proto+"/"+string(v)]
				n := c.rep.Sum()
				fmt.Fprintf(w, "%-10s %-4s %8sus %8d %7s %8d %8d %8d %8d %8s %7s\n",
					app, v, usec(c.rep.Elapsed), c.rep.MsgsTotal, kb(c.rep.BytesTotal),
					n.Misses, n.DiffsApplied, n.HomeFlushes, n.HomeFetches,
					kb(n.HomeFlushBytes+n.HomeFetchBytes), "ok")
			}
		}
	}

	fmt.Fprintln(w, "\nElapsed time relative to lrc (ratio > 1 means slower)")
	fmt.Fprintf(w, "%-10s %-4s", "App", "Cfg")
	for _, proto := range ProtocolNames[1:] {
		fmt.Fprintf(w, " %8s", proto)
	}
	fmt.Fprintln(w)
	for _, app := range s.AppNames() {
		for _, v := range ProtocolVariants {
			base := idx[app+"/lrc/"+string(v)].rep
			fmt.Fprintf(w, "%-10s %-4s", app, v)
			for _, proto := range ProtocolNames[1:] {
				rep := idx[app+"/"+proto+"/"+string(v)].rep
				fmt.Fprintf(w, " %8.3f", float64(rep.Elapsed)/float64(base.Elapsed))
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

func init() {
	Experiments = append(Experiments, Experiment{
		ID:    "protocols",
		Title: "Protocol comparison: LRC vs ERC vs home-based LRC",
		Run:   RunProtocols,
	})
}
