package harness

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"godsm/dsm"
	"godsm/internal/apps"
)

// TestRaceCheckedDeterminism proves the detector's two run-level claims:
// the race-checked grid renders byte-identically whether cells run
// sequentially (workers=1) or fanned out over 8 workers, and checking is
// observation-free — each checked cell's report fingerprint equals the
// unchecked run's for the same app/variant/protocol.
func TestRaceCheckedDeterminism(t *testing.T) {
	opt := Options{Procs: 4, Scale: apps.Unit, Apps: []string{"SOR", "FFT"}}
	optSeq, optPar := opt, opt
	optSeq.Workers = 1
	optPar.Workers = 8
	seq, par := NewSession(optSeq), NewSession(optPar)

	var bufSeq, bufPar bytes.Buffer
	if err := RunRaceCheck(par, &bufPar); err != nil {
		t.Fatal(err)
	}
	if err := RunRaceCheck(seq, &bufSeq); err != nil {
		t.Fatal(err)
	}
	if bufSeq.String() != bufPar.String() {
		t.Errorf("racecheck output differs across worker counts:\nworkers=1:\n%s\nworkers=8:\n%s",
			bufSeq.String(), bufPar.String())
	}

	for _, proto := range ProtocolNames {
		for _, app := range seq.AppNames() {
			for _, v := range ProtocolVariants {
				a, err := seq.RunRaceChecked(app, v, proto)
				if err != nil {
					t.Fatal(err)
				}
				b, err := par.RunRaceChecked(app, v, proto)
				if err != nil {
					t.Fatal(err)
				}
				off, err := seq.RunProtocol(app, v, proto)
				if err != nil {
					t.Fatal(err)
				}
				fa, fb, fo := a.Fingerprint(), b.Fingerprint(), off.Fingerprint()
				if fa != fb {
					t.Errorf("%s/%s under %s: race-checked reports differ across worker counts:\nseq: %s\npar: %s",
						app, v, proto, fa, fb)
				}
				if fa != fo {
					t.Errorf("%s/%s under %s: race checking perturbed the report:\nchecked:   %s\nunchecked: %s",
						app, v, proto, fa, fo)
				}
			}
		}
	}
}

// TestRacyFixturesFailDeterministically: the intentionally racy fixtures
// fail under the detector with a structured two-site RaceError whose
// rendering is byte-identical on every rerun, and the exempt variant runs
// clean with its verification intact.
func TestRacyFixturesFailDeterministically(t *testing.T) {
	run := func(app string) (string, error) {
		s := NewSession(Options{Procs: 4, Scale: apps.Unit, Workers: 1})
		cfg := s.Config(app, VarO)
		cfg.RaceCheck = true
		_, err := s.RunConfig(app, cfg)
		if err == nil {
			return "", nil
		}
		var re *dsm.RaceError
		if !errors.As(err, &re) {
			t.Fatalf("%s: want a *dsm.RaceError, got %T: %v", app, err, err)
		}
		return err.Error(), err
	}

	for _, app := range []string{"RACY", "RACY-STALE"} {
		first, err := run(app)
		if err == nil {
			t.Fatalf("%s ran clean under the race detector", app)
		}
		if !strings.Contains(first, "data race detected") {
			t.Errorf("%s: report missing the race header:\n%s", app, first)
		}
		if !strings.Contains(first, "prev:") || !strings.Contains(first, "curr:") {
			t.Errorf("%s: report missing an access site:\n%s", app, first)
		}
		second, _ := run(app)
		if first != second {
			t.Errorf("%s: race report is not deterministic:\n1st:\n%s\n2nd:\n%s", app, first, second)
		}
	}

	if msg, err := run("RACY-EXEMPT"); err != nil {
		t.Errorf("RACY-EXEMPT: RaceExempt did not suppress the audited race:\n%s", msg)
	}
}
