package harness

import (
	"fmt"
	"io"

	"godsm/dsm"
	"godsm/internal/sim"
)

// Network sensitivity study (an extension beyond the paper's fixed ATM
// platform): sweep the interconnect latency and bandwidth and report how
// the latency-tolerance techniques' benefits move. The paper's conclusion
// predicts both effects: longer latencies enlarge the stall fractions that
// prefetching and multithreading can hide (until prefetches become late),
// while higher bandwidth shrinks the serialization and queueing components
// that neither technique addresses.

type netPoint struct {
	label string
	prop  sim.Time // per-link-traversal latency
	mbps  float64  // link bandwidth
}

var netPoints = []netPoint{
	{"fast-lan (10us, 1Gb)", 10 * sim.Microsecond, 1000},
	{"atm/2 (150us, 155Mb)", 150 * sim.Microsecond, 155},
	{"paper (300us, 155Mb)", 300 * sim.Microsecond, 155},
	{"atm*2 (600us, 155Mb)", 600 * sim.Microsecond, 155},
	{"wan-ish (2ms, 45Mb)", 2 * sim.Millisecond, 45},
}

// RunNetSweep regenerates the network sensitivity table: for each network
// point and a representative app pair, the speedup of P, 4T and the
// combined 4TP over the original.
func RunNetSweep(s *Session, w io.Writer) error {
	fmt.Fprintln(w, "Network sensitivity: speedup of each technique vs. interconnect")
	fmt.Fprintf(w, "%-22s %-10s %10s %8s %8s %8s\n",
		"Network", "App", "O elapsed", "P", "4T", "4TP")
	appsToRun := []string{"SOR", "WATER-NSQ"}
	if len(s.Opt.Apps) > 0 {
		appsToRun = s.Opt.Apps
	}
	for _, np := range netPoints {
		for _, app := range appsToRun {
			reps := make(map[Variant]*dsm.Report)
			for _, v := range []Variant{VarO, VarP, Var4T, Var4TP} {
				cfg := s.Config(app, v)
				cfg.Net.PropDelay = np.prop
				cfg.Net.NsPerByte = 8000 / np.mbps
				rep, err := runConfig(s, app, cfg)
				if err != nil {
					return err
				}
				reps[v] = rep
			}
			fmt.Fprintf(w, "%-22s %-10s %8dus %7.2fx %7.2fx %7.2fx\n",
				np.label, app, reps[VarO].Elapsed/sim.Microsecond,
				reps[VarP].Speedup(reps[VarO]),
				reps[Var4T].Speedup(reps[VarO]),
				reps[Var4TP].Speedup(reps[VarO]))
		}
	}
	return nil
}

func init() {
	Experiments = append(Experiments, Experiment{
		ID:    "netsweep",
		Title: "Network latency/bandwidth sensitivity (extension)",
		Run:   RunNetSweep,
	})
}
