package harness

import (
	"fmt"
	"io"

	"godsm/dsm"
	"godsm/internal/sim"
)

// Network sensitivity study (an extension beyond the paper's fixed ATM
// platform): sweep the interconnect latency and bandwidth and report how
// the latency-tolerance techniques' benefits move. The paper's conclusion
// predicts both effects: longer latencies enlarge the stall fractions that
// prefetching and multithreading can hide (until prefetches become late),
// while higher bandwidth shrinks the serialization and queueing components
// that neither technique addresses.

type netPoint struct {
	label string
	prop  sim.Time // per-link-traversal latency
	mbps  float64  // link bandwidth
}

var netPoints = []netPoint{
	{"fast-lan (10us, 1Gb)", 10 * sim.Microsecond, 1000},
	{"atm/2 (150us, 155Mb)", 150 * sim.Microsecond, 155},
	{"paper (300us, 155Mb)", 300 * sim.Microsecond, 155},
	{"atm*2 (600us, 155Mb)", 600 * sim.Microsecond, 155},
	{"wan-ish (2ms, 45Mb)", 2 * sim.Millisecond, 45},
}

// RunNetSweep regenerates the network sensitivity table: for each network
// point and a representative app pair, the speedup of P, 4T and the
// combined 4TP over the original. All network points simulate concurrently
// on the session's worker pool; rendering prints in table order.
func RunNetSweep(s *Session, w io.Writer) error {
	appsToRun := []string{"SOR", "WATER-NSQ"}
	if len(s.Opt.Apps) > 0 {
		appsToRun = s.Opt.Apps
	}
	sweepVariants := []Variant{VarO, VarP, Var4T, Var4TP}
	type cell struct {
		np  netPoint
		app string
		v   Variant
		rep *dsm.Report
	}
	var cells []*cell
	for _, np := range netPoints {
		for _, app := range appsToRun {
			for _, v := range sweepVariants {
				cells = append(cells, &cell{np: np, app: app, v: v})
			}
		}
	}
	if err := each(len(cells), func(i int) error {
		c := cells[i]
		cfg := s.Config(c.app, c.v)
		cfg.Net.PropDelay = c.np.prop
		cfg.Net.NsPerByte = 8000 / c.np.mbps
		rep, err := s.RunConfig(c.app, cfg)
		c.rep = rep
		return err
	}); err != nil {
		return err
	}

	fmt.Fprintln(w, "Network sensitivity: speedup of each technique vs. interconnect")
	fmt.Fprintf(w, "%-22s %-10s %10s %8s %8s %8s\n",
		"Network", "App", "O elapsed", "P", "4T", "4TP")
	for i := 0; i < len(cells); i += len(sweepVariants) {
		reps := make(map[Variant]*dsm.Report)
		for j, v := range sweepVariants {
			reps[v] = cells[i+j].rep
		}
		fmt.Fprintf(w, "%-22s %-10s %8dus %7.2fx %7.2fx %7.2fx\n",
			cells[i].np.label, cells[i].app, reps[VarO].Elapsed/sim.Microsecond,
			reps[VarP].Speedup(reps[VarO]),
			reps[Var4T].Speedup(reps[VarO]),
			reps[Var4TP].Speedup(reps[VarO]))
	}
	return nil
}

func init() {
	Experiments = append(Experiments, Experiment{
		ID:    "netsweep",
		Title: "Network latency/bandwidth sensitivity (extension)",
		Run:   RunNetSweep,
	})
}
