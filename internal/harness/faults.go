package harness

import (
	"fmt"
	"io"

	"godsm/dsm"
	"godsm/internal/sim"
)

// The chaos soak: every application × variant grid cell runs under
// escalating network fault schedules with golden-output verification forced
// on. Surviving the soak means the reliable transport recovered every lost,
// duplicated and reordered protocol message without corrupting the
// computation — the paper's TreadMarks earned its reliability the same way,
// over a lightweight reliable UDP protocol on a real ATM LAN.

// faultSchedule names one escalation step.
type faultSchedule struct {
	name string
	plan dsm.FaultPlan
}

// faultSchedules escalates from background noise to an actively hostile
// network. Brown-out and stall windows stay well inside the transport's
// retry budget (~570 ms of backoff before the retry cap trips). Each
// schedule has its own seed so the escalation also varies the draw
// sequence.
var faultSchedules = []faultSchedule{
	{"light", dsm.FaultPlan{
		Seed: 1, Loss: 0.01, Dup: 0.005, Reorder: 0.02, MaxJitter: 500 * sim.Microsecond,
	}},
	{"moderate", dsm.FaultPlan{
		Seed: 2, Loss: 0.03, Dup: 0.02, Reorder: 0.05, MaxJitter: 2 * sim.Millisecond,
		Brownouts: []dsm.LinkFault{
			{Node: 1, From: 20 * sim.Millisecond, To: 45 * sim.Millisecond},
		},
	}},
	{"heavy", dsm.FaultPlan{
		Seed: 3, Loss: 0.08, Dup: 0.05, Reorder: 0.10, MaxJitter: 5 * sim.Millisecond,
		Brownouts: []dsm.LinkFault{
			{Node: 2, From: 10 * sim.Millisecond, To: 60 * sim.Millisecond},
			{Node: 0, From: 150 * sim.Millisecond, To: 190 * sim.Millisecond},
		},
		Stalls: []dsm.LinkFault{
			{Node: 1, From: 30 * sim.Millisecond, To: 80 * sim.Millisecond},
		},
	}},
}

// FaultVariants is the soak grid: original, prefetching, multithreading,
// and combined — the transport must hold up under every traffic shape.
var FaultVariants = []Variant{VarO, VarP, Var4T, Var4TP}

// RunFaults runs the chaos soak and renders per-run transport statistics.
// Every run verifies its output against the sequential golden; a schedule
// whose faults never exercised the transport (all counters zero) is an
// error, since it would mean the soak soaked nothing.
func RunFaults(s *Session, w io.Writer) error {
	type cell struct {
		app string
		v   Variant
		rep *dsm.Report
	}
	fmt.Fprintln(w, "Chaos soak: full grid under escalating fault schedules, outputs verified against goldens")
	for _, sched := range faultSchedules {
		cells := make([]*cell, 0, len(s.AppNames())*len(FaultVariants))
		for _, app := range s.AppNames() {
			for _, v := range FaultVariants {
				cells = append(cells, &cell{app: app, v: v})
			}
		}
		if err := each(len(cells), func(i int) error {
			c := cells[i]
			cfg := s.Config(c.app, c.v)
			cfg.Net.Faults = sched.plan
			rep, err := s.RunConfigVerified(c.app, cfg)
			if err != nil {
				return fmt.Errorf("%s/%s under %s faults: %w", c.app, c.v, sched.name, err)
			}
			c.rep = rep
			return nil
		}); err != nil {
			return err
		}

		p := sched.plan
		fmt.Fprintf(w, "\nSchedule %-8s loss=%.1f%% dup=%.1f%% reorder=%.1f%% jitter<=%s brownouts=%d stalls=%d\n",
			sched.name, 100*p.Loss, 100*p.Dup, 100*p.Reorder, usec(p.MaxJitter)+"us",
			len(p.Brownouts), len(p.Stalls))
		fmt.Fprintf(w, "%-10s %-4s %10s %7s %7s %8s %7s %8s %8s %7s\n",
			"App", "Cfg", "Elapsed", "Retx", "Tmout", "DupSupp", "Acks", "MaxRTO", "NetDrop", "verify")
		var retx, tmout, dups int64
		for _, c := range cells {
			n := c.rep.Sum()
			retx += n.Retransmits
			tmout += n.Timeouts
			dups += n.DupSuppressed
			fmt.Fprintf(w, "%-10s %-4s %8sus %7d %7d %8d %7d %6sms %8d %7s\n",
				c.app, c.v, usec(c.rep.Elapsed),
				n.Retransmits, n.Timeouts, n.DupSuppressed, n.AcksSent,
				fmt.Sprint(n.MaxBackoff/sim.Millisecond), c.rep.Drops, "ok")
		}
		if retx == 0 && tmout == 0 && dups == 0 {
			return fmt.Errorf("schedule %s: no retransmits, timeouts or suppressed duplicates across the grid — faults were not injected", sched.name)
		}
		fmt.Fprintf(w, "schedule totals: %d retransmits, %d timeouts, %d duplicates suppressed\n",
			retx, tmout, dups)
	}
	return nil
}

func init() {
	Experiments = append(Experiments, Experiment{
		ID:    "faults",
		Title: "Chaos soak: fault injection vs the reliable transport",
		Run:   RunFaults,
	})
}
