package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"godsm/dsm"
	"godsm/internal/apps"
	"godsm/internal/event"
)

// Adaptive-experiment determinism tests: the whole backend grid — including
// the adaptive backend's mode switches and the dynamic home policies — must
// render byte-identically at any worker count, stay byte-identical in its
// trace output, and run clean under the happens-before race detector.

// TestAdaptiveCrossWorkerDeterminism renders the adaptive experiment with
// workers=1 and workers=8 and demands byte-identical output, then compares
// every backend cell's report fingerprint across the two sessions. Every
// cell also golden-verifies (RunAdaptive runs with verification on).
func TestAdaptiveCrossWorkerDeterminism(t *testing.T) {
	opt := Options{Procs: 4, Scale: apps.Unit, Apps: []string{"SOR", "FFT"}}
	optSeq, optPar := opt, opt
	optSeq.Workers = 1
	optPar.Workers = 8
	seq, par := NewSession(optSeq), NewSession(optPar)

	var bufSeq, bufPar bytes.Buffer
	if err := RunAdaptive(par, &bufPar); err != nil {
		t.Fatal(err)
	}
	if err := RunAdaptive(seq, &bufSeq); err != nil {
		t.Fatal(err)
	}
	if bufSeq.String() != bufPar.String() {
		t.Errorf("adaptive output differs across worker counts:\nworkers=1:\n%s\nworkers=8:\n%s",
			bufSeq.String(), bufPar.String())
	}

	for _, b := range AdaptiveBackends {
		for _, app := range seq.AppNames() {
			for _, v := range ProtocolVariants {
				a, err := seq.RunProtocolPolicy(app, v, b.Protocol, b.Policy)
				if err != nil {
					t.Fatal(err)
				}
				c, err := par.RunProtocolPolicy(app, v, b.Protocol, b.Policy)
				if err != nil {
					t.Fatal(err)
				}
				if fa, fb := a.Fingerprint(), c.Fingerprint(); fa != fb {
					t.Errorf("%s/%s under %s: workers=1 and workers=8 reports differ:\nseq: %s\npar: %s",
						app, v, b.Label, fa, fb)
				}
			}
		}
	}
}

// adaptiveTraceRun runs one FFT simulation under the adaptive backend with
// a trace sink subscribed and returns the trace bytes. FFT is the cell
// whose pages actually switch modes, so the trace carries mode-switch and
// home-flush events.
func adaptiveTraceRun(t *testing.T) []byte {
	t.Helper()
	spec, err := apps.ByName("FFT")
	if err != nil {
		t.Fatal(err)
	}
	cfg := dsm.DefaultConfig()
	cfg.Procs = 4
	cfg.Protocol = "adp"
	cfg.Prefetch = true
	var buf bytes.Buffer
	sys := dsm.NewSystem(cfg)
	tw := event.NewTraceWriter(&buf)
	sys.K.Bus().Subscribe(tw)
	inst := spec.Build(sys, apps.Options{Scale: apps.Unit, Verify: true})
	sys.Run(inst.Run)
	if err := inst.Err(); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAdaptiveTraceDeterministic: same configuration, same seed,
// byte-identical adaptive trace JSON, with the adaptive events present.
func TestAdaptiveTraceDeterministic(t *testing.T) {
	a := adaptiveTraceRun(t)
	b := adaptiveTraceRun(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical adaptive runs produced different traces (%d vs %d bytes)", len(a), len(b))
	}
	if !json.Valid(a) {
		t.Fatal("adaptive trace is not valid JSON")
	}
	out := string(a)
	for _, frag := range []string{`"mode-switch"`, `"home-flush"`} {
		if !strings.Contains(out, frag) {
			t.Errorf("adaptive trace lacks %q", frag)
		}
	}
}

// TestAdaptiveGridRaceCheckClean runs every adaptive-grid cell under the
// happens-before race detector with verification on: the apps are race-free
// under every backend, and checking must not break a single cell.
func TestAdaptiveGridRaceCheckClean(t *testing.T) {
	s := NewSession(Options{Procs: 4, Scale: apps.Unit, Apps: []string{"SOR", "FFT"}})
	for _, b := range AdaptiveBackends {
		for _, app := range s.AppNames() {
			for _, v := range ProtocolVariants {
				cfg := s.Config(app, v)
				cfg.Protocol = b.Protocol
				cfg.HomePolicy = b.Policy
				cfg.RaceCheck = true
				if _, err := s.RunConfigVerified(app, cfg); err != nil {
					t.Errorf("%s/%s under %s: %v", app, v, b.Label, err)
				}
			}
		}
	}
}
