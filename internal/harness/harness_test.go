package harness

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"godsm/dsm"
	"godsm/internal/apps"
)

func testSession() *Session {
	return NewSession(Options{Procs: 4, Scale: apps.Unit})
}

// TestEveryExperimentRuns executes each experiment end to end at unit scale
// on a reduced app set and sanity-checks the rendered output.
func TestEveryExperimentRuns(t *testing.T) {
	wantMarker := map[string]string{
		"fig1":      "Figure 1",
		"fig2":      "speedup",
		"table1":    "Covrge%",
		"fig3":      "pf-hit%",
		"fig4":      "multithreading",
		"table2":    "AvgStall",
		"fig5":      "best:",
		"faults":    "schedule totals:",
		"protocols": "relative to lrc",
		"racecheck": "0 data races",
	}
	s := NewSession(Options{Procs: 4, Scale: apps.Unit, Apps: []string{"SOR", "FFT"}})
	for _, e := range Experiments {
		var buf bytes.Buffer
		if err := e.Run(s, &buf); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		out := buf.String()
		if !strings.Contains(out, wantMarker[e.ID]) {
			t.Errorf("%s output missing %q:\n%s", e.ID, wantMarker[e.ID], out)
		}
		if !strings.Contains(out, "SOR") {
			t.Errorf("%s output missing app row", e.ID)
		}
	}
}

// TestSessionCaching: repeated runs of the same configuration must come
// from the cache (same pointer).
func TestSessionCaching(t *testing.T) {
	s := testSession()
	a, err := s.Run("SOR", VarO)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run("SOR", VarO)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("session did not cache the report")
	}
}

// TestCrossWorkerDeterminism proves the parallel runner's central claim:
// every app/variant pair produces a byte-identical dsm.Report (elapsed,
// breakdowns, all counters) whether simulations run strictly sequentially
// (workers=1) or fanned out over 8 workers.
func TestCrossWorkerDeterminism(t *testing.T) {
	opt := Options{Procs: 4, Scale: apps.Unit}
	optSeq, optPar := opt, opt
	optSeq.Workers = 1
	optPar.Workers = 8
	seq := NewSession(optSeq)
	par := NewSession(optPar)
	if err := par.RunAll(par.Grid(AllVariants)); err != nil {
		t.Fatal(err)
	}
	if err := seq.RunAll(seq.Grid(AllVariants)); err != nil {
		t.Fatal(err)
	}
	for _, k := range seq.Grid(AllVariants) {
		a, err := seq.Run(k.App, k.Variant)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Run(k.App, k.Variant)
		if err != nil {
			t.Fatal(err)
		}
		if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
			t.Errorf("%s/%s: workers=1 and workers=8 reports differ:\nseq: %s\npar: %s",
				k.App, k.Variant, fa, fb)
		}
	}
	if runs, _ := par.SimStats(); runs != int64(len(par.Grid(AllVariants))) {
		t.Errorf("parallel session simulated %d runs, want %d (no duplicates)",
			runs, len(par.Grid(AllVariants)))
	}
}

// TestFaultedCrossWorkerDeterminism extends the determinism claim to faulty
// networks: with a fault plan set on the session, every app/variant report —
// including the retransmission and duplicate-suppression counters — must be
// byte-identical across worker counts, and a rerun with the same seed must
// reproduce it again.
func TestFaultedCrossWorkerDeterminism(t *testing.T) {
	plan := dsm.FaultPlan{Seed: 77, Loss: 0.02, Dup: 0.01,
		Reorder: 0.05, MaxJitter: dsm.Millisecond}
	opt := Options{Procs: 4, Scale: apps.Unit, Apps: []string{"SOR", "OCEAN"},
		Verify: true, Faults: plan}
	optSeq, optPar := opt, opt
	optSeq.Workers = 1
	optPar.Workers = 8
	seq, par := NewSession(optSeq), NewSession(optPar)
	grid := seq.Grid(FaultVariants)
	if err := par.RunAll(par.Grid(FaultVariants)); err != nil {
		t.Fatal(err)
	}
	if err := seq.RunAll(grid); err != nil {
		t.Fatal(err)
	}
	rerun := NewSession(optSeq)
	if err := rerun.RunAll(grid); err != nil {
		t.Fatal(err)
	}
	var exercised int64
	for _, k := range grid {
		a, _ := seq.Run(k.App, k.Variant)
		b, _ := par.Run(k.App, k.Variant)
		c, _ := rerun.Run(k.App, k.Variant)
		fa, fb, fc := a.Fingerprint(), b.Fingerprint(), c.Fingerprint()
		if fa != fb {
			t.Errorf("%s/%s: faulted reports differ across worker counts:\nseq: %s\npar: %s",
				k.App, k.Variant, fa, fb)
		}
		if fa != fc {
			t.Errorf("%s/%s: same fault seed did not reproduce:\n1st: %s\n2nd: %s",
				k.App, k.Variant, fa, fc)
		}
		n := a.Sum()
		exercised += n.Retransmits + n.Timeouts + n.DupSuppressed + n.AcksSent
	}
	if exercised == 0 {
		t.Error("fault plan never exercised the reliable transport")
	}
}

// TestCrossProtocolDeterminism extends the determinism claim to every
// registered coherence protocol: each protocol-grid cell must produce a
// byte-identical report whether simulations run sequentially (workers=1) or
// fanned out over 8 workers, and a rerun must reproduce it again.
func TestCrossProtocolDeterminism(t *testing.T) {
	opt := Options{Procs: 4, Scale: apps.Unit, Apps: []string{"SOR", "FFT"}}
	optSeq, optPar := opt, opt
	optSeq.Workers = 1
	optPar.Workers = 8
	seq, par, rerun := NewSession(optSeq), NewSession(optPar), NewSession(optPar)

	type pcell struct {
		app   string
		v     Variant
		proto string
	}
	var grid []pcell
	for _, proto := range dsm.Protocols() {
		for _, app := range opt.Apps {
			for _, v := range ProtocolVariants {
				grid = append(grid, pcell{app, v, proto})
			}
		}
	}
	for _, s := range []*Session{par, rerun, seq} {
		s := s
		if err := each(len(grid), func(i int) error {
			c := grid[i]
			_, err := s.RunProtocol(c.app, c.v, c.proto)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range grid {
		a, _ := seq.RunProtocol(c.app, c.v, c.proto)
		b, _ := par.RunProtocol(c.app, c.v, c.proto)
		d, _ := rerun.RunProtocol(c.app, c.v, c.proto)
		fa, fb, fd := a.Fingerprint(), b.Fingerprint(), d.Fingerprint()
		if fa != fb {
			t.Errorf("%s/%s under %s: workers=1 and workers=8 reports differ:\nseq: %s\npar: %s",
				c.app, c.v, c.proto, fa, fb)
		}
		if fb != fd {
			t.Errorf("%s/%s under %s: rerun did not reproduce:\n1st: %s\n2nd: %s",
				c.app, c.v, c.proto, fb, fd)
		}
	}
}

// TestSingleflight: many goroutines racing on the same key must trigger
// exactly one simulation and all observe the same report pointer.
func TestSingleflight(t *testing.T) {
	s := NewSession(Options{Procs: 4, Scale: apps.Unit, Workers: 4})
	const callers = 16
	reps := make([]*dsm.Report, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := s.Run("SOR", VarO)
			if err != nil {
				t.Error(err)
				return
			}
			reps[i] = rep
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if reps[i] != reps[0] {
			t.Fatal("concurrent callers got different report pointers")
		}
	}
	if runs, _ := s.SimStats(); runs != 1 {
		t.Fatalf("%d simulations ran, want 1 (singleflight)", runs)
	}
}

// TestPrewarm: prewarming the grid leaves rendering with pure cache hits.
func TestPrewarm(t *testing.T) {
	s := NewSession(Options{Procs: 4, Scale: apps.Unit, Apps: []string{"SOR"}, Workers: 2})
	keys := PrewarmKeys(s, Experiments[:4]) // fig1..fig3: SOR × {O, P}
	if len(keys) != 2 {
		t.Fatalf("prewarm keys = %v, want SOR×{O,P}", keys)
	}
	s.Prewarm(keys)
	if err := s.RunAll(keys); err != nil {
		t.Fatal(err)
	}
	runsBefore, _ := s.SimStats()
	if runsBefore != 2 {
		t.Fatalf("%d simulations after prewarm, want 2", runsBefore)
	}
	var buf bytes.Buffer
	if err := RunFig2(s, &buf); err != nil {
		t.Fatal(err)
	}
	if runsAfter, _ := s.SimStats(); runsAfter != runsBefore {
		t.Errorf("rendering after prewarm re-simulated: %d -> %d runs", runsBefore, runsAfter)
	}
}

// TestConcurrentExperimentRendering: all experiments rendering at once
// against one session must produce exactly the output sequential rendering
// produces.
func TestConcurrentExperimentRendering(t *testing.T) {
	run := func(workers int) map[string]string {
		s := NewSession(Options{Procs: 4, Scale: apps.Unit,
			Apps: []string{"SOR", "FFT"}, Workers: workers})
		out := make([]bytes.Buffer, len(Experiments))
		var wg sync.WaitGroup
		for i, e := range Experiments {
			wg.Add(1)
			go func(i int, e Experiment) {
				defer wg.Done()
				if err := e.Run(s, &out[i]); err != nil {
					t.Error(err)
				}
			}(i, e)
		}
		wg.Wait()
		m := make(map[string]string)
		for i, e := range Experiments {
			m[e.ID] = out[i].String()
		}
		return m
	}
	seq := run(1)
	par := run(8)
	for id, want := range seq {
		if par[id] != want {
			t.Errorf("%s rendered differently under 8 workers:\n--- workers=1\n%s--- workers=8\n%s",
				id, want, par[id])
		}
	}
}

// TestVariantDecoding checks the paper-label decoding.
func TestVariantDecoding(t *testing.T) {
	cases := []struct {
		v        Variant
		threads  int
		prefetch bool
	}{
		{VarO, 1, false}, {VarP, 1, true},
		{Var2T, 2, false}, {Var4T, 4, false}, {Var8T, 8, false},
		{Var2TP, 2, true}, {Var4TP, 4, true}, {Var8TP, 8, true},
	}
	for _, c := range cases {
		if got := threadsOf(c.v); got != c.threads {
			t.Errorf("threadsOf(%s) = %d, want %d", c.v, got, c.threads)
		}
		if got := prefetching(c.v); got != c.prefetch {
			t.Errorf("prefetching(%s) = %v, want %v", c.v, got, c.prefetch)
		}
	}
}

// TestConfigModes: nT switches on both events; nTP on sync only; RADIX
// combined mode throttles prefetches.
func TestConfigModes(t *testing.T) {
	s := testSession()
	cfg := s.Config("FFT", Var4T)
	if !cfg.SwitchOnMiss || !cfg.SwitchOnSync || cfg.Prefetch {
		t.Errorf("4T config = %+v", cfg)
	}
	cfg = s.Config("FFT", Var4TP)
	if cfg.SwitchOnMiss || !cfg.SwitchOnSync || !cfg.Prefetch {
		t.Errorf("4TP config = %+v", cfg)
	}
	if s.Config("RADIX", Var2TP).ThrottlePf == 0 {
		t.Error("RADIX combined mode should throttle prefetches")
	}
	if s.Config("RADIX", VarP).ThrottlePf != 0 {
		t.Error("RADIX P mode should not throttle")
	}
	if s.Config("FFT", Var2TP).ThrottlePf != 0 {
		t.Error("only RADIX throttles")
	}
}

// TestByID resolves every listed experiment and rejects unknown ids.
func TestByID(t *testing.T) {
	for _, e := range Experiments {
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%s) = %v, %v", e.ID, got.ID, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("ByID accepted an unknown id")
	}
}

// TestVerifiedExperimentRun: an experiment with verification enabled must
// still succeed (the goldens hold under the harness configs).
func TestVerifiedExperimentRun(t *testing.T) {
	s := NewSession(Options{Procs: 4, Scale: apps.Unit, Verify: true,
		Apps: []string{"OCEAN"}})
	var buf bytes.Buffer
	if err := RunFig2(s, &buf); err != nil {
		t.Fatal(err)
	}
}
