package harness

import (
	"bytes"
	"strings"
	"testing"

	"godsm/internal/apps"
)

func testSession() *Session {
	return NewSession(Options{Procs: 4, Scale: apps.Unit})
}

// TestEveryExperimentRuns executes each experiment end to end at unit scale
// on a reduced app set and sanity-checks the rendered output.
func TestEveryExperimentRuns(t *testing.T) {
	wantMarker := map[string]string{
		"fig1":   "Figure 1",
		"fig2":   "speedup",
		"table1": "Covrge%",
		"fig3":   "pf-hit%",
		"fig4":   "multithreading",
		"table2": "AvgStall",
		"fig5":   "best:",
	}
	s := NewSession(Options{Procs: 4, Scale: apps.Unit, Apps: []string{"SOR", "FFT"}})
	for _, e := range Experiments {
		var buf bytes.Buffer
		if err := e.Run(s, &buf); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		out := buf.String()
		if !strings.Contains(out, wantMarker[e.ID]) {
			t.Errorf("%s output missing %q:\n%s", e.ID, wantMarker[e.ID], out)
		}
		if !strings.Contains(out, "SOR") {
			t.Errorf("%s output missing app row", e.ID)
		}
	}
}

// TestSessionCaching: repeated runs of the same configuration must come
// from the cache (same pointer).
func TestSessionCaching(t *testing.T) {
	s := testSession()
	a, err := s.Run("SOR", VarO)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run("SOR", VarO)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("session did not cache the report")
	}
}

// TestVariantDecoding checks the paper-label decoding.
func TestVariantDecoding(t *testing.T) {
	cases := []struct {
		v        Variant
		threads  int
		prefetch bool
	}{
		{VarO, 1, false}, {VarP, 1, true},
		{Var2T, 2, false}, {Var4T, 4, false}, {Var8T, 8, false},
		{Var2TP, 2, true}, {Var4TP, 4, true}, {Var8TP, 8, true},
	}
	for _, c := range cases {
		if got := threadsOf(c.v); got != c.threads {
			t.Errorf("threadsOf(%s) = %d, want %d", c.v, got, c.threads)
		}
		if got := prefetching(c.v); got != c.prefetch {
			t.Errorf("prefetching(%s) = %v, want %v", c.v, got, c.prefetch)
		}
	}
}

// TestConfigModes: nT switches on both events; nTP on sync only; RADIX
// combined mode throttles prefetches.
func TestConfigModes(t *testing.T) {
	s := testSession()
	cfg := s.Config("FFT", Var4T)
	if !cfg.SwitchOnMiss || !cfg.SwitchOnSync || cfg.Prefetch {
		t.Errorf("4T config = %+v", cfg)
	}
	cfg = s.Config("FFT", Var4TP)
	if cfg.SwitchOnMiss || !cfg.SwitchOnSync || !cfg.Prefetch {
		t.Errorf("4TP config = %+v", cfg)
	}
	if s.Config("RADIX", Var2TP).ThrottlePf == 0 {
		t.Error("RADIX combined mode should throttle prefetches")
	}
	if s.Config("RADIX", VarP).ThrottlePf != 0 {
		t.Error("RADIX P mode should not throttle")
	}
	if s.Config("FFT", Var2TP).ThrottlePf != 0 {
		t.Error("only RADIX throttles")
	}
}

// TestByID resolves every listed experiment and rejects unknown ids.
func TestByID(t *testing.T) {
	for _, e := range Experiments {
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%s) = %v, %v", e.ID, got.ID, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("ByID accepted an unknown id")
	}
}

// TestVerifiedExperimentRun: an experiment with verification enabled must
// still succeed (the goldens hold under the harness configs).
func TestVerifiedExperimentRun(t *testing.T) {
	s := NewSession(Options{Procs: 4, Scale: apps.Unit, Verify: true,
		Apps: []string{"OCEAN"}})
	var buf bytes.Buffer
	if err := RunFig2(s, &buf); err != nil {
		t.Fatal(err)
	}
}
