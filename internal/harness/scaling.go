package harness

import (
	"fmt"
	"io"

	"godsm/internal/sim"
)

// RunScaling regenerates a processor-count scaling table (an extension:
// the paper fixes 8 processors). For each application it reports elapsed
// time and self-relative speedup at 1, 2, 4 and 8 processors under the
// original and prefetching configurations — showing how communication
// grows with the machine and how much of it prefetching recovers. The
// whole app × config × procs grid simulates concurrently on the session's
// worker pool; rendering prints in table order.
func RunScaling(s *Session, w io.Writer) error {
	procs := []int{1, 2, 4, 8}
	variants := []Variant{VarO, VarP}
	type job struct {
		app     string
		v       Variant
		procs   int
		elapsed sim.Time
	}
	var jobs []*job
	for _, app := range s.AppNames() {
		for _, v := range variants {
			for _, p := range procs {
				jobs = append(jobs, &job{app: app, v: v, procs: p})
			}
		}
	}
	if err := each(len(jobs), func(i int) error {
		j := jobs[i]
		cfg := s.Config(j.app, j.v)
		cfg.Procs = j.procs
		rep, err := s.RunConfig(j.app, cfg)
		if err != nil {
			return err
		}
		j.elapsed = rep.Elapsed
		return nil
	}); err != nil {
		return err
	}

	fmt.Fprintln(w, "Scaling: elapsed time and speedup vs processor count")
	fmt.Fprintf(w, "%-10s %-4s %12s %12s %12s %12s\n",
		"App", "Cfg", "1p", "2p", "4p", "8p")
	for i := 0; i < len(jobs); i += len(procs) {
		row := jobs[i : i+len(procs)]
		fmt.Fprintf(w, "%-10s %-4s", row[0].app, row[0].v)
		for _, j := range row {
			fmt.Fprintf(w, " %10dus", j.elapsed/sim.Microsecond)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-10s %-4s", "", "↳spd")
		for _, j := range row {
			fmt.Fprintf(w, " %11.2fx", float64(row[0].elapsed)/float64(j.elapsed))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(speedups are relative to the same configuration on 1 processor)")
	return nil
}

func init() {
	Experiments = append(Experiments, Experiment{
		ID:    "scaling",
		Title: "Processor-count scaling (extension)",
		Run:   RunScaling,
	})
}
