package harness

import (
	"fmt"
	"io"

	"godsm/internal/sim"
)

// RunScaling regenerates a processor-count scaling table (an extension:
// the paper fixes 8 processors). For each application it reports elapsed
// time and self-relative speedup at 1, 2, 4 and 8 processors under the
// original and prefetching configurations — showing how communication
// grows with the machine and how much of it prefetching recovers.
func RunScaling(s *Session, w io.Writer) error {
	fmt.Fprintln(w, "Scaling: elapsed time and speedup vs processor count")
	fmt.Fprintf(w, "%-10s %-4s %12s %12s %12s %12s\n",
		"App", "Cfg", "1p", "2p", "4p", "8p")
	procs := []int{1, 2, 4, 8}
	for _, app := range s.AppNames() {
		for _, v := range []Variant{VarO, VarP} {
			var elapsed []sim.Time
			for _, p := range procs {
				cfg := s.Config(app, v)
				cfg.Procs = p
				rep, err := runConfig(s, app, cfg)
				if err != nil {
					return err
				}
				elapsed = append(elapsed, rep.Elapsed)
			}
			fmt.Fprintf(w, "%-10s %-4s", app, v)
			for _, e := range elapsed {
				fmt.Fprintf(w, " %10dus", e/sim.Microsecond)
			}
			fmt.Fprintln(w)
			fmt.Fprintf(w, "%-10s %-4s", "", "↳spd")
			for _, e := range elapsed {
				fmt.Fprintf(w, " %11.2fx", float64(elapsed[0])/float64(e))
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "(speedups are relative to the same configuration on 1 processor)")
	return nil
}

func init() {
	Experiments = append(Experiments, Experiment{
		ID:    "scaling",
		Title: "Processor-count scaling (extension)",
		Run:   RunScaling,
	})
}
