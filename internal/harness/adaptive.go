package harness

import (
	"fmt"
	"io"

	"godsm/dsm"
)

// Adaptive-coherence comparison: the application grid under the diff-based
// baseline (lrc), the home-based backend under each home policy (static,
// firsttouch, migrate), and the adaptive backend (adp), which keeps homes
// static but switches each page between the diff-based and home-based
// regimes at barrier episodes. Every run verifies its output against the
// sequential golden. The summary reports each backend's elapsed time
// relative to lrc and, for adp, relative to the best static choice per cell
// — the number that tells whether per-page adaptation actually recovers the
// better of the two regimes without knowing the application in advance.

// AdaptiveBackend is one column of the adaptive comparison: a display
// label, a protocol name, and (for hlrc) a home policy.
type AdaptiveBackend struct {
	Label    string
	Protocol string
	Policy   string
}

// AdaptiveBackends lists the compared configurations, baseline first. The
// "static" trio are the fixed choices adp is measured against; firsttouch
// and migrate move homes but keep every page home-based.
var AdaptiveBackends = []AdaptiveBackend{
	{Label: "lrc", Protocol: "lrc"},
	{Label: "hlrc", Protocol: "hlrc", Policy: "static"},
	{Label: "hlrc/ft", Protocol: "hlrc", Policy: "firsttouch"},
	{Label: "hlrc/mig", Protocol: "hlrc", Policy: "migrate"},
	{Label: "adp", Protocol: "adp"},
}

// RunAdaptive runs the adaptive-coherence grid and renders per-backend
// tables plus the relative-elapsed summary.
func RunAdaptive(s *Session, w io.Writer) error {
	type cell struct {
		app string
		v   Variant
		b   AdaptiveBackend
		rep *dsm.Report
	}
	var cells []*cell
	idx := make(map[string]*cell)
	for _, b := range AdaptiveBackends {
		for _, app := range s.AppNames() {
			for _, v := range ProtocolVariants {
				c := &cell{app: app, v: v, b: b}
				cells = append(cells, c)
				idx[c.app+"/"+c.b.Label+"/"+string(c.v)] = c
			}
		}
	}
	if err := each(len(cells), func(i int) error {
		c := cells[i]
		rep, err := s.RunProtocolPolicy(c.app, c.v, c.b.Protocol, c.b.Policy)
		if err != nil {
			return err
		}
		c.rep = rep
		return nil
	}); err != nil {
		return err
	}

	fmt.Fprintln(w, "Adaptive coherence: lrc vs hlrc home policies vs per-page mode switching (adp), outputs verified against goldens")
	for _, b := range AdaptiveBackends {
		fmt.Fprintf(w, "\nBackend %s\n", b.Label)
		fmt.Fprintf(w, "%-10s %-4s %10s %8s %7s %8s %8s %8s %7s %7s %7s\n",
			"App", "Cfg", "Elapsed", "Msgs", "VolKB", "DiffAppl", "HomeFlsh", "HomeFtch", "Migr", "ToHome", "ToDiff")
		for _, app := range s.AppNames() {
			for _, v := range ProtocolVariants {
				c := idx[app+"/"+b.Label+"/"+string(v)]
				n := c.rep.Sum()
				fmt.Fprintf(w, "%-10s %-4s %8sus %8d %7s %8d %8d %8d %7d %7d %7d\n",
					app, v, usec(c.rep.Elapsed), c.rep.MsgsTotal, kb(c.rep.BytesTotal),
					n.DiffsApplied, n.HomeFlushes, n.HomeFetches,
					n.HomeMigrations, n.ModeToHome, n.ModeToDiff)
			}
		}
	}

	fmt.Fprintln(w, "\nElapsed time relative to lrc (ratio > 1 means slower), and adp against the best fixed backend")
	fmt.Fprintf(w, "%-10s %-4s", "App", "Cfg")
	for _, b := range AdaptiveBackends[1:] {
		fmt.Fprintf(w, " %8s", b.Label)
	}
	fmt.Fprintf(w, " %8s\n", "adp/best")
	for _, app := range s.AppNames() {
		for _, v := range ProtocolVariants {
			base := idx[app+"/lrc/"+string(v)].rep
			fmt.Fprintf(w, "%-10s %-4s", app, v)
			best := base.Elapsed
			for _, b := range AdaptiveBackends[1:] {
				rep := idx[app+"/"+b.Label+"/"+string(v)].rep
				fmt.Fprintf(w, " %8.3f", float64(rep.Elapsed)/float64(base.Elapsed))
				if b.Label != "adp" && rep.Elapsed < best {
					best = rep.Elapsed
				}
			}
			adp := idx[app+"/adp/"+string(v)].rep
			fmt.Fprintf(w, " %8.3f\n", float64(adp.Elapsed)/float64(best))
		}
	}
	return nil
}

func init() {
	Experiments = append(Experiments, Experiment{
		ID:    "adaptive",
		Title: "Adaptive coherence: home policies and per-page diff/home switching",
		Run:   RunAdaptive,
	})
}
