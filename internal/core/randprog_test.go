package core

import (
	"fmt"
	"math/rand"
	"testing"

	"godsm/internal/netsim"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// Random data-race-free program generator: the strongest protocol test in
// the suite. A program is a sequence of phases separated by barriers; in
// each phase every cell of a small shared heap is either owned by one
// thread (only the owner writes it; others may read only values committed
// in earlier phases) or designated lock-protected (any thread may
// read-modify-write it under its lock, adding deterministic constants —
// commutative, so the final state is schedule-independent). The final
// shared state is therefore computable by a trivial sequential oracle, and
// must match under every cluster configuration, prefetch pattern and
// thread count.

const (
	rpPages   = 6
	rpCells   = 24 // cells per page (64-bit each, spread across the page)
	rpLocks   = 5
	rpPhases  = 5
	rpOpsBase = 12 // ops per thread per phase (scaled by rng)
)

type rpOp struct {
	kind int // 0 = write own cell, 1 = read old cell, 2 = lock add, 3 = compute, 4 = prefetch
	cell int // global cell index
	val  int64
	lock int
}

type rpProgram struct {
	threads int
	// owner[phase][cell]: thread that may write the cell in that phase;
	// -1 = lock-protected, -2 = frozen (readable by anyone, no writes).
	owner  [][]int
	lockOf []int      // lock id per cell (for lock-protected phases)
	ops    [][][]rpOp // [phase][thread][]op
}

func rpCellAddr(base pagemem.Addr, cell int) Addr {
	page := cell / rpCells
	idx := cell % rpCells
	// Spread cells through the page so diffs have multiple runs.
	return base + Addr(page*pagemem.PageSize+idx*168)
}

// rpGenerate builds a random DRF program for the given thread count.
func rpGenerate(rng *rand.Rand, threads int) *rpProgram {
	nCells := rpPages * rpCells
	p := &rpProgram{threads: threads, lockOf: make([]int, nCells)}
	for c := range p.lockOf {
		p.lockOf[c] = rng.Intn(rpLocks)
	}
	for ph := 0; ph < rpPhases; ph++ {
		owners := make([]int, nCells)
		for c := range owners {
			switch r := rng.Intn(10); {
			case r < 4:
				owners[c] = rng.Intn(threads) // owned
			case r < 7:
				owners[c] = -1 // lock-protected
			default:
				owners[c] = -2 // frozen this phase
			}
		}
		p.owner = append(p.owner, owners)

		phaseOps := make([][]rpOp, threads)
		for t := 0; t < threads; t++ {
			nOps := rpOpsBase + rng.Intn(rpOpsBase)
			for o := 0; o < nOps; o++ {
				c := rng.Intn(nCells)
				switch own := owners[c]; {
				case own == t && rng.Intn(2) == 0:
					phaseOps[t] = append(phaseOps[t], rpOp{kind: 0, cell: c,
						val: int64(1000*ph + 10*t + o%7)})
				case own == -1 && rng.Intn(2) == 0:
					phaseOps[t] = append(phaseOps[t], rpOp{kind: 2, cell: c,
						val: int64(1 + rng.Intn(5)), lock: p.lockOf[c]})
				case own == -2 || own == t:
					phaseOps[t] = append(phaseOps[t], rpOp{kind: 1, cell: c})
				default:
					if rng.Intn(3) == 0 {
						phaseOps[t] = append(phaseOps[t], rpOp{kind: 4, cell: c})
					} else {
						phaseOps[t] = append(phaseOps[t], rpOp{kind: 3, val: int64(rng.Intn(50))})
					}
				}
			}
			// Writers must write their owned cells at least once so the
			// oracle's "last write wins" is well defined per phase.
			for c := range owners {
				if owners[c] == t {
					phaseOps[t] = append(phaseOps[t], rpOp{kind: 0, cell: c,
						val: int64(1000*ph + 10*t + 999)})
				}
			}
		}
		p.ops = append(p.ops, phaseOps)
	}
	return p
}

// rpOracle computes the final cell values sequentially.
func (p *rpProgram) rpOracle() []int64 {
	nCells := rpPages * rpCells
	state := make([]int64, nCells)
	for ph := range p.ops {
		next := append([]int64(nil), state...)
		for t := 0; t < p.threads; t++ {
			for _, op := range p.ops[ph][t] {
				switch op.kind {
				case 0:
					next[op.cell] = op.val // last write by the owner wins
				case 2:
					next[op.cell] += op.val // commutative
				}
			}
		}
		state = next
	}
	return state
}

// rpRun executes the program on a simulated cluster and returns the final
// cell values read back by thread 0.
func rpRun(t *testing.T, p *rpProgram, cfg Config) []int64 {
	t.Helper()
	sys := NewSystem(cfg)
	base := sys.Alloc.AllocPages(rpPages)
	nCells := rpPages * rpCells
	out := make([]int64, nCells)
	sys.Run(func(e *Env) {
		me := e.ThreadID()
		bar := 0
		for ph := range p.ops {
			for _, op := range p.ops[ph][me] {
				switch op.kind {
				case 0:
					e.WriteI64(rpCellAddr(base, op.cell), op.val)
				case 1:
					_ = e.ReadI64(rpCellAddr(base, op.cell))
				case 2:
					e.Lock(op.lock)
					a := rpCellAddr(base, op.cell)
					e.WriteI64(a, e.ReadI64(a)+op.val)
					e.Unlock(op.lock)
				case 3:
					e.Compute(sim.Time(op.val) * sim.Microsecond)
				case 4:
					e.Prefetch(rpCellAddr(base, op.cell))
				}
			}
			e.Barrier(bar)
			bar++
		}
		if me == 0 {
			for c := 0; c < nCells; c++ {
				out[c] = e.ReadI64(rpCellAddr(base, c))
			}
		}
		e.Barrier(bar)
	})
	return out
}

// oracle-consistency: the owner's last write per phase must be the value
// the generator intends. (The generator appends a final write per owned
// cell, so "last" is deterministic.)

func rpConfigs() []Config {
	mk := func(procs, threads int, pf, swMiss bool, gc int64) Config {
		cfg := DefaultConfig()
		cfg.Procs = procs
		cfg.ThreadsPerProc = threads
		cfg.Prefetch = pf
		if threads > 1 {
			cfg.SwitchOnSync = true
			cfg.SwitchOnMiss = swMiss
		}
		cfg.GCThreshold = gc
		cfg.Limit = 10000 * sim.Second
		return cfg
	}
	noCache := mk(4, 1, false, false, 0)
	noCache.NoTokenCache = true
	noCacheMT := mk(3, 2, true, false, 0)
	noCacheMT.NoTokenCache = true
	reliable := mk(4, 1, true, false, 0)
	reliable.PfReliable = true
	eager := mk(4, 1, false, false, 0)
	eager.EagerRC = true
	eagerMT := mk(2, 2, true, false, 8192)
	eagerMT.EagerRC = true
	// Faulty-network configurations: the oracle must hold while the
	// reliable transport recovers lost, duplicated and reordered messages.
	faulty := mk(4, 1, false, false, 0)
	faulty.Net.Faults = netsim.FaultPlan{Seed: 9, Loss: 0.05, Dup: 0.03,
		Reorder: 0.1, MaxJitter: 2 * sim.Millisecond}
	faultyFull := mk(3, 2, true, false, 4096)
	faultyFull.Net.Faults = netsim.FaultPlan{Seed: 10, Loss: 0.03, Dup: 0.05,
		Reorder: 0.2, MaxJitter: sim.Millisecond,
		Brownouts: []netsim.LinkFault{{Node: 1, From: 5 * sim.Millisecond, To: 25 * sim.Millisecond}}}
	return []Config{
		mk(1, 1, false, false, 0),
		mk(3, 1, false, false, 0),
		mk(4, 1, true, false, 0),
		mk(4, 2, false, true, 0),
		mk(2, 4, true, false, 0),    // combined: MT on sync only + prefetch
		mk(4, 1, true, false, 4096), // prefetch + aggressive GC
		mk(4, 2, false, true, 4096), // MT + aggressive GC
		noCache,                     // centralized locks (ablation)
		noCacheMT,                   // centralized locks + MT + prefetch
		reliable,                    // reliable prefetch messages (ablation)
		eager,                       // eager release consistency
		eagerMT,                     // eager RC + MT + prefetch + GC
		faulty,                      // lossy network + reliable transport
		faultyFull,                  // faults + brown-out + MT + prefetch + GC
	}
}

// TestRandomDRFPrograms runs many random programs under every
// configuration and compares the final shared state with the oracle.
func TestRandomDRFPrograms(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 3
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			for ci, cfg := range rpConfigs() {
				rng := rand.New(rand.NewSource(int64(1000 + seed)))
				p := rpGenerate(rng, cfg.Procs*cfg.ThreadsPerProc)
				want := p.rpOracle()
				got := rpRun(t, p, cfg)
				for c := range want {
					if got[c] != want[c] {
						t.Fatalf("config %d (procs=%d threads=%d pf=%v gc=%d): cell %d = %d, want %d",
							ci, cfg.Procs, cfg.ThreadsPerProc, cfg.Prefetch,
							cfg.GCThreshold, c, got[c], want[c])
					}
				}
			}
		})
	}
}
