package core

// PrefetchLoop runs a software-pipelined prefetching loop — the schedule
// Mowry's compiler algorithm produces (and the paper's SUIF pass inserts
// for FFT and LU-NCONT): before iteration i executes, the shared ranges of
// iteration i+depth have been prefetched, so each prefetch has ~depth
// iterations of computation to complete.
//
// rangeOf returns the shared address range iteration i will touch (zero
// length for iterations with no shared accesses); body executes iteration
// i. In non-prefetching runs the schedule degenerates to a plain loop.
//
// depth is the prefetch distance in iterations; values of 1–4 suit loops
// whose iterations are long relative to the miss latency, larger values
// suit fine-grained loops.
func (e *Env) PrefetchLoop(n, depth int, rangeOf func(i int) (Addr, int), body func(i int)) {
	if depth < 1 {
		depth = 1
	}
	pf := func(i int) {
		if i >= n {
			return
		}
		a, l := rangeOf(i)
		if l > 0 {
			e.PrefetchRange(a, l)
		}
	}
	if e.Prefetching() {
		// Prologue: issue the first `depth` iterations' prefetches.
		for i := 0; i < depth && i < n; i++ {
			pf(i)
		}
	}
	for i := 0; i < n; i++ {
		if e.Prefetching() {
			pf(i + depth) // steady state: fetch `depth` iterations ahead
		}
		body(i)
	}
}
