package core

import (
	"fmt"

	"godsm/internal/event"
	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// Addr is re-exported for application code.
type Addr = pagemem.Addr

// Env is a thread's handle on the shared-memory system: typed accessors
// over the shared address space, synchronization, prefetch, and explicit
// computation charging. It corresponds to the programming interface the
// paper's applications use (TreadMarks API plus prefetch calls).
//
// Busy time accumulates lazily and is flushed to the simulated CPU at every
// protocol interaction, so the virtual-time order of computation and
// communication is preserved without a kernel round-trip per access.
type Env struct {
	t    *Thread
	busy sim.Time // accumulated unflushed busy time

	runSince sim.Time // busy accumulated since the last stall (run length)
}

func newEnv(t *Thread) *Env { return &Env{t: t} }

// ProcID returns the processor this thread runs on.
func (e *Env) ProcID() int { return e.t.proc.id }

// ThreadID returns the globally unique thread id (0..TotalThreads-1); the
// applications decompose their work by thread id, SPLASH-2 style.
func (e *Env) ThreadID() int { return e.t.id }

// LocalThread returns the thread's index within its processor.
func (e *Env) LocalThread() int { return e.t.local }

// NumProcs returns the number of processors.
func (e *Env) NumProcs() int { return e.t.proc.sys.Cfg.Procs }

// NumThreads returns the total number of worker threads.
func (e *Env) NumThreads() int { return e.t.proc.sys.TotalThreads() }

// Prefetching reports whether this run executes inserted prefetches; the
// applications guard their prefetch code with it.
func (e *Env) Prefetching() bool { return e.t.proc.sys.Cfg.Prefetch }

// Now returns the current virtual time (diagnostics).
func (e *Env) Now() sim.Time { return e.t.proc.sys.K.Now() }

// EndMeasurement freezes the run's reported metrics at the current virtual
// time. Applications call it once (any thread, conventionally thread 0)
// right after their final barrier, so verification reads that follow do
// not pollute the measurements. Idempotent.
func (e *Env) EndMeasurement() {
	e.flushBusy()
	e.t.proc.sys.snapshot()
}

// Compute charges d nanoseconds of useful computation.
func (e *Env) Compute(d sim.Time) {
	e.busy += d
	e.runSince += d
}

// flushBusy converts accumulated busy time into simulated CPU occupancy.
// Must be called from the thread's goroutine while it is current.
func (e *Env) flushBusy() {
	if e.busy <= 0 {
		return
	}
	d := e.busy
	e.busy = 0
	e.t.proc.cpu.ThreadCompute(e.t.p, d, sim.CatBusy)
}

// noteBlock records run-length statistics at a stall.
func (e *Env) noteBlock() {
	e.t.proc.bus.Emit(event.ThreadBlock(e.t.proc.id, e.t.id, e.runSince))
	e.runSince = 0
}

// access resolves the page for a, faulting until it is valid (and twinned,
// for writes), and returns the local frame. The per-access busy cost
// accumulates; faults flush and block the thread.
func (e *Env) access(a Addr, write bool) []byte {
	if d := e.t.proc.race; d != nil {
		// Synchronous happens-before check: charges no simulated time and
		// emits no events, so a clean checked run is byte-identical to an
		// unchecked one.
		d.Access(e.t.id, uint64(a), write)
	}
	e.busy += e.t.proc.sys.Cfg.AccessNs
	e.runSince += e.t.proc.sys.Cfg.AccessNs
	p := pagemem.PageOf(a)
	node := e.t.proc.node
	for {
		for !node.PageValid(p) {
			// flushBusy may yield the CPU; the page can become valid while
			// we sleep (a sibling thread's fetch completing), so re-check.
			e.flushBusy()
			if node.PageValid(p) {
				break
			}
			e.t.proc.touch(p)
			e.t.block(sim.CatMemIdle, func(onDone func()) {
				node.Fault(p, onDone)
			})
		}
		if !write || node.PageWritable(p) {
			break
		}
		e.flushBusy()
		if !node.PageValid(p) {
			continue // invalidated while flushing: fault again
		}
		node.EnsureWritable(p)
		e.t.proc.touch(p)
		break
	}
	return node.Frame(p)
}

// ReadF64 reads the float64 at address a.
func (e *Env) ReadF64(a Addr) float64 {
	return pagemem.GetF64(e.access(a, false), pagemem.OffsetOf(a))
}

// WriteF64 writes v to address a.
func (e *Env) WriteF64(a Addr, v float64) {
	pagemem.PutF64(e.access(a, true), pagemem.OffsetOf(a), v)
}

// ReadU64 reads the uint64 at address a.
func (e *Env) ReadU64(a Addr) uint64 {
	return pagemem.GetU64(e.access(a, false), pagemem.OffsetOf(a))
}

// WriteU64 writes v to address a.
func (e *Env) WriteU64(a Addr, v uint64) {
	pagemem.PutU64(e.access(a, true), pagemem.OffsetOf(a), v)
}

// ReadI64 reads the int64 at address a.
func (e *Env) ReadI64(a Addr) int64 { return int64(e.ReadU64(a)) }

// WriteI64 writes v to address a.
func (e *Env) WriteI64(a Addr, v int64) { e.WriteU64(a, uint64(v)) }

// ReadU32 reads the uint32 at address a.
func (e *Env) ReadU32(a Addr) uint32 {
	return pagemem.GetU32(e.access(a, false), pagemem.OffsetOf(a))
}

// WriteU32 writes v to address a.
func (e *Env) WriteU32(a Addr, v uint32) {
	pagemem.PutU32(e.access(a, true), pagemem.OffsetOf(a), v)
}

// Prefetch issues a non-binding prefetch for the page containing a, if this
// run prefetches. Guarded by the processor-local redundancy flags so that
// threads sharing a working set do not issue duplicate prefetches
// (Section 5.1).
func (e *Env) Prefetch(a Addr) {
	if !e.Prefetching() {
		return
	}
	p := pagemem.PageOf(a)
	pr := e.t.proc
	if pr.sys.Cfg.ThreadsPerProc > 1 && !pr.sys.Cfg.NoPfSuppress && pr.pfFlags[uint64(p)] {
		return // a sibling thread already fetched or prefetched this page
	}
	e.flushBusy()
	pr.node.Prefetch(p)
	if pr.sys.Cfg.ThreadsPerProc > 1 {
		pr.pfFlags[uint64(p)] = true
	}
}

// PrefetchRange prefetches every page overlapping [a, a+len).
func (e *Env) PrefetchRange(a Addr, length int) {
	if !e.Prefetching() || length <= 0 {
		return
	}
	first := pagemem.PageOf(a)
	last := pagemem.PageOf(a + Addr(length) - 1)
	for p := first; p <= last; p++ {
		e.Prefetch(p.Base())
	}
}

// Lock acquires global lock id, combining locally when another thread on
// this processor already holds or has requested it.
func (e *Env) Lock(id int) {
	e.lockAcquire(id)
	if d := e.t.proc.race; d != nil {
		// The acquire edge: join the previous releaser's clock. After
		// lockAcquire returns on every path (immediate grant, remote
		// grant, local hand-off), so the edge covers them all.
		d.Acquire(e.t.id, id)
	}
}

func (e *Env) lockAcquire(id int) {
	e.flushBusy()
	pr := e.t.proc
	ll := pr.llock(id)
	if ll.holder != nil {
		// Local hand-off queue (Section 4.1).
		e.t.block(sim.CatSyncIdle, func(onDone func()) {
			ll.queue = append(ll.queue, e.t)
			ll.wakers = append(ll.wakers, onDone)
		})
		if ll.holder != e.t {
			panic("core: woken from lock queue without holding the lock")
		}
		return
	}
	ll.holder = e.t // reserve before any yield so siblings queue locally
	immediate := false
	e.t.block(sim.CatSyncIdle, func(onDone func()) {
		if pr.node.AcquireLock(id, onDone) {
			immediate = true
			onDone()
		}
	})
	_ = immediate
}

// Unlock releases lock id, passing it to a locally queued thread first.
func (e *Env) Unlock(id int) {
	if d := e.t.proc.race; d != nil {
		// The release edge: publish this thread's clock to the lock before
		// any successor (local hand-off or remote grant) can acquire it.
		d.Release(e.t.id, id)
	}
	e.flushBusy()
	pr := e.t.proc
	ll := pr.llock(id)
	if ll.holder != e.t {
		panic(fmt.Sprintf("core: thread %d unlocking lock %d it does not hold", e.t.id, id))
	}
	if len(ll.queue) > 0 {
		next := ll.queue[0]
		wake := ll.wakers[0]
		ll.queue = ll.queue[1:]
		ll.wakers = ll.wakers[1:]
		ll.holder = next
		pr.bus.Emit(event.LockLocal(pr.id, id))
		done := pr.cpu.Service(pr.sys.Cfg.LocalLockPass, sim.CatDSM)
		pr.sys.K.At(done, wake)
		return
	}
	ll.holder = nil
	pr.node.ReleaseLock(id)
}

// Barrier waits until every thread in the system reaches barrier id. Local
// threads gather first; only the last local arrival sends a message
// (Section 4.1).
func (e *Env) Barrier(id int) {
	if d := e.t.proc.race; d != nil {
		// The episode cut: arrivals join into the barrier clock, and the
		// last live arrival redistributes the join to every thread. The
		// hook runs strictly before the simulated barrier releases anyone,
		// so post-barrier accesses always see the cut.
		d.BarrierArrive(e.t.id)
	}
	e.flushBusy()
	pr := e.t.proc
	e.t.block(sim.CatSyncIdle, func(onDone func()) {
		pr.barWakers = append(pr.barWakers, onDone)
		if len(pr.barWakers) == pr.live {
			// Last local arrival: perform the global barrier arrival.
			pr.node.Barrier(id, func() {
				wakers := pr.barWakers
				pr.barWakers = nil
				// A new phase begins: reset the redundant-prefetch flags.
				clearFlags(pr.pfFlags)
				for _, w := range wakers {
					w()
				}
			})
		}
	})
}

// RaceExempt runs body with race reporting suppressed for every granule
// body touches: the exemption sticks to the granule, so the un-annotated
// other side of an audited benign race stays quiet too. reason must be
// non-empty — it is the audit trail for why the race is benign (it is not
// recorded anywhere; it exists to force the call site to say). A plain
// body() call when race checking is off.
func (e *Env) RaceExempt(reason string, body func()) {
	d := e.t.proc.race
	if d == nil {
		body()
		return
	}
	if reason == "" {
		panic("core: RaceExempt requires a non-empty audit reason")
	}
	d.ExemptPush(e.t.id)
	defer d.ExemptPop(e.t.id)
	body()
}

func clearFlags(m map[uint64]bool) {
	for k := range m {
		delete(m, k)
	}
}

// ThreadRange splits n work items over all threads and returns this
// thread's [lo, hi) range. Items are chunked over processors first, so
// processor loads stay balanced at any thread count, and a thread's range
// is contiguous with its siblings' (good locality under multithreading).
func (e *Env) ThreadRange(n int) (lo, hi int) {
	tpp := e.NumThreads() / e.NumProcs()
	pLo, pHi := splitRange(n, e.NumProcs(), e.ProcID())
	tLo, tHi := splitRange(pHi-pLo, tpp, e.LocalThread())
	return pLo + tLo, pLo + tHi
}

// splitRange gives worker id's share of n items split over parts workers.
func splitRange(n, parts, id int) (lo, hi int) {
	base := n / parts
	rem := n % parts
	lo = id*base + min(id, rem)
	hi = lo + base
	if id < rem {
		hi++
	}
	return lo, hi
}
