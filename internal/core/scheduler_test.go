package core

import (
	"testing"

	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

// Scheduler-level tests: switch-on-miss vs spin, run-length accounting,
// local lock hand-off, and measurement snapshotting.

// TestSpinVsSwitchOnMiss: in combined mode (switch on sync only), a miss
// must NOT yield the processor — sibling threads stay descheduled.
func TestSpinVsSwitchOnMiss(t *testing.T) {
	run := func(switchOnMiss bool) int64 {
		cfg := smallConfig(2, 2)
		cfg.SwitchOnMiss = switchOnMiss
		cfg.SwitchOnSync = true
		sys := NewSystem(cfg)
		arr := sys.Alloc.AllocPages(8)
		rep := sys.Run(func(e *Env) {
			if e.ThreadID() == 0 {
				for p := 0; p < 8; p++ {
					e.WriteF64(arr+Addr(p*pagemem.PageSize), 1)
				}
			}
			e.Barrier(0)
			if e.ProcID() == 1 {
				for p := e.LocalThread(); p < 8; p += 2 {
					_ = e.ReadF64(arr + Addr(p*pagemem.PageSize))
					e.Compute(20 * sim.Microsecond)
				}
			}
			e.Barrier(1)
		})
		return rep.Sum().CtxSwitches
	}
	spin := run(false)
	sw := run(true)
	if sw <= spin {
		t.Fatalf("switch-on-miss produced %d switches vs %d when spinning", sw, spin)
	}
}

// TestRunLengthAccounting: run lengths must reflect compute between stalls.
func TestRunLengthAccounting(t *testing.T) {
	cfg := smallConfig(2, 1)
	sys := NewSystem(cfg)
	arr := sys.Alloc.AllocPages(4)
	rep := sys.Run(func(e *Env) {
		if e.ThreadID() == 0 {
			for p := 0; p < 4; p++ {
				e.WriteF64(arr+Addr(p*pagemem.PageSize), 1)
			}
		}
		e.Barrier(0)
		if e.ProcID() == 1 {
			for p := 0; p < 4; p++ {
				e.Compute(500 * sim.Microsecond)
				_ = e.ReadF64(arr + Addr(p*pagemem.PageSize))
			}
		}
		e.Barrier(1)
	})
	if got := rep.AvgRunLength(); got < 100*sim.Microsecond {
		t.Fatalf("avg run length = %d µs, expected hundreds", got/sim.Microsecond)
	}
	if rep.Sum().Runs == 0 || rep.Sum().Blocks == 0 {
		t.Fatal("no run/block statistics recorded")
	}
}

// TestLocalLockHandOff: threads on one processor passing a lock must not
// generate remote acquires beyond the first.
func TestLocalLockHandOff(t *testing.T) {
	cfg := smallConfig(2, 4)
	sys := NewSystem(cfg)
	cell := sys.Alloc.Alloc(8, 8)
	rep := sys.Run(func(e *Env) {
		// Lock 1's manager is proc 1; all of proc 0's threads contend, so
		// after the first remote acquire the lock passes locally.
		if e.ProcID() == 0 {
			for i := 0; i < 3; i++ {
				e.Lock(1)
				e.WriteI64(cell, e.ReadI64(cell)+1)
				e.Compute(5 * sim.Microsecond)
				e.Unlock(1)
			}
		}
		e.Barrier(0)
	})
	n := rep.Sum()
	if n.LocalLockAcqs == 0 {
		t.Fatal("no local lock hand-offs recorded")
	}
	if n.RemoteLockAcqs > 2 {
		t.Fatalf("remote acquires = %d; local combining should cover most", n.RemoteLockAcqs)
	}
}

// TestEndMeasurementFreezesMetrics: traffic after EndMeasurement must not
// appear in the report.
func TestEndMeasurementFreezesMetrics(t *testing.T) {
	cfg := smallConfig(2, 1)
	sys := NewSystem(cfg)
	arr := sys.Alloc.AllocPages(4)
	rep := sys.Run(func(e *Env) {
		if e.ThreadID() == 0 {
			e.WriteF64(arr, 42)
		}
		e.Barrier(0)
		if e.ThreadID() == 0 {
			e.EndMeasurement()
			// Post-measurement verification traffic: proc 0 writes more
			// pages, proc 1 reads them after barrier 1.
			for p := 1; p < 4; p++ {
				e.WriteF64(arr+Addr(p*pagemem.PageSize), 1)
			}
		}
		e.Barrier(1)
		if e.ProcID() == 1 {
			for p := 1; p < 4; p++ {
				_ = e.ReadF64(arr + Addr(p*pagemem.PageSize))
			}
		}
		e.Barrier(2)
	})
	// Only the pre-measurement barrier traffic should be counted: no
	// page-diff requests had happened yet.
	if rep.TotalMisses() != 0 {
		t.Fatalf("post-measurement misses leaked into the report: %d", rep.TotalMisses())
	}
	end := sys.K.Now()
	if rep.Elapsed >= end {
		t.Fatalf("elapsed %d not frozen before simulation end %d", rep.Elapsed, end)
	}
}

// TestIdleAttributionCategories: a memory-bound phase must charge memory
// idle; a barrier-wait phase must charge sync idle.
func TestIdleAttributionCategories(t *testing.T) {
	cfg := smallConfig(2, 1)
	sys := NewSystem(cfg)
	arr := sys.Alloc.AllocPages(16)
	rep := sys.Run(func(e *Env) {
		if e.ThreadID() == 0 {
			for p := 0; p < 16; p++ {
				e.WriteF64(arr+Addr(p*pagemem.PageSize), 1)
			}
		}
		e.Barrier(0)
		if e.ProcID() == 1 {
			for p := 0; p < 16; p++ {
				_ = e.ReadF64(arr + Addr(p*pagemem.PageSize))
			}
		} else {
			e.Compute(1 * sim.Millisecond)
		}
		e.Barrier(1)
	})
	b1 := rep.PerProc[1]
	if b1.Cat[sim.CatMemIdle] == 0 {
		t.Fatal("proc 1 recorded no memory idle despite 16 misses")
	}
	b0 := rep.PerProc[0]
	if b0.Cat[sim.CatSyncIdle] == 0 {
		t.Fatal("proc 0 recorded no sync idle despite waiting at the barrier")
	}
}

// TestPrefetchLoop: the software-pipelined loop must visit every iteration
// in order and, when prefetching, hide most of the miss latency of a
// strided remote scan.
func TestPrefetchLoop(t *testing.T) {
	const pages = 12
	exec := func(prefetch bool) ([]int, int64, int64) {
		cfg := smallConfig(2, 1)
		cfg.Prefetch = prefetch
		sys := NewSystem(cfg)
		arr := sys.Alloc.AllocPages(pages)
		var order []int
		rep := sys.Run(func(e *Env) {
			if e.ThreadID() == 0 {
				for p := 0; p < pages; p++ {
					e.WriteF64(arr+Addr(p*pagemem.PageSize), float64(p))
				}
			}
			e.Barrier(0)
			if e.ProcID() == 1 {
				e.PrefetchLoop(pages, 3,
					func(i int) (Addr, int) { return arr + Addr(i*pagemem.PageSize), 8 },
					func(i int) {
						order = append(order, i)
						if got := e.ReadF64(arr + Addr(i*pagemem.PageSize)); got != float64(i) {
							panic("wrong data in PrefetchLoop")
						}
						e.Compute(800 * sim.Microsecond)
					})
			}
			e.Barrier(1)
		})
		n := rep.Sum()
		return order, n.FaultPfHit, n.Misses
	}
	orderO, hitsO, _ := exec(false)
	orderP, hitsP, missesP := exec(true)
	for i := 0; i < pages; i++ {
		if orderO[i] != i || orderP[i] != i {
			t.Fatalf("iteration order broken: %v / %v", orderO, orderP)
		}
	}
	if hitsO != 0 {
		t.Fatalf("baseline had %d pf hits", hitsO)
	}
	if hitsP < pages/2 {
		t.Fatalf("pipelined prefetch hit only %d of %d pages (misses %d)",
			hitsP, pages, missesP)
	}
}
