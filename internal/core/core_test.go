package core

import (
	"testing"

	"godsm/internal/pagemem"
	"godsm/internal/sim"
)

func smallConfig(procs, threads int) Config {
	cfg := DefaultConfig()
	cfg.Procs = procs
	cfg.ThreadsPerProc = threads
	if threads > 1 {
		cfg.SwitchOnMiss = true
		cfg.SwitchOnSync = true
	}
	cfg.Limit = 1000 * sim.Second
	return cfg
}

// TestSharedCounterWithLock runs the canonical mutual-exclusion check: all
// threads increment one shared counter under a lock; the final value must
// equal the number of increments.
func TestSharedCounterWithLock(t *testing.T) {
	for _, tc := range []struct{ procs, threads, iters int }{
		{1, 1, 10},
		{2, 1, 10},
		{4, 1, 25},
		{4, 2, 10},
		{2, 4, 20},
	} {
		cfg := smallConfig(tc.procs, tc.threads)
		sys := NewSystem(cfg)
		ctr := sys.Alloc.Alloc(8, 8)
		var final int64 = -1
		sys.Run(func(e *Env) {
			for i := 0; i < tc.iters; i++ {
				e.Lock(1)
				e.WriteI64(ctr, e.ReadI64(ctr)+1)
				e.Unlock(1)
			}
			e.Barrier(0)
			if e.ThreadID() == 0 {
				e.EndMeasurement()
				final = e.ReadI64(ctr)
			}
		})
		want := int64(tc.procs * tc.threads * tc.iters)
		if final != want {
			t.Errorf("procs=%d threads=%d: counter = %d, want %d",
				tc.procs, tc.threads, final, want)
		}
	}
}

// TestProducerConsumerVisibility: proc 0 writes a vector, everyone reads it
// after a barrier and sums it. Checks write-notice propagation, faulting,
// and diff application across the whole stack.
func TestProducerConsumerVisibility(t *testing.T) {
	const n = 4096 // 4 pages of float64
	cfg := smallConfig(4, 1)
	sys := NewSystem(cfg)
	arr := sys.Alloc.Alloc(n*8, pagemem.PageSize)
	sums := make([]float64, 4)
	sys.Run(func(e *Env) {
		if e.ThreadID() == 0 {
			for i := 0; i < n; i++ {
				e.WriteF64(arr+Addr(i*8), float64(i))
			}
		}
		e.Barrier(0)
		var s float64
		for i := 0; i < n; i++ {
			s += e.ReadF64(arr + Addr(i*8))
		}
		sums[e.ProcID()] = s
		e.Barrier(1)
	})
	want := float64(n) * float64(n-1) / 2
	for p, s := range sums {
		if s != want {
			t.Errorf("proc %d sum = %v, want %v", p, s, want)
		}
	}
}

// TestMultipleWriterFalseSharing: two procs write disjoint halves of the
// same page between barriers; both halves must survive the merge.
func TestMultipleWriterFalseSharing(t *testing.T) {
	cfg := smallConfig(2, 1)
	sys := NewSystem(cfg)
	page := sys.Alloc.Alloc(pagemem.PageSize, pagemem.PageSize)
	var got [512]float64
	sys.Run(func(e *Env) {
		half := 256
		base := e.ProcID() * half
		for i := 0; i < half; i++ {
			e.WriteF64(page+Addr((base+i)*8), float64(100*e.ProcID()+i))
		}
		e.Barrier(0)
		if e.ThreadID() == 0 {
			e.EndMeasurement()
			for i := 0; i < 512; i++ {
				got[i] = e.ReadF64(page + Addr(i*8))
			}
		}
		e.Barrier(1)
	})
	for i := 0; i < 256; i++ {
		if got[i] != float64(i) {
			t.Fatalf("proc0 half at %d = %v, want %v", i, got[i], float64(i))
		}
		if got[256+i] != float64(100+i) {
			t.Fatalf("proc1 half at %d = %v, want %v", 256+i, got[256+i], float64(100+i))
		}
	}
}

// TestLockProtectedChain passes updates through a lock in a ring so each
// acquire must observe the previous holder's writes (LRC correctness).
func TestLockProtectedChain(t *testing.T) {
	cfg := smallConfig(4, 1)
	sys := NewSystem(cfg)
	cell := sys.Alloc.Alloc(8, 8)
	const rounds = 20
	var final int64
	sys.Run(func(e *Env) {
		for r := 0; r < rounds; r++ {
			e.Lock(3)
			v := e.ReadI64(cell)
			e.Compute(1 * sim.Microsecond)
			e.WriteI64(cell, v+1)
			e.Unlock(3)
		}
		e.Barrier(0)
		if e.ThreadID() == 0 {
			final = e.ReadI64(cell)
		}
	})
	if want := int64(4 * rounds); final != want {
		t.Fatalf("chain counter = %d, want %d", final, want)
	}
}

// TestDeterminism: identical configurations must produce identical elapsed
// times, breakdowns, and traffic.
func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, int64, int64) {
		cfg := smallConfig(4, 2)
		sys := NewSystem(cfg)
		arr := sys.Alloc.Alloc(8*1024, pagemem.PageSize)
		rep := sys.Run(func(e *Env) {
			if e.ThreadID() == 0 {
				for i := 0; i < 1024; i++ {
					e.WriteF64(arr+Addr(i*8), float64(i))
				}
			}
			e.Barrier(0)
			var s float64
			for i := e.ThreadID(); i < 1024; i += e.NumThreads() {
				s += e.ReadF64(arr + Addr(i*8))
			}
			e.Compute(sim.Time(s/1e6) + 10*sim.Microsecond)
			e.Lock(0)
			e.WriteF64(arr, e.ReadF64(arr)+s)
			e.Unlock(0)
			e.Barrier(1)
		})
		return rep.Elapsed, rep.MsgsTotal, rep.BytesTotal
	}
	e1, m1, b1 := run()
	e2, m2, b2 := run()
	if e1 != e2 || m1 != m2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", e1, m1, b1, e2, m2, b2)
	}
}

// TestBreakdownConservation: per-processor category times must sum to the
// elapsed time.
func TestBreakdownConservation(t *testing.T) {
	cfg := smallConfig(4, 1)
	sys := NewSystem(cfg)
	arr := sys.Alloc.Alloc(8*2048, pagemem.PageSize)
	rep := sys.Run(func(e *Env) {
		if e.ThreadID() == 0 {
			for i := 0; i < 2048; i++ {
				e.WriteF64(arr+Addr(i*8), 1)
			}
		}
		e.Barrier(0)
		var s float64
		for i := 0; i < 2048; i++ {
			s += e.ReadF64(arr + Addr(i*8))
		}
		e.Compute(100 * sim.Microsecond)
		e.Barrier(1)
	})
	for p, b := range rep.PerProc {
		if got := b.Total(); got != rep.Elapsed {
			t.Errorf("proc %d: breakdown sums to %d, elapsed %d", p, got, rep.Elapsed)
		}
	}
	if rep.Elapsed <= 0 {
		t.Fatal("zero elapsed time")
	}
}

// TestPrefetchHidesLatency: with prefetches issued well before the access,
// the faults should hit the prefetch cache and miss stall should drop.
func TestPrefetchHidesLatency(t *testing.T) {
	const pages = 16
	build := func(prefetch bool) (*System, Addr) {
		cfg := smallConfig(2, 1)
		cfg.Prefetch = prefetch
		sys := NewSystem(cfg)
		arr := sys.Alloc.AllocPages(pages)
		return sys, arr
	}
	run := func(prefetch bool) (elapsed sim.Time, hits, misses int64) {
		sys, arr := build(prefetch)
		rep := sys.Run(func(e *Env) {
			if e.ThreadID() == 0 {
				for p := 0; p < pages; p++ {
					for o := 0; o < pagemem.PageSize; o += 8 {
						e.WriteF64(arr+Addr(p*pagemem.PageSize+o), 1)
					}
				}
			}
			e.Barrier(0)
			if e.ProcID() == 1 {
				// Prefetch everything, then compute long enough for all
				// replies to arrive, then read.
				for p := 0; p < pages; p++ {
					e.Prefetch(arr + Addr(p*pagemem.PageSize))
				}
				e.Compute(50 * sim.Millisecond)
				var s float64
				for p := 0; p < pages; p++ {
					for o := 0; o < pagemem.PageSize; o += 8 {
						s += e.ReadF64(arr + Addr(p*pagemem.PageSize+o))
					}
				}
				if s != float64(pages*pagemem.PageSize/8) {
					panic("wrong data through prefetch path")
				}
			} else {
				e.Compute(50 * sim.Millisecond)
			}
			e.Barrier(1)
		})
		n := rep.Sum()
		return rep.Elapsed, n.FaultPfHit, n.Misses
	}
	_, hits0, misses0 := run(false)
	_, hits1, misses1 := run(true)
	if hits0 != 0 {
		t.Fatalf("baseline run recorded %d pf hits", hits0)
	}
	if misses0 != pages {
		t.Fatalf("baseline misses = %d, want %d", misses0, pages)
	}
	if hits1 != pages {
		t.Fatalf("prefetch run pf hits = %d, want %d (misses %d)", hits1, pages, misses1)
	}
	if misses1 != 0 {
		t.Fatalf("prefetch run still had %d remote misses", misses1)
	}
}

// TestMultithreadingOverlapsLatency: with 4 threads and switch-on-miss,
// misses on different pages overlap, so elapsed time should be much lower
// than single-threaded.
func TestMultithreadingOverlapsLatency(t *testing.T) {
	const pages = 32
	run := func(threads int) sim.Time {
		cfg := smallConfig(2, threads)
		cfg.SwitchOnMiss = true
		cfg.SwitchOnSync = true
		sys := NewSystem(cfg)
		arr := sys.Alloc.AllocPages(pages)
		rep := sys.Run(func(e *Env) {
			if e.ThreadID() == 0 {
				for p := 0; p < pages; p++ {
					e.WriteF64(arr+Addr(p*pagemem.PageSize), float64(p))
				}
			}
			e.Barrier(0)
			if e.ProcID() == 1 {
				tpp := e.NumThreads() / e.NumProcs()
				for p := e.LocalThread(); p < pages; p += tpp {
					v := e.ReadF64(arr + Addr(p*pagemem.PageSize))
					if v != float64(p) {
						panic("bad value")
					}
					e.Compute(10 * sim.Microsecond)
				}
			}
			e.Barrier(1)
		})
		return rep.Elapsed
	}
	st := run(1)
	mt := run(4)
	if mt >= st {
		t.Fatalf("multithreading did not help: 1T=%dµs 4T=%dµs",
			st/sim.Microsecond, mt/sim.Microsecond)
	}
	if float64(mt) > 0.6*float64(st) {
		t.Errorf("expected substantial overlap: 1T=%dµs 4T=%dµs",
			st/sim.Microsecond, mt/sim.Microsecond)
	}
}
