// Package core assembles the simulated cluster and implements the paper's
// latency-tolerance machinery on top of the protocol engine: per-processor
// user-level thread scheduling (switch-on-miss and/or switch-on-sync, with
// request combining), and the application-facing environment that performs
// shared-memory accesses, inserts prefetches, and accumulates busy time.
package core

import (
	"fmt"

	"godsm/internal/netsim"
	"godsm/internal/pagemem"
	"godsm/internal/proto"
	"godsm/internal/race"
	"godsm/internal/sim"
	"godsm/internal/stats"
)

// Config selects a cluster configuration and latency-tolerance mode.
type Config struct {
	Procs          int // processors (paper: 8)
	ThreadsPerProc int // user-level threads per processor (1 = original)

	// Protocol names the registered coherence backend to run ("lrc",
	// "erc", "hlrc", "adp"). Empty selects the default "lrc" — or "erc"
	// when the legacy EagerRC ablation switch is set.
	Protocol string

	// HomePolicy selects the home-based backend's page→home assignment:
	// "static" (page mod N; the default), "firsttouch", or "migrate".
	// Only meaningful with Protocol "hlrc"; others reject a non-empty value.
	HomePolicy string

	// SwitchOnMiss makes a thread yield the processor on a remote memory
	// miss; SwitchOnSync does the same for remote synchronization stalls.
	// The paper's "nT" configurations set both; the combined "nTP"
	// configurations set only SwitchOnSync (Section 5).
	SwitchOnMiss bool
	SwitchOnSync bool

	// Prefetch tells the applications to execute their inserted prefetch
	// calls (Section 3).
	Prefetch bool

	// ThrottlePf drops every k-th dynamic prefetch (Section 5.1, RADIX).
	ThrottlePf int

	// GCThreshold triggers diff garbage collection at a barrier once a
	// node's diff storage exceeds it (bytes). Zero disables GC.
	GCThreshold int64

	// Ablation switches (normally all false; see the ablation experiment).
	NoTokenCache   bool // locks return to their manager at every release
	PfReliable     bool // prefetch messages are never dropped
	PfHeapSharedGC bool // prefetch cache counts toward the GC trigger
	NoPfSuppress   bool // disable redundant-prefetch suppression (Sec. 5.1)
	EagerRC        bool // eager release consistency (broadcast notices at release)

	// Barrier selects the barrier implementation: "" or "central" is the
	// paper's single-manager barrier at node 0; "tree" is the deterministic
	// combining tree (BarrierFanout-ary, default 4), which bounds any one
	// node's per-episode barrier work at large cluster sizes.
	Barrier       string
	BarrierFanout int

	// Gossip disseminates write notices through seeded deterministic
	// fanout-k push rounds instead of ERC's O(N) release broadcast (and
	// pre-spreads notices under plain LRC). lrc/erc backends only.
	Gossip         bool
	GossipFanout   int      // peers pushed to per round (0 = default 2)
	GossipSeed     int64    // seeds the per-node peer choice
	GossipInterval sim.Time // round period (0 = default 50 µs)

	// RaceCheck enables the deterministic happens-before race detector
	// (internal/race): every shared access is checked against the ordering
	// induced by Lock/Unlock and Barrier, and the first conflicting
	// unordered pair panics with a *race.RaceError naming both sites. Off
	// by default; when off the detector is not even constructed, so the
	// default path's output stays byte-identical.
	RaceCheck bool
	// RaceGranularity selects the detector's conflict unit: "" or "word"
	// (8-byte words — exact for the repo's apps) or "page" (whole
	// coherence pages, which additionally flags false sharing). Requires
	// RaceCheck.
	RaceGranularity string

	// AccessNs is the busy cost charged per shared-memory access.
	AccessNs sim.Time

	// LocalLockPass is the cost of handing a lock between threads on the
	// same processor.
	LocalLockPass sim.Time

	Net   netsim.Config
	Costs proto.Costs

	// Limit aborts the simulation at this virtual time (0 = none); used to
	// guard against accidental livelock in tests.
	Limit sim.Time
}

// DefaultConfig returns the paper's baseline: 8 processors, 1 thread each,
// no prefetching, calibrated ATM network and protocol costs.
func DefaultConfig() Config {
	return Config{
		Procs:          8,
		ThreadsPerProc: 1,
		AccessNs:       30,
		LocalLockPass:  5 * sim.Microsecond,
		Net:            netsim.DefaultConfig(),
		Costs:          proto.DefaultCosts(),
	}
}

// MT reports whether this configuration multithreads at all.
func (c *Config) MT() bool {
	return c.ThreadsPerProc > 1 && (c.SwitchOnMiss || c.SwitchOnSync)
}

// System is one simulated cluster run.
type System struct {
	Cfg   Config
	K     *sim.Kernel
	Net   *netsim.Network
	Alloc *pagemem.Allocator

	CPUs    []*sim.CPU
	Nodes   []*proto.Node
	NodeSt  []stats.Node
	Procs   []*Processor
	started bool

	// Measurement snapshot taken at EndMeasurement, so that verification
	// reads after the timed region do not pollute the reported metrics.
	snapped      bool
	snapTime     sim.Time
	snapNodes    []stats.Node
	snapCPUs     [][sim.NumCategories]sim.Time
	snapMsgs     int64
	snapBytes    int64
	snapDrops    int64
	snapKindMsgs []int64
	snapKindByt  []int64
	snapPeakLink string
	snapPeakBack sim.Time
}

// ProtoConfig maps the cluster Config onto the protocol engine's Config and
// validates it against the registry: the protocol must be registered and
// must accept the knob combination. NewSystem panics on an error; front
// ends call this first to report user mistakes as plain errors.
func ProtoConfig(cfg Config) (proto.Config, error) {
	pcfg := proto.Config{
		Protocol:       cfg.Protocol,
		HomePolicy:     cfg.HomePolicy,
		ThrottlePf:     cfg.ThrottlePf,
		GCThreshold:    cfg.GCThreshold,
		NoTokenCache:   cfg.NoTokenCache,
		PfReliable:     cfg.PfReliable,
		PfHeapSharedGC: cfg.PfHeapSharedGC,
		Barrier:        cfg.Barrier,
		BarrierFanout:  cfg.BarrierFanout,
		Gossip:         cfg.Gossip,
		GossipFanout:   cfg.GossipFanout,
		GossipSeed:     cfg.GossipSeed,
		GossipInterval: cfg.GossipInterval,
	}
	if cfg.EagerRC {
		// EagerRC predates the protocol registry; it maps to the "erc"
		// backend and cannot combine with an explicit other protocol.
		if cfg.Protocol != "" && cfg.Protocol != "erc" {
			return pcfg, fmt.Errorf("EagerRC conflicts with Protocol %q", cfg.Protocol)
		}
		pcfg.Protocol = "erc"
	}
	return pcfg, proto.ValidateConfig(pcfg)
}

// ValidateMachine checks the whole machine configuration — processor and
// thread counts, thread-switching rules, interconnect topology, and the
// protocol knob combination — and reports the first problem as a plain
// error. NewSystem enforces the same rules by panicking; front ends
// validate user input with this first so mistakes surface as usage errors.
func ValidateMachine(cfg Config) error {
	if cfg.Procs <= 0 || cfg.ThreadsPerProc <= 0 {
		return fmt.Errorf("Procs and ThreadsPerProc must be positive (got %d and %d)",
			cfg.Procs, cfg.ThreadsPerProc)
	}
	if cfg.ThreadsPerProc > 1 && !cfg.SwitchOnSync {
		// A thread spin-waiting at a barrier would starve its siblings of
		// the CPU forever; multithreaded configurations must switch on
		// synchronization stalls (as all of the paper's do).
		return fmt.Errorf("ThreadsPerProc > 1 requires SwitchOnSync")
	}
	if cfg.RaceGranularity != "" && !cfg.RaceCheck {
		return fmt.Errorf("RaceGranularity set without RaceCheck")
	}
	if _, err := race.ParseGranularity(cfg.RaceGranularity); err != nil {
		return err
	}
	if err := cfg.Net.Validate(cfg.Procs); err != nil {
		return err
	}
	_, err := ProtoConfig(cfg)
	return err
}

// NewSystem builds the cluster.
func NewSystem(cfg Config) *System {
	if err := ValidateMachine(cfg); err != nil {
		panic("core: " + err.Error())
	}
	pcfg, _ := ProtoConfig(cfg)
	s := &System{Cfg: cfg, K: sim.NewKernel(), Alloc: pagemem.NewAllocator()}
	if cfg.Limit > 0 {
		s.K.SetLimit(cfg.Limit)
	}
	s.Net = netsim.New(s.K, cfg.Procs, cfg.Net, func(m *netsim.Message) {
		s.Nodes[m.Dst].Deliver(m)
	})
	s.NodeSt = make([]stats.Node, cfg.Procs)
	// All per-node protocol counters are derived from the event bus: layers
	// emit at the point something happens and the collector folds the events
	// into NodeSt, so counters and traces can never disagree.
	s.K.Bus().Subscribe(stats.NewCollector(s.NodeSt))
	for i := 0; i < cfg.Procs; i++ {
		cpu := sim.NewCPU(s.K)
		node := proto.NewNode(i, cfg.Procs, s.K, cpu, &cfg.Costs, pcfg)
		node.Send = s.Net.Send
		node.SetMT(cfg.MT())
		if cfg.Net.Faults.Active() {
			// An adversarial network needs earned reliability: switch the
			// node from fiat delivery to the ack/retransmit transport.
			node.EnableTransport()
		}
		s.CPUs = append(s.CPUs, cpu)
		s.Nodes = append(s.Nodes, node)
		s.Procs = append(s.Procs, newProcessor(s, i, node, cpu))
	}
	if cfg.RaceCheck {
		g, _ := race.ParseGranularity(cfg.RaceGranularity)
		det := race.NewDetector(race.Config{
			Threads:        s.TotalThreads(),
			ThreadsPerProc: cfg.ThreadsPerProc,
			Granularity:    g,
			Now:            s.K.Now,
		})
		for _, pr := range s.Procs {
			pr.race = det
		}
	}
	return s
}

// TotalThreads returns Procs × ThreadsPerProc.
func (s *System) TotalThreads() int { return s.Cfg.Procs * s.Cfg.ThreadsPerProc }

// Run executes app on every thread of the cluster and returns the
// measurement report. app receives each thread's Env; thread 0 of
// processor 0 conventionally initializes shared data before the first
// barrier. Run panics if any thread is still blocked when the simulation
// drains (a deadlock in the application or the model).
func (s *System) Run(app func(*Env)) *stats.Report {
	if s.started {
		panic("core: System.Run called twice")
	}
	s.started = true

	remaining := s.TotalThreads()
	for _, p := range s.Procs {
		p.spawnThreads(app, func() { remaining-- })
	}
	end := s.K.Run()
	if remaining != 0 {
		panic(fmt.Sprintf("core: %d threads never finished (deadlock or time limit)", remaining))
	}
	return s.report(end)
}

// snapshot freezes the measurement state; called via Env.EndMeasurement.
func (s *System) snapshot() {
	if s.snapped {
		return
	}
	s.snapped = true
	s.snapTime = s.K.Now()
	s.snapNodes = append([]stats.Node(nil), s.NodeSt...)
	for _, cpu := range s.CPUs {
		s.snapCPUs = append(s.snapCPUs, cpu.Accounts())
	}
	tot := s.Net.TotalStats()
	s.snapMsgs, s.snapBytes, s.snapDrops = tot.MsgsSent, tot.BytesSent, tot.Dropped
	s.snapKindMsgs, s.snapKindByt, s.snapPeakLink, s.snapPeakBack = s.traffic()
}

// traffic reads the network's per-kind counters and the busiest link seen.
func (s *System) traffic() (kindMsgs, kindBytes []int64, peakLink string, peakBacklog sim.Time) {
	kindMsgs = make([]int64, netsim.MaxKinds)
	kindBytes = make([]int64, netsim.MaxKinds)
	for k := 0; k < netsim.MaxKinds; k++ {
		kindMsgs[k], kindBytes[k] = s.Net.KindStats(netsim.Kind(k))
	}
	for _, l := range s.Net.LinkLoads() {
		if l.Peak > peakBacklog {
			peakBacklog, peakLink = l.Peak, l.Name
		}
	}
	return
}

func (s *System) report(end sim.Time) *stats.Report {
	nodes := s.NodeSt
	accounts := make([][sim.NumCategories]sim.Time, len(s.CPUs))
	for i, cpu := range s.CPUs {
		accounts[i] = cpu.Accounts()
	}
	tot := s.Net.TotalStats()
	msgs, bytes, drops := tot.MsgsSent, tot.BytesSent, tot.Dropped
	kindMsgs, kindBytes, peakLink, peakBack := s.traffic()
	if s.snapped {
		end = s.snapTime
		nodes = s.snapNodes
		accounts = s.snapCPUs
		msgs, bytes, drops = s.snapMsgs, s.snapBytes, s.snapDrops
		kindMsgs, kindBytes, peakLink, peakBack = s.snapKindMsgs, s.snapKindByt, s.snapPeakLink, s.snapPeakBack
	}

	r := &stats.Report{
		Procs:   s.Cfg.Procs,
		Threads: s.Cfg.ThreadsPerProc,
		Elapsed: end,
		Nodes:   nodes,
	}
	r.MsgsTotal = msgs
	r.BytesTotal = bytes
	r.Drops = drops
	r.KindMsgs = kindMsgs
	r.KindBytes = kindBytes
	r.PeakLink = peakLink
	r.PeakLinkBacklog = peakBack

	var avg stats.Breakdown
	for i := range accounts {
		b := stats.Breakdown{Cat: accounts[i], Elapsed: end}
		// Active categories are exact; raw idle attribution can over- or
		// under-count around service overlap, so rescale the two idle
		// categories to exactly fill the processor's unaccounted time.
		active := b.Cat[sim.CatBusy] + b.Cat[sim.CatDSM] + b.Cat[sim.CatPrefetchOv] + b.Cat[sim.CatMTOv]
		leftover := end - active
		if leftover < 0 {
			leftover = 0
		}
		rawIdle := b.Cat[sim.CatMemIdle] + b.Cat[sim.CatSyncIdle]
		if rawIdle > 0 {
			b.Cat[sim.CatMemIdle] = sim.Time(float64(leftover) * float64(b.Cat[sim.CatMemIdle]) / float64(rawIdle))
			b.Cat[sim.CatSyncIdle] = leftover - b.Cat[sim.CatMemIdle]
		} else {
			b.Cat[sim.CatSyncIdle] = leftover
		}
		r.PerProc = append(r.PerProc, b)
		for c := range avg.Cat {
			avg.Cat[c] += b.Cat[c]
		}
		_ = i
	}
	for c := range avg.Cat {
		avg.Cat[c] /= sim.Time(s.Cfg.Procs)
	}
	avg.Elapsed = end
	r.Breakdown = avg
	return r
}
