package core

import (
	"fmt"

	"godsm/internal/event"
	"godsm/internal/pagemem"
	"godsm/internal/proto"
	"godsm/internal/race"
	"godsm/internal/sim"
)

type threadState uint8

const (
	tRunning threadState = iota
	tReady
	tBlocked
	tSpinning // blocked but keeping the CPU (no thread switch for this stall)
	tDone
)

// Thread is one simulated user-level thread.
type Thread struct {
	proc  *Processor
	p     *sim.Proc
	local int // index within the processor
	id    int // global thread id
	state threadState
	cause sim.Category // what a blocked thread is waiting for
	env   *Env
}

// Processor schedules the user-level threads of one simulated processor and
// performs the thread-level request combining of Section 4.1: joining
// in-flight page fetches, local lock hand-off, and local barrier gathering.
type Processor struct {
	sys  *System
	id   int
	node *proto.Node
	cpu  *sim.CPU
	bus  *event.Bus

	threads []*Thread
	current *Thread
	ready   []*Thread
	live    int

	// Idle accounting.
	idle      bool
	idleStart sim.Time
	idleSvc   sim.Time // cpu.ServiceTotal() at idle entry
	everRan   bool     // first dispatch charges no context switch

	// Local lock queues: lock id -> state.
	llocks map[int]*localLock

	// Local barrier gathering: completion callbacks of locally arrived
	// threads; the pr.live-th arrival triggers the global arrival.
	barWakers []func()

	// Redundant-prefetch suppression flags (Section 5.1): pages already
	// touched/prefetched by some local thread this phase.
	pfFlags map[uint64]bool

	// race is the machine-wide happens-before detector, shared by every
	// processor; nil unless Config.RaceCheck is set — the nil check at
	// each hook is the feature's entire cost on the default path.
	race *race.Detector
}

type localLock struct {
	holder *Thread
	queue  []*Thread
	wakers []func()
}

// llock returns the local hand-off state for lock id.
func (pr *Processor) llock(id int) *localLock {
	ll, ok := pr.llocks[id]
	if !ok {
		ll = &localLock{}
		pr.llocks[id] = ll
	}
	return ll
}

// touch marks a page as fetched (or being fetched) by some local thread so
// sibling threads suppress redundant prefetches of it.
func (pr *Processor) touch(p pagemem.PageID) {
	if pr.sys.Cfg.ThreadsPerProc > 1 {
		pr.pfFlags[uint64(p)] = true
	}
}

func newProcessor(s *System, id int, node *proto.Node, cpu *sim.CPU) *Processor {
	return &Processor{
		sys:     s,
		id:      id,
		node:    node,
		cpu:     cpu,
		bus:     s.K.Bus(),
		llocks:  make(map[int]*localLock),
		pfFlags: make(map[uint64]bool),
	}
}

func (pr *Processor) spawnThreads(app func(*Env), onExit func()) {
	tpp := pr.sys.Cfg.ThreadsPerProc
	for i := 0; i < tpp; i++ {
		t := &Thread{
			proc:  pr,
			local: i,
			id:    pr.id*tpp + i,
			state: tReady,
		}
		t.env = newEnv(t)
		pr.threads = append(pr.threads, t)
		pr.live++
		t.p = pr.sys.K.Spawn(fmt.Sprintf("p%d.t%d", pr.id, i), func(p *sim.Proc) {
			// Park until dispatched; only one thread runs per processor.
			p.Park()
			app(t.env)
			t.env.flushBusy()
			if d := pr.race; d != nil {
				d.ThreadExit(t.id)
			}
			t.state = tDone
			pr.live--
			onExit()
			pr.current = nil
			pr.dispatchNext()
		})
		pr.ready = append(pr.ready, t)
	}
	// All spawn-start events run first (each thread parks immediately);
	// then this event dispatches the first thread.
	pr.sys.K.At(pr.sys.K.Now(), pr.dispatchNext)
}

// shouldSwitch decides whether a stall of the given cause yields the CPU.
func (pr *Processor) shouldSwitch(cause sim.Category) bool {
	if pr.sys.Cfg.ThreadsPerProc == 1 {
		return false
	}
	if cause == sim.CatMemIdle {
		return pr.sys.Cfg.SwitchOnMiss
	}
	return pr.sys.Cfg.SwitchOnSync
}

// block suspends the current thread until register's callback fires.
// register receives the completion callback and starts the asynchronous
// operation; if the operation completes synchronously (callback invoked
// before register returns), block returns without yielding. Must be called
// from the thread's own goroutine with busy time flushed.
func (t *Thread) block(cause sim.Category, register func(onDone func())) {
	pr := t.proc
	if pr.current != t {
		panic("core: block by a non-current thread")
	}
	completed := false
	registered := false
	register(func() {
		if !registered {
			completed = true
			return
		}
		pr.onRunnable(t)
	})
	if completed {
		return
	}
	registered = true

	t.env.noteBlock()
	t.cause = cause
	if pr.shouldSwitch(cause) {
		t.state = tBlocked
		pr.current = nil
		pr.dispatchNext()
	} else {
		// Keep the CPU: the processor spins until this stall resolves.
		t.state = tSpinning
		pr.enterIdle()
	}
	t.p.Park()
}

// onRunnable is called (in kernel context) when a blocked thread's wait
// completes.
func (pr *Processor) onRunnable(t *Thread) {
	switch t.state {
	case tSpinning:
		// The spinning thread resumes immediately; the wait was idle time.
		pr.exitIdle(t.cause)
		t.state = tRunning
		t.p.Wake()
	case tBlocked:
		pr.bus.Emit(event.ThreadResume(pr.id, t.id))
		t.state = tReady
		pr.ready = append(pr.ready, t)
		if pr.current == nil {
			pr.exitIdle(t.cause)
			pr.dispatchNext()
		}
	default:
		panic(fmt.Sprintf("core: onRunnable in state %d", t.state))
	}
}

// dispatchNext runs the next ready thread, charging the context-switch cost
// in multithreaded configurations. Called in kernel context when the CPU
// has no current thread (or the current thread just exited).
func (pr *Processor) dispatchNext() {
	if pr.current != nil && pr.current.state != tDone {
		panic("core: dispatch while a thread is current")
	}
	pr.current = nil
	if len(pr.ready) == 0 {
		if pr.live > 0 && !pr.idle {
			pr.enterIdle()
		}
		return
	}
	t := pr.ready[0]
	pr.ready = pr.ready[1:]
	t.state = tRunning
	pr.current = t
	if pr.sys.Cfg.ThreadsPerProc > 1 && pr.everRan {
		pr.bus.Emit(event.ThreadSwitch(pr.id, t.id))
		done := pr.cpu.Service(pr.sys.Cfg.Costs.CtxSwitch, sim.CatMTOv)
		t.p.WakeAt(done)
	} else {
		t.p.Wake()
	}
	pr.everRan = true
}

// enterIdle marks the CPU idle (all threads blocked).
func (pr *Processor) enterIdle() {
	if pr.idle {
		return
	}
	pr.idle = true
	pr.idleStart = pr.sys.K.Now()
	pr.idleSvc = pr.cpu.ServiceTotal()
}

// exitIdle charges the elapsed idle time (minus protocol service that ran
// meanwhile) to the category of the event that ended it.
func (pr *Processor) exitIdle(cause sim.Category) {
	if !pr.idle {
		return
	}
	pr.idle = false
	d := pr.sys.K.Now() - pr.idleStart
	d -= pr.cpu.ServiceTotal() - pr.idleSvc
	if d > 0 {
		pr.cpu.Charge(cause, d)
	}
}
