// Package suite assembles dsmvet: the seven analyzers plus the package
// scope each one sweeps. The scopes are policy, shared by the cmd/dsmvet
// multichecker and the repo-wide meta-test so the two can never disagree.
package suite

import (
	"sort"
	"strings"

	"godsm/internal/analysis/chargecost"
	"godsm/internal/analysis/eventemit"
	"godsm/internal/analysis/framework"
	"godsm/internal/analysis/globalrand"
	"godsm/internal/analysis/kindexhaustive"
	"godsm/internal/analysis/mapiter"
	"godsm/internal/analysis/panicinvariant"
	"godsm/internal/analysis/walltime"
)

// Unit pairs an analyzer with the import-path scope it applies to.
type Unit struct {
	Analyzer *framework.Analyzer
	// Scope reports whether the analyzer sweeps the given package.
	Scope func(pkgPath string) bool
}

// deterministicCore lists the packages whose execution must be a pure
// function of configuration and seed: everything a simulation result flows
// through. The harness and cmds around them may touch the host (report
// timing, JSON dates) — through the single annotated escape hatch.
var deterministicCore = []string{
	"godsm/internal/sim",
	"godsm/internal/proto",
	"godsm/internal/netsim",
	"godsm/internal/lrc",
	"godsm/internal/pagemem",
	"godsm/internal/apps",
	"godsm/internal/core",
	"godsm/internal/stats",
	"godsm/internal/event",
}

func inCore(path string) bool {
	for _, p := range deterministicCore {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func everywhere(string) bool { return true }

func protoOnly(path string) bool { return path == "godsm/internal/proto" }

// notEventPkg scopes eventemit: every package must build events through the
// internal/event constructors except internal/event itself, which defines
// them.
func notEventPkg(path string) bool { return path != "godsm/internal/event" }

// Units returns the dsmvet suite in diagnostic order.
//
//   - walltime and globalrand sweep the whole module: wall clocks and the
//     global rand source are banned even in the harness and cmds, where
//     the sanctioned exceptions are explicit allow-annotated helpers.
//   - mapiter sweeps the deterministic core, where iteration order can
//     reach simulation state or report bytes.
//   - eventemit sweeps everything but internal/event: the event taxonomy
//     is closed, so events are built only by that package's constructors.
//   - kindexhaustive sweeps the whole module: switch dispatch over the
//     closed Kind taxonomies must stay total wherever it appears.
//   - panicinvariant and chargecost encode protocol-engine contracts and
//     sweep internal/proto alone.
func Units() []Unit {
	return []Unit{
		{walltime.Analyzer, everywhere},
		{globalrand.Analyzer, everywhere},
		{mapiter.Analyzer, inCore},
		{eventemit.Analyzer, notEventPkg},
		{kindexhaustive.Analyzer, everywhere},
		{panicinvariant.Analyzer, protoOnly},
		{chargecost.Analyzer, protoOnly},
	}
}

// Check loads the packages matching patterns under moduleRoot and applies
// every in-scope analyzer, returning the findings sorted by position.
func Check(moduleRoot string, patterns ...string) ([]framework.Diagnostic, error) {
	loader, err := framework.NewLoader(moduleRoot)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var all []framework.Diagnostic
	for _, pkg := range pkgs {
		for _, u := range Units() {
			if !u.Scope(pkg.Path) {
				continue
			}
			diags, err := framework.Run(u.Analyzer, pkg)
			if err != nil {
				return nil, err
			}
			all = append(all, diags...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}
