package suite_test

import (
	"testing"

	"godsm/internal/analysis/framework"
	"godsm/internal/analysis/suite"
)

// TestRepoClean is the meta-test the acceptance criteria ask for: the full
// dsmvet suite over the whole module must report nothing. Any new
// wall-clock read, global-rand draw, order-sensitive map range, hand-rolled
// event literal, bare proto panic or uncharged send site fails this test
// before it reaches CI.
func TestRepoClean(t *testing.T) {
	root, err := framework.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := suite.Check(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestSuiteShape guards the suite's wiring: analyzer names must be unique
// and non-empty (allow comments key on them), and every unit must sweep at
// least the protocol engine or the module root package set it claims.
func TestSuiteShape(t *testing.T) {
	seen := map[string]bool{}
	for _, u := range suite.Units() {
		name := u.Analyzer.Name
		if name == "" || u.Analyzer.Doc == "" || u.Analyzer.Run == nil {
			t.Errorf("analyzer %q: incomplete definition", name)
		}
		if seen[name] {
			t.Errorf("duplicate analyzer name %q", name)
		}
		seen[name] = true
		if u.Scope == nil {
			t.Errorf("analyzer %q: nil scope", name)
			continue
		}
		if !u.Scope("godsm/internal/proto") {
			t.Errorf("analyzer %q: does not sweep the protocol engine", name)
		}
	}
	for _, want := range []string{"walltime", "globalrand", "mapiter", "eventemit", "kindexhaustive", "panicinvariant", "chargecost"} {
		if !seen[want] {
			t.Errorf("suite is missing analyzer %q", want)
		}
	}
}
