package globalrand_test

import (
	"testing"

	"godsm/internal/analysis/framework/analysistest"
	"godsm/internal/analysis/globalrand"
)

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), globalrand.Analyzer, "globalrand")
}
