// Package globalrand forbids the process-global math/rand source in
// simulation code. The global source is shared mutable state: it is seeded
// once per process, drained in goroutine-interleaving order by the parallel
// experiment runner, and therefore nondeterministic across runs. Simulation
// code must thread a seeded *rand.Rand from configuration (the
// netsim.FaultPlan pattern: rand.New(rand.NewSource(cfg.Seed))).
package globalrand

import (
	"go/ast"
	"go/types"

	"godsm/internal/analysis/framework"
)

// constructors are the math/rand names that build an explicitly seeded
// generator rather than touching the global source.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

var Analyzer = &framework.Analyzer{
	Name: "globalrand",
	Doc: "forbid package-level math/rand functions (the global source) in simulation " +
		"code; randomness must come from a seeded *rand.Rand plumbed from config",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || constructors[sel.Sel.Name] {
				return true
			}
			pkg := framework.PkgNameOf(pass.TypesInfo, id)
			if pkg != "math/rand" && pkg != "math/rand/v2" {
				return true
			}
			// Only function references touch the global source; type and
			// constant references (*rand.Rand fields, rand.Source) are the
			// seeded pattern's own vocabulary.
			if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			pass.Reportf(sel.Pos(),
				"rand.%s uses the process-global source; plumb a seeded *rand.Rand from config (FaultPlan pattern)",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
