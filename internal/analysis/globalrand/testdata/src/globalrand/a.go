// Fixture for the globalrand analyzer: package-level math/rand draws on
// the process-global source and is flagged; explicitly seeded generators —
// the FaultPlan pattern — and the *rand.Rand vocabulary are not.
package globalrand

import "math/rand"

var atInit = rand.Int() // want `rand\.Int uses the process-global source`

func bad(n int) int {
	_ = rand.Float64()                 // want `rand\.Float64 uses the process-global source`
	rand.Shuffle(n, func(i, j int) {}) // want `rand\.Shuffle uses the process-global source`
	return rand.Intn(n)                // want `rand\.Intn uses the process-global source`
}

// seeded is the blessed pattern: a generator constructed from a seed that
// configuration plumbed in.
func seeded(seed int64) *rand.Rand {
	rng := rand.New(rand.NewSource(seed))
	_ = rng.Intn(10)
	return rng
}

func sanctioned() int {
	return rand.Int() //dsmvet:allow globalrand — fixture's escape hatch
}
