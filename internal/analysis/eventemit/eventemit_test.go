package eventemit_test

import (
	"testing"

	"godsm/internal/analysis/eventemit"
	"godsm/internal/analysis/framework/analysistest"
)

func TestEventEmit(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), eventemit.Analyzer, "eventemit", "event")
}
