// Package eventemit keeps the simulation event taxonomy closed: outside
// internal/event, an event.Event may only be obtained from that package's
// typed constructors (event.FaultRemote, event.NetDrop, ...), never built
// field-by-field. A composite literal or a field write at an emission site
// would let a layer invent an uncatalogued event shape, silently breaking
// the 1:1 mapping the stats collector and the trace sink rely on — the
// constructor set *is* the schema.
package eventemit

import (
	"go/ast"
	"go/types"

	"godsm/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "eventemit",
	Doc: "forbid event.Event composite literals and field writes outside internal/event; " +
		"the typed constructors are the only way to build an event, keeping the taxonomy closed",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if isForeignEvent(pass, n) {
					pass.Reportf(n.Pos(),
						"event.Event composite literal outside internal/event; use the typed constructor for this kind so the event taxonomy stays closed")
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok && isForeignEvent(pass, sel.X) {
						pass.Reportf(lhs.Pos(),
							"write to event.Event field %s outside internal/event; events are immutable once constructed — add or extend a constructor instead", sel.Sel.Name)
					}
				}
			case *ast.IncDecStmt:
				if sel, ok := n.X.(*ast.SelectorExpr); ok && isForeignEvent(pass, sel.X) {
					pass.Reportf(n.Pos(),
						"write to event.Event field %s outside internal/event; events are immutable once constructed — add or extend a constructor instead", sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}

// isForeignEvent reports whether e's type is the Event struct of a package
// named "event" other than the package under analysis (the event package
// itself is free to build and stamp its own values).
func isForeignEvent(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Event" && obj.Pkg() != nil &&
		obj.Pkg().Name() == "event" && obj.Pkg() != pass.Pkg
}
