// Fixtures for the eventemit analyzer: outside the event package, events
// come from constructors only — composite literals and field writes are
// flagged, reads and constructor calls are not.
package eventemit

import "event"

type sink struct{ last event.Event }

func good() {
	e := event.Dispatch(3) // constructors are the blessed path
	_ = e.Node             // reads are fine
	s := sink{last: e}     // storing a constructed event is fine
	_ = s
}

func badLiteral() event.Event {
	return event.Event{Kind: event.KindDispatch} // want `composite literal outside internal/event`
}

func badPointerLiteral() *event.Event {
	return &event.Event{} // want `composite literal outside internal/event`
}

func badFieldWrite() {
	e := event.Dispatch(1)
	e.Node = 7 // want `write to event.Event field Node`
	e.At++     // want `write to event.Event field At`
	p := &e
	p.At = 9 // want `write to event.Event field At`
}

func allowedEscapeHatch() event.Event {
	//dsmvet:allow eventemit — modelling the audited escape hatch
	return event.Event{}
}

// A local type that happens to be called Event must not be confused with
// the taxonomy type.
type Event struct{ Kind int }

func localEventOK() Event {
	e := Event{Kind: 1}
	e.Kind = 2
	return e
}
