// Package event models internal/event for the eventemit fixtures: the
// closed taxonomy type plus a blessed constructor. The defining package may
// build and stamp its own values freely — no diagnostics expected here.
package event

type Kind uint8

const (
	KindNone Kind = iota
	KindDispatch
)

type Event struct {
	Kind Kind
	Node int32
	At   int64
}

// Dispatch is a blessed constructor.
func Dispatch(node int) Event {
	e := Event{Kind: KindDispatch, Node: int32(node)}
	e.At = -1
	return e
}
