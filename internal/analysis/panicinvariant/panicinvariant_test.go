package panicinvariant_test

import (
	"testing"

	"godsm/internal/analysis/framework/analysistest"
	"godsm/internal/analysis/panicinvariant"
)

func TestPanicinvariant(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), panicinvariant.Analyzer, "panicinvariant")
}
