// Fixture for the panicinvariant analyzer: only *InvariantError panic
// values pass; everything else must go through the structured helpers or
// carry an audited allow comment.
package panicinvariant

import "fmt"

type InvariantError struct {
	Node int
	Msg  string
}

func (e *InvariantError) Error() string { return e.Msg }

// invariantf mirrors proto/errors.go: the structured panic is the helper's
// whole job, so the analyzer accepts it.
func invariantf(node int, format string, args ...any) {
	panic(&InvariantError{Node: node, Msg: fmt.Sprintf(format, args...)})
}

func bad(x int) {
	if x < 0 {
		panic("negative x") // want `bare panic in the protocol engine`
	}
	panic(fmt.Errorf("x=%d", x)) // want `bare panic in the protocol engine`
}

func sanctioned() {
	panic("unreachable") //dsmvet:allow panicinvariant — fixture's escape hatch
}
