// Package panicinvariant forbids bare panics in the protocol engine. A
// protocol invariant failure must unwind as a *proto.InvariantError so the
// simulation kernel can attach its recent event-dispatch trace (see
// sim.EventTraceAttacher) and a chaos-soak failure prints the node's
// consistency state plus the events that led there instead of a bare stack
// trace. Use the invariantf / pageInvariantf helpers (proto/errors.go).
package panicinvariant

import (
	"go/ast"
	"go/types"

	"godsm/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "panicinvariant",
	Doc: "forbid panic values other than *InvariantError in the protocol engine; " +
		"use invariantf/pageInvariantf so failures carry node state and an event trace",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			if len(call.Args) == 1 {
				tv, ok := pass.TypesInfo.Types[call.Args[0]]
				if ok && framework.NamedTypeName(tv.Type) == "InvariantError" {
					return true
				}
			}
			pass.Reportf(call.Pos(),
				"bare panic in the protocol engine; raise a structured *InvariantError (invariantf/pageInvariantf) so the kernel can attach its event trace")
			return true
		})
	}
	return nil
}
