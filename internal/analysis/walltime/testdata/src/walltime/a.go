// Fixture for the walltime analyzer: wall-clock reads are flagged, virtual
// time and formatting vocabulary are not, and the allow comment suppresses.
package walltime

import (
	"time"

	wall "time"
)

func bad() {
	t := time.Now()                // want `time\.Now reads the wall clock`
	_ = time.Since(t)              // want `time\.Since reads the wall clock`
	_ = time.Until(t)              // want `time\.Until reads the wall clock`
	time.Sleep(time.Millisecond)   // want `time\.Sleep reads the wall clock`
	_ = time.NewTimer(time.Second) // want `time\.NewTimer reads the wall clock`
	_ = wall.Now()                 // want `time\.Now reads the wall clock`
}

func asValue() func() time.Time {
	return time.Now // want `time\.Now reads the wall clock`
}

func sanctioned() time.Time {
	return time.Now() //dsmvet:allow walltime — fixture's escape hatch
}

func wrongName() time.Time {
	return time.Now() //dsmvet:allow globalrand — names another analyzer, does not suppress // want `time\.Now reads the wall clock`
}

func sanctionedAbove() time.Time {
	//dsmvet:allow walltime — annotation on the preceding line also counts
	return time.Now()
}

// Types, constants and duration arithmetic stay usable: reports format wall
// durations they were handed without reading the clock themselves.
func fine(d time.Duration) string {
	return d.String() + time.RFC3339
}
