package walltime_test

import (
	"testing"

	"godsm/internal/analysis/framework/analysistest"
	"godsm/internal/analysis/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), walltime.Analyzer, "walltime")
}
