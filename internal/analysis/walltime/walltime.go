// Package walltime forbids wall-clock reads and host timers in simulation
// code. Every report the harness emits is trusted because same seed ⇒
// byte-identical output; a single time.Now in a simulation path silently
// breaks that. Virtual time lives in sim.Kernel; the one sanctioned
// wall-clock read is harness.Wallclock (report timing only), which carries
// the //dsmvet:allow walltime annotation.
package walltime

import (
	"go/ast"

	"godsm/internal/analysis/framework"
)

// banned lists the package time functions that read the host clock or
// schedule against it. Types and constants (time.Duration, time.RFC3339)
// stay usable for formatting wall durations the harness was handed.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

var Analyzer = &framework.Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock reads (time.Now, time.Since, host timers) outside the " +
		"annotated harness.Wallclock escape hatch; simulation code must take time " +
		"from sim.Kernel so runs stay seed-deterministic",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !banned[sel.Sel.Name] {
				return true
			}
			if framework.PkgNameOf(pass.TypesInfo, id) != "time" {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock; use sim.Kernel virtual time, or harness.Wallclock for report timing",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
