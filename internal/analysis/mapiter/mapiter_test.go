package mapiter_test

import (
	"testing"

	"godsm/internal/analysis/framework/analysistest"
	"godsm/internal/analysis/mapiter"
)

func TestMapiter(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), mapiter.Analyzer, "mapiter")
}
