// Fixture for the mapiter analyzer: the blessed order-insensitive shapes
// pass, order-sensitive bodies are flagged, and the allow comment
// suppresses.
package mapiter

import "sort"

// collect is the proto/gc.go idiom: gather keys, sort, then work.
func collect(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// guardedCollect mixes conditions, integer counters and continue — all
// order-insensitive.
func guardedCollect(m map[int][]int) (pages []int, n int) {
	for k, vs := range m {
		if len(vs) == 0 {
			continue
		}
		n += len(vs)
		pages = append(pages, k)
	}
	return
}

// transform writes an element indexed by the loop's own key: each
// iteration touches a distinct slot, so order cannot matter.
func transform(dst map[int]int, src map[int]int) {
	for k, v := range src {
		dst[k] = v * 2
	}
}

func drain(m map[int]bool) {
	for k := range m {
		delete(m, k)
	}
}

// sumFloat is flagged: float addition is not associative, so the last bits
// of the sum depend on visit order.
func sumFloat(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want `iteration order is nondeterministic`
		s += v
	}
	return s
}

// visit is flagged: the callback observes the visit order directly.
func visit(m map[int]int, f func(int)) {
	for k := range m { // want `iteration order is nondeterministic`
		f(k)
	}
}

// lastWins is flagged: a plain assignment keeps whichever key the runtime
// happened to visit last.
func lastWins(m map[int]int) (last int) {
	for k := range m { // want `iteration order is nondeterministic`
		last = k
	}
	return
}

func sanctioned(m map[int]int, f func(int)) {
	//dsmvet:allow mapiter — fixture: callback is commutative by contract
	for k := range m {
		f(k)
	}
}
