// Package mapiter flags `for … := range <map>` loops whose bodies look
// order-sensitive. Go randomizes map iteration order per run, so any
// observable effect that depends on visit order is nondeterminism the
// simulator cannot afford. The blessed idiom is proto/gc.go's: collect the
// keys, sort.Slice them, then do the real work over the sorted slice.
//
// The body check is a conservative syntactic allowlist, not a proof. A
// loop passes when every statement is one of:
//
//   - an append-accumulation `xs = append(xs, …)` (the collect-then-sort
//     first half);
//   - an integer compound assignment (`n += v`, `n++`, `n |= v`, …) —
//     integer reduction is associative and commutative, float reduction is
//     not and stays flagged;
//   - a write indexed by the loop's own key variable (`dst[k] = v`): each
//     iteration touches a distinct element, so order cannot matter;
//   - `delete(m, k)`;
//   - control flow (if/for/switch/block/continue) whose nested statements
//     all pass.
//
// Anything else — ordinary assignments, function calls, channel sends,
// early exits — is reported. Genuinely order-insensitive loops the
// heuristic cannot see through carry `//dsmvet:allow mapiter — <why>`.
package mapiter

import (
	"go/ast"
	"go/token"
	"go/types"

	"godsm/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "mapiter",
	Doc: "flag range-over-map loops with order-dependent effects; collect keys and " +
		"sort.Slice them (proto/gc.go idiom) or annotate //dsmvet:allow mapiter",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			c := &checker{info: pass.TypesInfo, key: keyIdent(rng)}
			if c.stmts(rng.Body.List) {
				return true
			}
			pass.Reportf(rng.Pos(),
				"map iteration order is nondeterministic and this loop's effects look order-sensitive; "+
					"collect keys then sort.Slice (proto/gc.go idiom), or annotate //dsmvet:allow mapiter with a justification")
			return true
		})
	}
	return nil
}

// keyIdent returns the loop's key variable, or nil for `for range m`.
func keyIdent(rng *ast.RangeStmt) *ast.Ident {
	if id, ok := rng.Key.(*ast.Ident); ok && id.Name != "_" {
		return id
	}
	return nil
}

type checker struct {
	info *types.Info
	key  *ast.Ident
}

func (c *checker) stmts(list []ast.Stmt) bool {
	for _, s := range list {
		if !c.stmt(s) {
			return false
		}
	}
	return true
}

func (c *checker) stmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.BlockStmt:
		return c.stmts(s.List)
	case *ast.IfStmt:
		return c.stmt(s.Init) && c.stmts(s.Body.List) && c.stmt(s.Else)
	case *ast.ForStmt:
		return c.stmt(s.Init) && c.stmt(s.Post) && c.stmts(s.Body.List)
	case *ast.RangeStmt:
		return c.stmts(s.Body.List)
	case *ast.SwitchStmt:
		return c.stmt(s.Init) && c.stmts(s.Body.List)
	case *ast.CaseClause:
		return c.stmts(s.Body)
	case *ast.DeclStmt:
		return true // a per-iteration local; its uses are checked where they land
	case *ast.IncDecStmt:
		return c.integer(s.X)
	case *ast.AssignStmt:
		return c.assign(s)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		return c.isBuiltin(call, "delete")
	default:
		return false
	}
}

// assign accepts the three order-insensitive assignment shapes: append
// accumulation, integer compound assignment, and key-indexed element writes.
func (c *checker) assign(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
		token.XOR_ASSIGN, token.MUL_ASSIGN:
		return len(s.Lhs) == 1 && c.integer(s.Lhs[0])
	case token.ASSIGN, token.DEFINE:
		if len(s.Lhs) != len(s.Rhs) {
			return false
		}
		for i, lhs := range s.Lhs {
			if call, ok := s.Rhs[i].(*ast.CallExpr); ok && c.isBuiltin(call, "append") {
				continue
			}
			if c.keyIndexed(lhs) {
				continue
			}
			if s.Tok == token.DEFINE {
				continue // fresh per-iteration local
			}
			return false
		}
		return true
	default:
		return false
	}
}

// keyIndexed reports whether e is `x[k]` where k is the loop's key
// variable: each iteration then writes a distinct element.
func (c *checker) keyIndexed(e ast.Expr) bool {
	if c.key == nil {
		return false
	}
	ix, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ix.Index.(*ast.Ident)
	return ok && c.info.Uses[id] != nil && c.info.Uses[id] == c.info.Defs[c.key]
}

func (c *checker) integer(e ast.Expr) bool {
	tv, ok := c.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func (c *checker) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := c.info.Uses[id].(*types.Builtin)
	return isBuiltin
}
