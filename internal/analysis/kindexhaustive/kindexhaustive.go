// Package kindexhaustive keeps switch dispatch over the closed Kind
// taxonomies total: a switch whose tag is an event.Kind (the simulation
// event taxonomy) or a netsim.Kind (the protocol's message-kind space) must
// either list every exported constant of the type or carry a default that
// panics. Three PRs in a row have added wire kinds; without this check an
// old dispatch path (the stats collector, the trace router, a protocol
// message handler) silently drops the new kind instead of failing loudly —
// exactly the bug class a closed taxonomy is supposed to prevent.
//
// The universe of a tag type is every *exported* constant of that type
// declared in the type's defining package, the package under analysis, or
// any of its imports (netsim.Kind's constants live in internal/proto, not
// internal/netsim, so the defining package alone is not enough). Unexported
// sentinels like numKinds are deliberately excluded: they count kinds, they
// are not kinds.
//
// A default clause discharges the obligation only if it panics: a direct
// builtin panic, or a call whose name contains "panic", "invariant" or
// "fatal" (the protocol engine must fail through its invariantf helpers —
// see the panicinvariant analyzer — so those count as panicking here).
package kindexhaustive

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"godsm/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "kindexhaustive",
	Doc: "require switches over the closed event.Kind / netsim.Kind taxonomies to handle " +
		"every exported constant or carry a panicking default, so new kinds cannot be silently dropped",
	Run: run,
}

// kindPkgs names the packages whose Kind types are closed taxonomies. The
// match is by package name, not import path, so the analyzer's fixture
// packages (and any future vendored layout) resolve the same way.
var kindPkgs = map[string]bool{"event": true, "netsim": true}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named := kindType(pass, sw.Tag)
			if named == nil {
				return true
			}
			checkSwitch(pass, sw, named)
			return true
		})
	}
	return nil
}

// kindType returns the tag's named type if it is a closed Kind taxonomy.
func kindType(pass *framework.Pass, tag ast.Expr) *types.Named {
	tv, ok := pass.TypesInfo.Types[tag]
	if !ok {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "Kind" || obj.Pkg() == nil || !kindPkgs[obj.Pkg().Name()] {
		return nil
	}
	return named
}

func checkSwitch(pass *framework.Pass, sw *ast.SwitchStmt, named *types.Named) {
	universe := kindUniverse(pass, named)
	covered := make(map[int64]bool)
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil { // default clause
			if panics(pass, cc.Body) {
				return // a panicking default makes any case set total
			}
			pass.Reportf(sw.Switch,
				"switch over %s.Kind has a non-panicking default: a newly added kind would be silently swallowed; make the default panic (or list every kind explicitly)",
				named.Obj().Pkg().Name())
			return
		}
		for _, e := range cc.List {
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Value == nil {
				return // non-constant case: out of the analyzer's reach
			}
			if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
				covered[v] = true
			}
		}
	}
	var missing []string
	for v, name := range universe {
		if !covered[v] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Switch,
		"switch over %s.Kind without a panicking default misses %s; handle every kind or add a default that panics",
		named.Obj().Pkg().Name(), strings.Join(missing, ", "))
}

// kindUniverse gathers the exported constants of the tag type, keyed by
// value (one representative name per value, the lexicographically first),
// from the type's defining package, the package under analysis, and its
// imports.
func kindUniverse(pass *framework.Pass, named *types.Named) map[int64]string {
	out := make(map[int64]string)
	scopes := []*types.Scope{named.Obj().Pkg().Scope(), pass.Pkg.Scope()}
	for _, imp := range pass.Pkg.Imports() {
		scopes = append(scopes, imp.Scope())
	}
	for _, scope := range scopes {
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !c.Exported() || !types.Identical(c.Type(), named) {
				continue
			}
			v, exact := constant.Int64Val(constant.ToInt(c.Val()))
			if !exact {
				continue
			}
			if prev, ok := out[v]; !ok || name < prev {
				out[v] = name
			}
		}
	}
	return out
}

// panics reports whether the statement list contains a panicking call: the
// builtin panic, or a function/method whose name implies process or
// invariant failure.
func panics(pass *framework.Pass, body []ast.Stmt) bool {
	for _, st := range body {
		es, ok := st.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			continue
		}
		if id.Name == "panic" {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
		lower := strings.ToLower(id.Name)
		for _, marker := range []string{"panic", "invariant", "fatal"} {
			if strings.Contains(lower, marker) {
				return true
			}
		}
	}
	return false
}
