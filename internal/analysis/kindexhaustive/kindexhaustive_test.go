package kindexhaustive_test

import (
	"testing"

	"godsm/internal/analysis/framework/analysistest"
	"godsm/internal/analysis/kindexhaustive"
)

func TestKindExhaustive(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), kindexhaustive.Analyzer, "kindexhaustive")
}
