// Package netsim models internal/netsim for the kindexhaustive fixtures:
// it defines the Kind type but none of its constants — those live in the
// importing (proto-style) package, so the analyzer must gather the universe
// from more than the defining package. MaxKinds is untyped, like the real
// one, and must not enter the universe.
package netsim

type Kind uint8

const MaxKinds = 8
