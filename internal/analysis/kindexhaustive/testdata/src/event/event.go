// Package event models internal/event for the kindexhaustive fixtures: a
// closed Kind taxonomy with an unexported counting sentinel, which must not
// be part of the universe a switch is required to cover.
package event

type Kind uint8

const (
	KindNone Kind = iota
	KindFault
	KindDeliver
	numKinds
)

// N uses the sentinel the way internal/event does.
const N = int(numKinds)
