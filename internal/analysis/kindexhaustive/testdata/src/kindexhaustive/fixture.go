// The kindexhaustive fixtures: switches over the closed Kind taxonomies in
// every compliance state the analyzer distinguishes.
package kindexhaustive

import (
	"event"
	"netsim"
)

// Message kinds declared proto-style: the constants of netsim.Kind live in
// this package, not in netsim.
const (
	KindA netsim.Kind = iota
	KindB
	numMsgKinds
)

const _ = int(numMsgKinds)

// Every kind listed: total without a default.
func exhaustive(k event.Kind) int {
	switch k {
	case event.KindNone:
		return 0
	case event.KindFault, event.KindDeliver:
		return 1
	}
	return 2
}

// Missing a kind and no default: the taxonomy can grow past this switch.
func missing(k event.Kind) int {
	switch k { // want `misses KindDeliver`
	case event.KindNone, event.KindFault:
		return 1
	}
	return 0
}

// A panicking default discharges the obligation for any case set.
func panickingDefault(k event.Kind) int {
	switch k {
	case event.KindNone:
		return 0
	default:
		panic("unknown kind")
	}
}

// A non-panicking default swallows future kinds.
func softDefault(k event.Kind) string {
	switch k { // want `non-panicking default`
	case event.KindNone:
		return "none"
	default:
		return "?"
	}
}

// The proto engine fails through invariantf helpers, which count as
// panicking (see the panicinvariant analyzer).
func invariantDefault(k netsim.Kind) {
	switch k {
	case KindA:
	default:
		invariantf("unexpected message kind %d", int(k))
	}
}

func invariantf(format string, args ...any) {}

// netsim.Kind's universe comes from this package's declarations; the
// untyped MaxKinds sentinel stays out of it.
func missingMsg(k netsim.Kind) {
	switch k { // want `misses KindB`
	case KindA:
	}
}

// Switches over unrelated types are none of the analyzer's business.
func notKind(x int) int {
	switch x {
	case 1:
		return 1
	}
	return 0
}

// Allow comments suppress findings like in every other analyzer.
func allowed(k event.Kind) int {
	switch k { //dsmvet:allow kindexhaustive — fixture: audited partial dispatch
	case event.KindNone:
		return 0
	}
	return 1
}
