// Package analysistest runs a framework.Analyzer over fixture packages and
// checks its diagnostics against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest closely enough that the
// fixtures would work unchanged under the real driver.
//
// A fixture line carries one or more expectations as quoted regular
// expressions:
//
//	rand.Intn(4) // want `package-level math/rand`
//	time.Now()   // want "wall clock" "second finding on the same line"
//
// Every reported diagnostic must match an expectation on its line, and
// every expectation must be matched — unmatched items in either direction
// fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"godsm/internal/analysis/framework"
)

// TestData returns the test's testdata directory. Go runs tests with the
// package directory as the working directory.
func TestData() string {
	dir, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(dir, "testdata")
}

// Run loads testdata/src/<pkg> for each named fixture package, applies the
// analyzer, and checks diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		if err := runDir(t, a, dir, pkg); err != nil {
			t.Errorf("%s: %v", pkg, err)
		}
	}
}

func runDir(t *testing.T, a *framework.Analyzer, dir, pkgPath string) error {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no fixture files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	// Fixtures import only the standard library; the source importer
	// resolves it from GOROOT without prebuilt export data.
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return fmt.Errorf("type-checking fixture: %w", err)
	}

	diags, err := framework.Run(a, &framework.Package{
		Path: pkgPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info,
	})
	if err != nil {
		return err
	}

	wants := collectWants(fset, files)
	for _, d := range diags {
		key := posKey{d.Pos.Filename, d.Pos.Line}
		if !matchWant(wants[key], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pkgPath, d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: %s:%d: no diagnostic matching %q", pkgPath, key.file, key.line, w.re.String())
			}
		}
	}
	return nil
}

type posKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// wantRe pulls the expectation list out of a `// want` comment; quoted or
// backquoted regexps follow.
var (
	wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)
	exprRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

func collectWants(fset *token.FileSet, files []*ast.File) map[posKey][]*want {
	wants := make(map[posKey][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range exprRe.FindAllString(m[1], -1) {
					var pat string
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else {
						pat = strings.ReplaceAll(q[1:len(q)-1], `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						panic(fmt.Sprintf("%s: bad want pattern %q: %v", pos, pat, err))
					}
					key := posKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

func matchWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
