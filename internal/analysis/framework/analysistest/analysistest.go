// Package analysistest runs a framework.Analyzer over fixture packages and
// checks its diagnostics against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest closely enough that the
// fixtures would work unchanged under the real driver.
//
// A fixture line carries one or more expectations as quoted regular
// expressions:
//
//	rand.Intn(4) // want `package-level math/rand`
//	time.Now()   // want "wall clock" "second finding on the same line"
//
// Every reported diagnostic must match an expectation on its line, and
// every expectation must be matched — unmatched items in either direction
// fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"godsm/internal/analysis/framework"
)

// TestData returns the test's testdata directory. Go runs tests with the
// package directory as the working directory.
func TestData() string {
	dir, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(dir, "testdata")
}

// Run loads testdata/src/<pkg> for each named fixture package, applies the
// analyzer, and checks diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		if err := runDir(t, a, filepath.Join(testdata, "src"), pkg); err != nil {
			t.Errorf("%s: %v", pkg, err)
		}
	}
}

func runDir(t *testing.T, a *framework.Analyzer, root, pkgPath string) error {
	t.Helper()
	dir := filepath.Join(root, filepath.FromSlash(pkgPath))
	fset := token.NewFileSet()
	files, err := parseFixtureDir(fset, dir)
	if err != nil {
		return err
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	// Imports resolve first against sibling fixture packages under
	// testdata/src (so fixtures can model cross-package contracts), then
	// against the standard library via the GOROOT source importer.
	conf := types.Config{Importer: newFixtureImporter(root, fset)}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return fmt.Errorf("type-checking fixture: %w", err)
	}

	diags, err := framework.Run(a, &framework.Package{
		Path: pkgPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info,
	})
	if err != nil {
		return err
	}

	wants := collectWants(fset, files)
	for _, d := range diags {
		key := posKey{d.Pos.Filename, d.Pos.Line}
		if !matchWant(wants[key], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pkgPath, d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: %s:%d: no diagnostic matching %q", pkgPath, key.file, key.line, w.re.String())
			}
		}
	}
	return nil
}

type posKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// wantRe pulls the expectation list out of a `// want` comment; quoted or
// backquoted regexps follow.
var (
	wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)
	exprRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

func collectWants(fset *token.FileSet, files []*ast.File) map[posKey][]*want {
	wants := make(map[posKey][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range exprRe.FindAllString(m[1], -1) {
					var pat string
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else {
						pat = strings.ReplaceAll(q[1:len(q)-1], `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						panic(fmt.Sprintf("%s: bad want pattern %q: %v", pos, pat, err))
					}
					key := posKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

func matchWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseFixtureDir parses every .go file in one fixture directory, sorted
// for deterministic diagnostics.
func parseFixtureDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// fixtureImporter resolves import paths against testdata/src before falling
// back to the standard library, so a fixture package can import another
// fixture package the way real code imports internal/event.
type fixtureImporter struct {
	root string // testdata/src
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*types.Package
}

func newFixtureImporter(root string, fset *token.FileSet) *fixtureImporter {
	return &fixtureImporter{
		root: root,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*types.Package),
	}
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := im.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(im.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return im.std.Import(path)
	}
	files, err := parseFixtureDir(im.fset, dir)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: im}
	pkg, err := conf.Check(path, im.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture import %s: %w", path, err)
	}
	im.pkgs[path] = pkg
	return pkg, nil
}
