// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that dsmvet's analyzers are written
// against. The container this repo builds in has no module proxy access, so
// rather than vendoring x/tools we keep the same Analyzer/Pass shape on top
// of the standard library (go/ast, go/parser, go/types) — analyzers written
// here port to the real framework by swapping one import.
//
// Beyond the x/tools shape, the framework adds the one policy mechanism all
// dsmvet analyzers share: `//dsmvet:allow <name>[,<name>...] — reason`
// comments. A diagnostic is suppressed when an allow comment naming its
// analyzer sits on the same line or on the line directly above. Allow
// comments are deliberately loud in review diffs: they are the audited
// escape hatches that turn "convention" into "checked invariant with an
// explicit exception list".
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dsmvet:allow comments.
	Name string
	// Doc is the one-paragraph description printed by `dsmvet -help`.
	Doc string
	// Run applies the analyzer to one package and reports findings
	// through pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report receives every non-suppressed diagnostic.
	report func(Diagnostic)
	// allow maps file name -> line -> analyzer names allowed on that line.
	allow map[string]map[int]map[string]bool
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// allowRe matches the directive comment. The directive must start the
// comment; everything after the name list (dash, em-dash, or ":") is a
// human-audience justification and is ignored here.
var allowRe = regexp.MustCompile(`^//\s*dsmvet:allow\s+([A-Za-z0-9_,\s]+)`)

// buildAllowIndex scans a file's comments for //dsmvet:allow directives.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	idx := make(map[string]map[int]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					lines[pos.Line] = names
				}
				for _, name := range strings.FieldsFunc(m[1], func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					names[name] = true
				}
			}
		}
	}
	return idx
}

// Allowed reports whether a diagnostic from this pass's analyzer at pos is
// suppressed by an allow comment on the same line or the line above.
func (p *Pass) Allowed(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	lines := p.allow[position.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{position.Line, position.Line - 1} {
		if names := lines[line]; names[p.Analyzer.Name] || names["all"] {
			return true
		}
	}
	return false
}

// Reportf reports a finding unless an allow comment suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Allowed(pos) {
		return
	}
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies one analyzer to one loaded package and returns its
// diagnostics sorted by position.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		report:    func(d Diagnostic) { diags = append(diags, d) },
		allow:     buildAllowIndex(pkg.Fset, pkg.Files),
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// PkgNameOf resolves the package an identifier refers to when it names an
// import (e.g. the `time` in `time.Now`), or "" when it does not.
func PkgNameOf(info *types.Info, id *ast.Ident) string {
	if obj, ok := info.Uses[id].(*types.PkgName); ok {
		return obj.Imported().Path()
	}
	return ""
}

// NamedTypeName returns the name of t's core named type, dereferencing one
// level of pointer, or "" when t has no name (builtin, composite, nil).
func NamedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
