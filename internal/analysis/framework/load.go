package framework

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked, non-test package.
type Package struct {
	Path  string // import path ("godsm/internal/proto")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module without
// external dependencies. Module-local imports resolve by the trivial
// path↔directory mapping a single-module repo affords; standard-library
// imports resolve through go/importer's source importer (GOROOT source, no
// network, no prebuilt export data needed). Test files are skipped: the
// determinism invariants dsmvet enforces bind simulation code, while tests
// are free to use wall clocks and ad-hoc randomness.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader for the module rooted at moduleRoot (a
// directory containing go.mod).
func NewLoader(moduleRoot string) (*Loader, error) {
	root, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("source importer unavailable")
	}
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        std,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// Load resolves package patterns ("./...", "./internal/proto", "all") to
// packages and type-checks them, returning them sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "all" || pat == "./...":
			if err := l.walk(l.ModuleRoot, dirs); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(l.ModuleRoot, strings.TrimSuffix(pat, "/..."))
			if err := l.walk(root, dirs); err != nil {
				return nil, err
			}
		default:
			dirs[filepath.Join(l.ModuleRoot, pat)] = true
		}
	}
	var paths []string
	for dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
	}
	sort.Strings(paths)
	var out []*Package
	for _, path := range paths {
		pkg, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// walk collects every directory under root that contains non-test Go files.
func (l *Loader) walk(root string, dirs map[string]bool) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
}

// loadPackage type-checks the module package with the given import path,
// returning a cached result on repeat calls and nil when the directory
// holds no non-test Go files.
func (l *Loader) loadPackage(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer func() { l.loading[path] = false }()

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	files, err := parseDir(l.fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		l.pkgs[path] = nil
		return nil, nil
	}
	info := newInfo()
	conf := types.Config{Importer: l, FakeImportC: true}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-local packages load
// through this loader, everything else through the stdlib source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// parseDir parses every non-test .go file in dir (sorted for deterministic
// diagnostics), with comments, skipping `//go:build ignore` files.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if ignored(f) {
			continue
		}
		files = append(files, f)
	}
	return files, nil
}

// ignored reports whether the file opts out of the build with
// `//go:build ignore`.
func ignored(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//go:build ignore") {
				return true
			}
		}
	}
	return false
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
