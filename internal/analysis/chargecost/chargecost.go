// Package chargecost keeps every message a protocol node emits paid for.
// The cost model's per-message send charge (Costs.MsgSend and friends) is
// applied at the send site by the charging helpers in proto/costs.go —
// sendAfter for sequenced traffic, sendUnreliable for prefetch-class
// datagrams — which route through the transport choke point. A direct call
// to the raw network hook (Node.Send) or the transport entry (Node.xmit)
// skips the charge: the message leaves the node for free and the
// busy/overhead breakdowns drift from the wire traffic.
//
// The helpers themselves, and the transport's retransmission paths (which
// charge MsgSend before re-sending), are the audited exceptions and carry
// `//dsmvet:allow chargecost` annotations.
package chargecost

import (
	"go/ast"

	"godsm/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "chargecost",
	Doc: "flag direct Node.Send/Node.xmit calls that bypass the costs.go charging " +
		"helpers (sendAfter/sendUnreliable); no message leaves a node for free",
	Run: run,
}

// raw names the Node members that transmit without charging CPU cost.
var raw = map[string]bool{"Send": true, "xmit": true}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !raw[sel.Sel.Name] {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sel.X]
			if !ok || framework.NamedTypeName(tv.Type) != "Node" {
				return true
			}
			pass.Reportf(call.Pos(),
				"direct Node.%s bypasses the costs.go charging helpers; use sendAfter/sendUnreliable so the send cost is charged",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
