package chargecost_test

import (
	"testing"

	"godsm/internal/analysis/chargecost"
	"godsm/internal/analysis/framework/analysistest"
)

func TestChargecost(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), chargecost.Analyzer, "chargecost")
}
