// Fixture for the chargecost analyzer, shaped like proto.Node: Send is the
// raw injected network hook, xmit the transport entry, sendAfter the
// charging helper. Direct raw calls are flagged; the helper's own call is
// the annotated choke point.
package chargecost

type Message struct{ Src, Dst int }

type Time int64

type Node struct {
	// Send transmits on the simulated network; injected by wiring.
	Send func(*Message) Time
}

func (n *Node) xmit(m *Message) {}

// sendAfter is the charging helper: its xmit call is the audited choke
// point.
func (n *Node) sendAfter(t Time, m *Message) {
	n.xmit(m) //dsmvet:allow chargecost — choke point under test
}

func bad(n *Node, m *Message) {
	n.Send(m) // want `direct Node\.Send bypasses the costs\.go charging helpers`
	n.xmit(m) // want `direct Node\.xmit bypasses the costs\.go charging helpers`
}

func good(n *Node, m *Message) {
	n.sendAfter(0, m)
}

// otherSend is a different type's Send: out of scope.
type courier struct{}

func (courier) Send(m *Message) Time { return 0 }

func unrelated(c courier, m *Message) {
	c.Send(m)
}
