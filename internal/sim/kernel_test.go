package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventHeapAgainstSortedReference feeds the hand-rolled heap a large
// random schedule (with many timestamp collisions) and checks that events
// pop in exactly (time, sequence) order.
func TestEventHeapAgainstSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h eventHeap
	type key struct {
		at  Time
		seq uint64
	}
	var want []key
	for i := 0; i < 5000; i++ {
		e := schedEvent{at: Time(rng.Intn(64)), seq: uint64(i)}
		h.pushEvent(e)
		want = append(want, key{e.at, e.seq})
		// Interleave pops so the heap shrinks and regrows.
		if rng.Intn(4) == 0 && len(h) > 0 {
			h.popEvent()
		}
	}
	var got []key
	for len(h) > 0 {
		e := h.popEvent()
		got = append(got, key{e.at, e.seq})
	}
	// The reference order of whatever remains is the sorted suffix of the
	// schedule minus the interleaved pops; rebuild it by re-running the
	// same pop decisions against a sorted multiset.
	sort.Slice(want, func(i, j int) bool {
		if want[i].at != want[j].at {
			return want[i].at < want[j].at
		}
		return want[i].seq < want[j].seq
	})
	// got must be a sorted subsequence of want and itself sorted.
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.at > b.at || (a.at == b.at && a.seq > b.seq) {
			t.Fatalf("pop order violated at %d: %v before %v", i, a, b)
		}
	}
}

// TestEventSchedulingAllocs: pushing and popping events must not allocate
// once the heap's backing slice has grown (no interface boxing).
func TestEventSchedulingAllocs(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	// Grow the backing array first.
	for i := 0; i < 64; i++ {
		k.At(Time(i), fn)
	}
	for len(k.events) > 0 {
		k.events.popEvent()
	}
	got := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			k.events.pushEvent(schedEvent{at: Time(i), fn: fn})
		}
		for len(k.events) > 0 {
			k.events.popEvent()
		}
	})
	if got != 0 {
		t.Errorf("event push/pop allocates %.1f times per run, want 0", got)
	}
}

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	end := k.Run()
	if end != 30 {
		t.Fatalf("end time = %d, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	k.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel()
	var fired []Time
	k.At(10, func() {
		fired = append(fired, k.Now())
		k.After(5, func() { fired = append(fired, k.Now()) })
		k.At(k.Now(), func() { fired = append(fired, k.Now()) })
	})
	k.Run()
	if len(fired) != 3 || fired[0] != 10 || fired[1] != 10 || fired[2] != 15 {
		t.Fatalf("fired = %v, want [10 10 15]", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestLimitStopsRun(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.At(10, func() { ran++ })
	k.At(100, func() { ran++ })
	k.SetLimit(50)
	end := k.Run()
	if ran != 1 {
		t.Fatalf("ran %d events, want 1", ran)
	}
	if end != 10 {
		t.Fatalf("end = %d, want 10", end)
	}
}

func TestProcSleep(t *testing.T) {
	k := NewKernel()
	var trace []Time
	k.Spawn("a", func(p *Proc) {
		trace = append(trace, k.Now())
		p.Sleep(100)
		trace = append(trace, k.Now())
		p.Sleep(50)
		trace = append(trace, k.Now())
	})
	k.Run()
	want := []Time{0, 100, 150}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestProcParkWake(t *testing.T) {
	k := NewKernel()
	var woke Time = -1
	var p *Proc
	p = k.Spawn("sleeper", func(p *Proc) {
		p.Park()
		woke = k.Now()
	})
	k.At(77, func() { p.Wake() })
	k.Run()
	if woke != 77 {
		t.Fatalf("woke at %d, want 77", woke)
	}
}

func TestProcInterleaving(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a0")
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20)
		order = append(order, "a30")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b0")
		p.Sleep(15)
		order = append(order, "b15")
	})
	k.Run()
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestShutdownUnwindsParkedProcs(t *testing.T) {
	k := NewKernel()
	cleaned := false
	k.Spawn("stuck", func(p *Proc) {
		defer func() {
			// The shutdown panic must pass through so the kernel can
			// reclaim the goroutine; it is recovered inside the kernel.
			cleaned = true
			if r := recover(); r != nil {
				panic(r)
			}
		}()
		p.Park() // never woken
	})
	k.Run()
	if !cleaned {
		t.Fatal("parked process was not unwound at shutdown")
	}
}

func TestProcPanicPropagatesToRunCaller(t *testing.T) {
	k := NewKernel()
	k.Spawn("bystander", func(p *Proc) {
		p.Park() // never woken; must be unwound despite the crash below
	})
	k.Spawn("crasher", func(p *Proc) {
		p.Sleep(10)
		panic("boom")
	})
	var got any
	func() {
		defer func() { got = recover() }()
		k.Run()
	}()
	if got != "boom" {
		t.Fatalf("recover() = %v, want %q", got, "boom")
	}
	if len(k.procs) != 0 {
		t.Fatalf("%d procs still registered after panic unwound Run", len(k.procs))
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		k := NewKernel()
		var trace []Time
		for i := 0; i < 5; i++ {
			d := Time(10 * (i + 1))
			k.Spawn("p", func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(d)
					trace = append(trace, k.Now())
				}
			})
		}
		k.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic trace at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCPUServiceQueuing(t *testing.T) {
	k := NewKernel()
	c := NewCPU(k)
	var done1, done2 Time
	k.At(100, func() {
		done1 = c.Service(50, CatDSM)
		done2 = c.Service(30, CatDSM)
	})
	k.Run()
	if done1 != 150 {
		t.Errorf("done1 = %d, want 150", done1)
	}
	if done2 != 180 {
		t.Errorf("done2 = %d, want 180 (queued behind first)", done2)
	}
	if c.Account(CatDSM) != 80 {
		t.Errorf("DSM account = %d, want 80", c.Account(CatDSM))
	}
}

func TestCPUComputeWithInterrupt(t *testing.T) {
	k := NewKernel()
	c := NewCPU(k)
	var finished Time
	k.Spawn("worker", func(p *Proc) {
		c.ThreadCompute(p, 1000, CatBusy)
		finished = k.Now()
	})
	// Interrupt arrives mid-compute and steals 200 ns.
	k.At(400, func() { c.Service(200, CatDSM) })
	k.Run()
	if finished != 1200 {
		t.Errorf("compute finished at %d, want 1200 (1000 + 200 debt)", finished)
	}
	if c.Account(CatBusy) != 1000 || c.Account(CatDSM) != 200 {
		t.Errorf("accounts busy=%d dsm=%d, want 1000/200",
			c.Account(CatBusy), c.Account(CatDSM))
	}
}

func TestCPUComputeWaitsForService(t *testing.T) {
	k := NewKernel()
	c := NewCPU(k)
	var finished Time
	k.At(0, func() { c.Service(300, CatDSM) })
	k.Spawn("worker", func(p *Proc) {
		p.Sleep(100) // arrive while service is still running
		c.ThreadCompute(p, 100, CatBusy)
		finished = k.Now()
	})
	k.Run()
	if finished != 400 {
		t.Errorf("compute finished at %d, want 400 (waits for service until 300)", finished)
	}
}

func TestCPUMultipleInterrupts(t *testing.T) {
	k := NewKernel()
	c := NewCPU(k)
	var finished Time
	k.Spawn("worker", func(p *Proc) {
		c.ThreadCompute(p, 1000, CatBusy)
		finished = k.Now()
	})
	k.At(100, func() { c.Service(50, CatDSM) })
	k.At(200, func() { c.Service(70, CatDSM) })
	k.At(1100, func() { c.Service(30, CatDSM) }) // lands inside the debt extension
	k.Run()
	if finished != 1150 {
		t.Errorf("finished at %d, want 1150", finished)
	}
}

func TestCategoryString(t *testing.T) {
	names := map[Category]string{
		CatBusy:       "Busy",
		CatDSM:        "DSM Overhead",
		CatMemIdle:    "Memory Miss Idle",
		CatSyncIdle:   "Synchronization Idle",
		CatPrefetchOv: "Prefetch Overhead",
		CatMTOv:       "Multithreading Overhead",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("Category(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}
