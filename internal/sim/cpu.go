package sim

import "fmt"

// Category classifies where a processor's time goes. The categories mirror
// the execution-time breakdowns in the paper's figures (Busy, DSM overhead,
// memory-miss idle, synchronization idle, prefetch overhead, multithreading
// overhead).
type Category uint8

// Processor time categories.
const (
	CatBusy       Category = iota // useful application computation
	CatDSM                        // DSM system software (protocol, diffs, messages)
	CatMemIdle                    // stalled waiting on a remote memory miss
	CatSyncIdle                   // stalled waiting on synchronization
	CatPrefetchOv                 // overhead of issuing prefetches
	CatMTOv                       // thread context-switch overhead
	NumCategories
)

// String returns the paper's label for the category.
func (c Category) String() string {
	switch c {
	case CatBusy:
		return "Busy"
	case CatDSM:
		return "DSM Overhead"
	case CatMemIdle:
		return "Memory Miss Idle"
	case CatSyncIdle:
		return "Synchronization Idle"
	case CatPrefetchOv:
		return "Prefetch Overhead"
	case CatMTOv:
		return "Multithreading Overhead"
	default:
		return fmt.Sprintf("Category(%d)", uint8(c))
	}
}

// CPU models one processor's single CPU. Application thread computation and
// protocol message service share it under an interrupt model: service work
// preempts a computing thread and pushes the thread's completion time back
// (the "interrupt debt"), matching the paper's observation that message
// handling appears as DSM overhead stealing time from the application.
type CPU struct {
	k *Kernel

	svcUntil Time // completion time of the last queued service work
	svcTotal Time // cumulative service time ever charged

	inCompute bool // an application thread is mid-computation
	debt      Time // service time accumulated during the current computation

	acct [NumCategories]Time
}

// NewCPU returns a CPU bound to kernel k.
func NewCPU(k *Kernel) *CPU { return &CPU{k: k} }

// Account returns the accumulated time in category c.
func (c *CPU) Account(cat Category) Time { return c.acct[cat] }

// Accounts returns a copy of all category accumulators.
func (c *CPU) Accounts() [NumCategories]Time { return c.acct }

// Charge adds d to category cat without consuming CPU time in the model.
// It is used for idle-time attribution, which is computed by the scheduler.
func (c *CPU) Charge(cat Category, d Time) { c.acct[cat] += d }

// Service charges d nanoseconds of protocol work to category cat and
// returns the virtual time at which that work completes (e.g. when a reply
// message may be sent). Service work preempts thread computation.
func (c *CPU) Service(d Time, cat Category) (done Time) {
	c.acct[cat] += d
	c.svcTotal += d
	start := c.k.now
	if c.svcUntil > start {
		start = c.svcUntil
	}
	c.svcUntil = start + d
	if c.inCompute {
		c.debt += d
	}
	return c.svcUntil
}

// ServiceTotal returns cumulative service time; the scheduler uses deltas of
// it to keep idle-time attribution from double-counting service intervals.
func (c *CPU) ServiceTotal() Time { return c.svcTotal }

// ThreadCompute runs d nanoseconds of application computation on behalf of
// process p, charging it to cat. It blocks p (in virtual time) until the
// computation completes, including any service work that preempted it and
// any service work that was already occupying the CPU.
func (c *CPU) ThreadCompute(p *Proc, d Time, cat Category) {
	if c.inCompute {
		panic("sim: overlapping ThreadCompute on one CPU")
	}
	// Wait for in-progress service work to drain before starting.
	for c.svcUntil > c.k.now {
		p.Sleep(c.svcUntil - c.k.now)
	}
	c.acct[cat] += d
	c.inCompute = true
	c.debt = 0
	remaining := d
	for {
		p.Sleep(remaining)
		if c.debt == 0 {
			break
		}
		remaining, c.debt = c.debt, 0 // preempted: run the stolen time again
	}
	c.inCompute = false
}

// BusyUntil reports when currently queued service work completes.
func (c *CPU) BusyUntil() Time { return c.svcUntil }
