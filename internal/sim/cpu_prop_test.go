package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: under any interleaving of thread computation and service
// interrupts, (a) every charged nanosecond is accounted exactly once,
// (b) the thread's wall time is at least its compute plus the service that
// preempted it, and (c) service completion times never decrease.
func TestCPUAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		c := NewCPU(k)

		var wantBusy, wantSvc Time
		nCompute := 1 + rng.Intn(4)
		var finished Time
		k.Spawn("worker", func(p *Proc) {
			for i := 0; i < nCompute; i++ {
				d := Time(1+rng.Intn(2000)) * Microsecond
				wantBusy += d
				c.ThreadCompute(p, d, CatBusy)
				p.Sleep(Time(rng.Intn(500)) * Microsecond)
			}
			finished = k.Now()
		})
		nSvc := rng.Intn(12)
		var lastDone Time
		ok := true
		for i := 0; i < nSvc; i++ {
			at := Time(rng.Intn(10000)) * Microsecond
			d := Time(1+rng.Intn(300)) * Microsecond
			wantSvc += d
			k.At(at, func() {
				done := c.Service(d, CatDSM)
				if done < k.Now()+d {
					ok = false // completion before the work could finish
				}
				if done < lastDone {
					ok = false // service queue went backwards
				}
				lastDone = done
			})
		}
		end := k.Run()
		if c.Account(CatBusy) != wantBusy || c.Account(CatDSM) != wantSvc {
			return false
		}
		if finished > 0 && finished < wantBusy {
			return false // thread finished faster than its own compute
		}
		_ = end
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: many processes sleeping random durations always resume at
// exactly the requested virtual times, in global time order.
func TestProcSleepExactnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		ok := true
		var lastWake Time
		for i := 0; i < 6; i++ {
			delays := make([]Time, 1+rng.Intn(5))
			for j := range delays {
				delays[j] = Time(rng.Intn(5000)) * Microsecond
			}
			k.Spawn("p", func(p *Proc) {
				expect := k.Now()
				for _, d := range delays {
					expect += d
					p.Sleep(d)
					if k.Now() != expect {
						ok = false
					}
					if k.Now() < lastWake {
						ok = false // global time went backwards
					}
					lastWake = k.Now()
				}
			})
		}
		k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
