// Package sim provides the deterministic discrete-event simulation kernel
// that the DSM model runs on: a virtual clock, an event queue, coroutine
// processes (used for simulated application threads), and a simulated CPU
// with category-based time accounting.
//
// The kernel is strictly single-threaded from the simulation's point of
// view: events execute one at a time in (time, sequence) order, and process
// goroutines run only while the kernel is blocked waiting for them to park.
// Given identical inputs, a simulation therefore always produces identical
// results.
package sim

import (
	"fmt"

	"godsm/internal/event"
)

// Time is virtual time in nanoseconds since the start of the simulation.
type Time = int64

// Common virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

type schedEvent struct {
	at  Time
	seq uint64
	fn  func()
	// dead, when non-nil and set, marks a cancelled event: the run loop
	// skips it without executing fn or advancing the clock. Only Timer
	// uses this; plain At events leave it nil.
	dead *bool
}

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq). It
// deliberately does not implement container/heap: every Push/Pop through
// that interface boxes the event into an interface value, which allocates
// on the simulator's hottest path (one push and one pop per event). Events
// also stay in a reusable flat slice whose capacity persists across pops.
type eventHeap []schedEvent

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) peek() schedEvent { return h[0] }

func (h *eventHeap) pushEvent(e schedEvent) {
	hs := append(*h, e)
	// Sift up.
	for i := len(hs) - 1; i > 0; {
		parent := (i - 1) / 2
		if !hs.less(i, parent) {
			break
		}
		hs[i], hs[parent] = hs[parent], hs[i]
		i = parent
	}
	*h = hs
}

func (h *eventHeap) popEvent() schedEvent {
	hs := *h
	top := hs[0]
	n := len(hs) - 1
	hs[0] = hs[n]
	hs[n] = schedEvent{} // release the closure so finished events can be GC'd
	hs = hs[:n]
	// Sift down.
	for i := 0; ; {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && hs.less(r, kid) {
			kid = r
		}
		if !hs.less(kid, i) {
			break
		}
		hs[i], hs[kid] = hs[kid], hs[i]
		i = kid
	}
	*h = hs
	return top
}

// EventTraceAttacher is implemented by panic values (such as the protocol
// layer's invariant errors) that want the bus's recent event history
// attached when they unwind through the run loop.
type EventTraceAttacher interface {
	AttachEventTrace([]event.Event)
}

// Kernel is a discrete-event simulation engine. The zero value is not
// usable; construct with NewKernel.
type Kernel struct {
	now     Time
	events  eventHeap
	seq     uint64
	control chan struct{} // handoff from a process back to the kernel
	procs   map[*Proc]struct{}
	running bool
	stopped bool
	limit   Time // if > 0, Run stops once the clock would pass this

	bus *event.Bus // per-kernel event bus; every layer emits through it
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	k := &Kernel{
		control: make(chan struct{}),
		procs:   make(map[*Proc]struct{}),
	}
	k.bus = event.NewBus(func() int64 { return k.now })
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Bus returns the kernel's event bus. All layers of a simulation share it:
// they emit at the point an occurrence happens, and sinks (stats
// collectors, trace writers) derive everything else from the emissions.
func (k *Kernel) Bus() *event.Bus { return k.bus }

// Pending reports the number of scheduled events.
func (k *Kernel) Pending() int { return len(k.events) }

// At schedules fn to run at absolute virtual time t. Events scheduled for
// the same time run in scheduling order. Scheduling in the past panics:
// it always indicates a model bug.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled at %d ns, before now (%d ns)", t, k.now))
	}
	k.seq++
	k.events.pushEvent(schedEvent{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// atCancelable schedules fn with a cancellation flag: if *dead is true when
// the event reaches the head of the queue, the run loop discards it without
// executing fn or advancing the clock.
func (k *Kernel) atCancelable(t Time, fn func(), dead *bool) {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled at %d ns, before now (%d ns)", t, k.now))
	}
	k.seq++
	k.events.pushEvent(schedEvent{at: t, seq: k.seq, fn: fn, dead: dead})
}

// Timer is a cancelable, reschedulable one-shot virtual-time timer, used by
// protocol machinery that needs to take back a scheduled action (retransmit
// timeouts, delayed acks). Arm schedules the callback; re-arming or stopping
// cancels any pending firing. Cancelled firings are skipped by the run loop
// without advancing the virtual clock, so stale timers never stretch a
// simulation. A Timer is owned by its kernel's event loop and must only be
// manipulated from kernel context.
type Timer struct {
	k    *Kernel
	fn   func()
	dead *bool // cancellation flag of the pending firing; nil when idle
	at   Time
}

// NewTimer creates an idle timer that runs fn when it fires.
func (k *Kernel) NewTimer(fn func()) *Timer { return &Timer{k: k, fn: fn} }

// Arm schedules the timer to fire d nanoseconds from now, replacing any
// pending firing.
func (t *Timer) Arm(d Time) {
	t.Stop()
	dead := new(bool)
	t.dead = dead
	t.at = t.k.now + d
	t.k.bus.Emit(event.TimerArm(t.at, t.fn))
	t.k.atCancelable(t.at, func() {
		t.dead = nil
		t.fn()
	}, dead)
}

// Stop cancels the pending firing, if any.
func (t *Timer) Stop() {
	if t.dead != nil {
		*t.dead = true
		t.dead = nil
		t.k.bus.Emit(event.TimerStop(t.fn))
	}
}

// Active reports whether a firing is pending.
func (t *Timer) Active() bool { return t.dead != nil }

// When returns the virtual time of the pending firing (valid while Active).
func (t *Timer) When() Time { return t.at }

// SetLimit makes Run stop (without error) before executing any event whose
// time exceeds t. Zero means no limit.
func (k *Kernel) SetLimit(t Time) { k.limit = t }

// Run executes events until the queue is empty (or the limit is reached),
// then shuts down any process goroutines that are still parked. It returns
// the final virtual time.
//
// If an event panics with a value implementing EventTraceAttacher, Run
// attaches the last few dispatched events to it before re-raising, turning
// protocol invariant failures into actionable dumps.
func (k *Kernel) Run() Time {
	if k.running {
		panic("sim: Kernel.Run called reentrantly")
	}
	k.running = true
	defer func() {
		if r := recover(); r != nil {
			if a, ok := r.(EventTraceAttacher); ok {
				a.AttachEventTrace(k.bus.Recent())
			}
			// Unwind the surviving process goroutines before re-raising:
			// callers that recover the panic (race fixtures, chaos tests)
			// must not leak a parked goroutine per simulated thread.
			k.running = false
			k.shutdown()
			panic(r)
		}
	}()
	for len(k.events) > 0 {
		if k.limit > 0 && k.events.peek().at > k.limit {
			break
		}
		e := k.events.popEvent()
		if e.dead != nil && *e.dead {
			continue // cancelled timer firing: no clock advance
		}
		k.now = e.at
		k.bus.Emit(event.Dispatch(e.seq, e.fn))
		e.fn()
	}
	k.running = false
	k.shutdown()
	return k.now
}

// shutdown unwinds every still-parked process goroutine so that a finished
// simulation leaks no goroutines.
func (k *Kernel) shutdown() {
	k.stopped = true
	//dsmvet:allow mapiter — each parked goroutine unwinds exactly once after the clock has stopped; order is unobservable
	for p := range k.procs {
		if p.parked {
			p.resume <- struct{}{} // park() sees k.stopped and unwinds
			<-k.control
		}
		delete(k.procs, p)
	}
}
