// Package sim provides the deterministic discrete-event simulation kernel
// that the DSM model runs on: a virtual clock, an event queue, coroutine
// processes (used for simulated application threads), and a simulated CPU
// with category-based time accounting.
//
// The kernel is strictly single-threaded from the simulation's point of
// view: events execute one at a time in (time, sequence) order, and process
// goroutines run only while the kernel is blocked waiting for them to park.
// Given identical inputs, a simulation therefore always produces identical
// results.
package sim

import (
	"fmt"
)

// Time is virtual time in nanoseconds since the start of the simulation.
type Time = int64

// Common virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq). It
// deliberately does not implement container/heap: every Push/Pop through
// that interface boxes the event into an interface value, which allocates
// on the simulator's hottest path (one push and one pop per event). Events
// also stay in a reusable flat slice whose capacity persists across pops.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) peek() event { return h[0] }

func (h *eventHeap) pushEvent(e event) {
	hs := append(*h, e)
	// Sift up.
	for i := len(hs) - 1; i > 0; {
		parent := (i - 1) / 2
		if !hs.less(i, parent) {
			break
		}
		hs[i], hs[parent] = hs[parent], hs[i]
		i = parent
	}
	*h = hs
}

func (h *eventHeap) popEvent() event {
	hs := *h
	top := hs[0]
	n := len(hs) - 1
	hs[0] = hs[n]
	hs[n] = event{} // release the closure so finished events can be GC'd
	hs = hs[:n]
	// Sift down.
	for i := 0; ; {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && hs.less(r, kid) {
			kid = r
		}
		if !hs.less(kid, i) {
			break
		}
		hs[i], hs[kid] = hs[kid], hs[i]
		i = kid
	}
	*h = hs
	return top
}

// Kernel is a discrete-event simulation engine. The zero value is not
// usable; construct with NewKernel.
type Kernel struct {
	now     Time
	events  eventHeap
	seq     uint64
	control chan struct{} // handoff from a process back to the kernel
	procs   map[*Proc]struct{}
	running bool
	stopped bool
	limit   Time // if > 0, Run stops once the clock would pass this
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{
		control: make(chan struct{}),
		procs:   make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of scheduled events.
func (k *Kernel) Pending() int { return len(k.events) }

// At schedules fn to run at absolute virtual time t. Events scheduled for
// the same time run in scheduling order. Scheduling in the past panics:
// it always indicates a model bug.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled at %d ns, before now (%d ns)", t, k.now))
	}
	k.seq++
	k.events.pushEvent(event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// SetLimit makes Run stop (without error) before executing any event whose
// time exceeds t. Zero means no limit.
func (k *Kernel) SetLimit(t Time) { k.limit = t }

// Run executes events until the queue is empty (or the limit is reached),
// then shuts down any process goroutines that are still parked. It returns
// the final virtual time.
func (k *Kernel) Run() Time {
	if k.running {
		panic("sim: Kernel.Run called reentrantly")
	}
	k.running = true
	for len(k.events) > 0 {
		if k.limit > 0 && k.events.peek().at > k.limit {
			break
		}
		e := k.events.popEvent()
		k.now = e.at
		e.fn()
	}
	k.running = false
	k.shutdown()
	return k.now
}

// shutdown unwinds every still-parked process goroutine so that a finished
// simulation leaks no goroutines.
func (k *Kernel) shutdown() {
	k.stopped = true
	for p := range k.procs {
		if p.parked {
			p.resume <- struct{}{} // park() sees k.stopped and unwinds
			<-k.control
		}
		delete(k.procs, p)
	}
}
