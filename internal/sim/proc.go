package sim

// Proc is a coroutine process: a goroutine whose execution is interleaved
// with the event loop such that exactly one of (kernel, some process) runs
// at any moment. Simulated application threads are built on Proc.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	parked bool // true while the goroutine is blocked in park()
	done   bool
	fault  any // panic value carried from the process goroutine to kernel context
}

// procShutdown is the panic value used to unwind a parked process when the
// kernel shuts down.
type procShutdown struct{}

// Spawn creates a process and schedules it to start running at the current
// virtual time. fn runs on its own goroutine but only while the kernel is
// blocked handing control to it; fn must interact with the simulation only
// through p (Sleep/Park) and through kernel callbacks.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{}), parked: true}
	k.procs[p] = struct{}{}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procShutdown); !ok {
					// Real bug (or a structured failure such as a RaceError):
					// carry the value to kernel context instead of crashing
					// the goroutine, so transfer() can re-raise it where
					// System.Run's caller is able to recover it.
					p.fault = r
				}
			}
			p.done = true
			k.control <- struct{}{} // return control to the kernel
		}()
		<-p.resume // wait to be started
		p.parked = false
		if k.stopped {
			panic(procShutdown{})
		}
		fn(p)
		delete(k.procs, p)
	}()
	k.At(k.now, func() { p.transfer() })
	return p
}

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// transfer hands the CPU (the real one) to the process goroutine and blocks
// until the process parks or finishes. It must be called from kernel
// context, i.e. from inside an event callback.
func (p *Proc) transfer() {
	if p.done {
		return
	}
	if !p.parked {
		panic("sim: wake of a process that is not parked (double wake?)")
	}
	p.resume <- struct{}{}
	<-p.k.control
	if p.fault != nil {
		// The goroutine panicked with something other than procShutdown.
		// Re-raise it here, in kernel context, so it unwinds through
		// Kernel.Run (which attaches the event trace and shuts down the
		// remaining process goroutines) and out to the simulation's caller.
		r := p.fault
		p.fault = nil
		delete(p.k.procs, p)
		panic(r)
	}
}

// park suspends the process until something calls transfer again.
func (p *Proc) park() {
	p.parked = true
	p.k.control <- struct{}{}
	<-p.resume
	p.parked = false
	if p.k.stopped {
		panic(procShutdown{})
	}
}

// Sleep suspends the process for d nanoseconds of virtual time.
func (p *Proc) Sleep(d Time) {
	p.k.At(p.k.now+d, p.transfer)
	p.park()
}

// Park suspends the process indefinitely; some event must later call Wake.
func (p *Proc) Park() { p.park() }

// Wake schedules the process to resume at the current virtual time. It must
// be called from kernel context while the process is parked via Park.
func (p *Proc) Wake() { p.k.At(p.k.now, p.transfer) }

// WakeAt schedules the process to resume at absolute time t.
func (p *Proc) WakeAt(t Time) { p.k.At(t, p.transfer) }
