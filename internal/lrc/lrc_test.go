package lrc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVCCovers(t *testing.T) {
	a := VC{2, 3, 1}
	b := VC{2, 2, 1}
	if !a.Covers(b) {
		t.Error("a should cover b")
	}
	if b.Covers(a) {
		t.Error("b should not cover a")
	}
	if !a.Covers(a) {
		t.Error("covers must be reflexive")
	}
}

func TestVCMerge(t *testing.T) {
	a := VC{2, 0, 5}
	a.Merge(VC{1, 7, 5})
	if !a.Equal(VC{2, 7, 5}) {
		t.Fatalf("merge = %v", a)
	}
}

func TestVCClone(t *testing.T) {
	a := VC{1, 2}
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestCoversInterval(t *testing.T) {
	v := VC{3, 1}
	if !v.CoversInterval(IntervalID{Node: 0, Seq: 3}) {
		t.Error("should cover (0,3)")
	}
	if v.CoversInterval(IntervalID{Node: 1, Seq: 2}) {
		t.Error("should not cover (1,2)")
	}
}

func TestHappensBeforeSameNode(t *testing.T) {
	a := &Interval{ID: IntervalID{0, 1}, VC: VC{1, 0}}
	b := &Interval{ID: IntervalID{0, 2}, VC: VC{2, 0}}
	if !HappensBefore(a, b) || HappensBefore(b, a) {
		t.Fatal("same-node intervals must be ordered by seq")
	}
}

func TestHappensBeforeCrossNode(t *testing.T) {
	// Node 0 creates interval 1; node 1 then acquires from node 0 and
	// creates its interval 1 having seen (0,1).
	a := &Interval{ID: IntervalID{0, 1}, VC: VC{1, 0}}
	b := &Interval{ID: IntervalID{1, 1}, VC: VC{1, 1}}
	if !HappensBefore(a, b) {
		t.Error("a must happen before b")
	}
	if HappensBefore(b, a) {
		t.Error("b must not happen before a")
	}
	if Concurrent(a, b) {
		t.Error("a,b not concurrent")
	}
}

func TestConcurrent(t *testing.T) {
	a := &Interval{ID: IntervalID{0, 1}, VC: VC{1, 0}}
	b := &Interval{ID: IntervalID{1, 1}, VC: VC{0, 1}}
	if !Concurrent(a, b) {
		t.Fatal("independent intervals must be concurrent")
	}
}

// randomHistory builds a random but protocol-consistent set of intervals:
// each new interval's VC covers its creator's previous VC and possibly
// merges another node's current VC (modelling an acquire).
func randomHistory(rng *rand.Rand, nodes, steps int) []*Interval {
	cur := make([]VC, nodes)
	seq := make([]int32, nodes)
	for i := range cur {
		cur[i] = NewVC(nodes)
	}
	var ivs []*Interval
	for s := 0; s < steps; s++ {
		p := rng.Intn(nodes)
		if rng.Intn(2) == 0 { // acquire from a random releaser first
			q := rng.Intn(nodes)
			cur[p].Merge(cur[q])
		}
		seq[p]++
		cur[p][p] = seq[p]
		ivs = append(ivs, &Interval{
			ID: IntervalID{Node: p, Seq: seq[p]},
			VC: cur[p].Clone(),
		})
	}
	return ivs
}

// Property: happen-before-1 is a strict partial order on protocol-
// consistent histories (irreflexive, antisymmetric, transitive).
func TestHappensBeforeStrictPartialOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ivs := randomHistory(rng, 4, 20)
		for _, a := range ivs {
			if HappensBefore(a, a) {
				return false
			}
			for _, b := range ivs {
				if HappensBefore(a, b) && HappensBefore(b, a) {
					return false
				}
				for _, c := range ivs {
					if HappensBefore(a, b) && HappensBefore(b, c) && !HappensBefore(a, c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: SortCausally produces a linear extension — no interval appears
// before one that happens-before it.
func TestSortCausallyLinearExtensionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ivs := randomHistory(rng, 5, 30)
		rng.Shuffle(len(ivs), func(i, j int) { ivs[i], ivs[j] = ivs[j], ivs[i] })
		SortCausally(ivs)
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				if HappensBefore(ivs[j], ivs[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: SortCausally is deterministic regardless of input permutation.
func TestSortCausallyDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ivs := randomHistory(rng, 4, 25)
		a := append([]*Interval(nil), ivs...)
		b := append([]*Interval(nil), ivs...)
		rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		SortCausally(a)
		SortCausally(b)
		for i := range a {
			if a[i].ID != b[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
