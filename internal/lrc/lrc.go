// Package lrc implements the bookkeeping of lazy release consistency:
// vector timestamps, intervals, write notices, and the happen-before-1
// partial order that dictates the order in which diffs are applied.
//
// Terminology follows Keleher et al.: each processor's execution is divided
// into intervals delimited by synchronization releases (and, in this
// reproduction, by remote diff/prefetch requests that split an interval).
// A write notice records that a page was modified during some interval.
// When a processor acquires a synchronization object it learns, via
// piggybacked write notices, of every interval that happened before the
// acquire, and invalidates the named pages.
package lrc

import (
	"fmt"
	"sort"

	"godsm/internal/pagemem"
)

// VC is a vector timestamp with one entry per processor. Entry p counts the
// intervals of processor p that the owner has seen (i.e. the owner has seen
// intervals 1..VC[p] of processor p; interval sequence numbers start at 1).
type VC []int32

// NewVC returns a zero vector timestamp for n processors.
func NewVC(n int) VC { return make(VC, n) }

// Clone returns an independent copy of v.
func (v VC) Clone() VC { return append(VC(nil), v...) }

// Covers reports whether v >= o element-wise: the owner of v has seen every
// interval the owner of o has seen.
func (v VC) Covers(o VC) bool {
	for i := range v {
		if v[i] < o[i] {
			return false
		}
	}
	return true
}

// CoversInterval reports whether v includes interval id.
func (v VC) CoversInterval(id IntervalID) bool { return v[id.Node] >= id.Seq }

// Merge sets v to the element-wise maximum of v and o.
func (v VC) Merge(o VC) {
	for i := range v {
		if o[i] > v[i] {
			v[i] = o[i]
		}
	}
}

// Equal reports element-wise equality.
func (v VC) Equal(o VC) bool {
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

func (v VC) String() string { return fmt.Sprintf("%v", []int32(v)) }

// IntervalID names one interval: the Seq-th interval of processor Node.
type IntervalID struct {
	Node int
	Seq  int32
}

// Interval is the metadata a processor publishes about one of its
// intervals: its identity, the creator's vector timestamp at creation, and
// the pages written during it (the write notices).
type Interval struct {
	ID    IntervalID
	VC    VC // creator's vector time when the interval began
	Pages []pagemem.PageID
}

// HappensBefore reports whether interval a happened before interval b under
// happen-before-1: true iff b's creator had seen a when b was created.
// Two intervals of the same processor are ordered by sequence number.
func HappensBefore(a, b *Interval) bool {
	if a.ID.Node == b.ID.Node {
		return a.ID.Seq < b.ID.Seq
	}
	return b.VC.CoversInterval(a.ID)
}

// Concurrent reports whether neither interval happened before the other.
func Concurrent(a, b *Interval) bool {
	return !HappensBefore(a, b) && !HappensBefore(b, a)
}

// SortCausally orders intervals such that whenever a happens-before b, a
// precedes b; concurrent intervals are ordered by (Node, Seq) for
// determinism. Diffs applied in this order respect happen-before-1, which
// is the correctness requirement for the multiple-writer protocol
// (concurrent diffs touch disjoint bytes in correct programs, so their
// relative order is immaterial).
//
// The sum of the VC entries is a valid linearization key given the protocol
// invariant that an interval's creation VC covers the creation VCs of every
// interval it has seen (write notices propagate transitively): if a hb b,
// then b.VC >= a.VC element-wise and strictly greater in b's own
// coordinate, so sum(b.VC) > sum(a.VC).
func SortCausally(ivs []*Interval) {
	sort.SliceStable(ivs, func(i, j int) bool {
		si, sj := vcSum(ivs[i]), vcSum(ivs[j])
		if si != sj {
			return si < sj
		}
		if ivs[i].ID.Node != ivs[j].ID.Node {
			return ivs[i].ID.Node < ivs[j].ID.Node
		}
		return ivs[i].ID.Seq < ivs[j].ID.Seq
	})
}

func vcSum(iv *Interval) int64 {
	var s int64
	for _, x := range iv.VC {
		s += int64(x)
	}
	return s
}
