package apps

import (
	"fmt"
	"math"
	"math/rand"

	"godsm/dsm"
)

// WATER-NSQ: O(n²) molecular dynamics over n molecules, preserving the
// sharing pattern the paper highlights: each thread evaluates the pairwise
// forces of its molecules against all later molecules into a private
// accumulator, then merges the contributions into the shared force arrays
// under per-block locks — the multiple-producer, multiple-consumer pattern
// whose lock-protected misses dominate WATER-NSQ. The chemistry is a
// simplified bounded pair potential (documented in DESIGN.md); the DSM sees
// the same access and synchronization structure as the SPLASH-2 original.
//
// Prefetch insertion (Section 3.2): non-binding prefetches are issued for
// the force pages of the *next* lock-protected block before acquiring the
// current block's lock — prefetching across locks is exactly what the
// non-binding property enables.
//
// Force contributions are quantized to fixed point per pair, so the merged
// totals are independent of merge order and thread count; every
// configuration is verified bitwise against the sequential golden run.

type waterNsqParams struct {
	n, steps int
}

func waterNsqSizes(sc Scale) waterNsqParams {
	switch sc {
	case Unit:
		return waterNsqParams{n: 64, steps: 2}
	case Small:
		return waterNsqParams{n: 216, steps: 4}
	default: // paper: 512 molecules, 9 time steps
		return waterNsqParams{n: 512, steps: 9}
	}
}

const (
	waterDt      = 0.002
	waterBox     = 10.0
	waterFPScale = 1 << 24 // fixed-point force scale

	// molStride is the per-molecule record size in 8-byte words. The
	// simplified dynamics use 3 components, but the record layout matches
	// the SPLASH-2 MOL struct scale (per-atom vectors and higher-order
	// terms), which determines how molecules map onto pages — and
	// therefore the paper's page-sharing and locking geometry.
	molStride = 9

	waterLockBase = 100 // lock id space for force blocks
	// waterNsqBlk: molecules per force lock block. Finer than a page so
	// that merges can proceed in parallel across locks (SPLASH-2 uses
	// fine-grained molecule locks).
	waterNsqBlk = 16
)

// waterInitPos returns deterministic initial positions in the box.
func waterInitPos(n int) [][3]float64 {
	rng := rand.New(rand.NewSource(512_9))
	pos := make([][3]float64, n)
	for i := range pos {
		for d := 0; d < 3; d++ {
			pos[i][d] = rng.Float64() * waterBox
		}
	}
	return pos
}

// waterPairForce evaluates the bounded pair potential between positions a
// and b and returns the force on a (negated for b). A smooth repulsive/
// attractive form with a softened core keeps the dynamics bounded.
func waterPairForce(a, b [3]float64) [3]float64 {
	var dr [3]float64
	r2 := 0.25 // softening
	for d := 0; d < 3; d++ {
		dr[d] = a[d] - b[d]
		r2 += dr[d] * dr[d]
	}
	inv2 := 1 / r2
	inv4 := inv2 * inv2
	mag := inv4 - 0.2*inv2 // repulsive core, weak attraction
	var f [3]float64
	for d := 0; d < 3; d++ {
		f[d] = mag * dr[d]
	}
	return f
}

func quantize(v float64) int64 { return int64(math.Round(v * waterFPScale)) }

// BuildWaterNsq constructs the WATER-NSQ application.
func BuildWaterNsq(sys *dsm.System, opt Options) *Instance {
	p := waterNsqSizes(opt.Scale)
	n := p.n
	pos := allocF64s(sys, molStride*n)
	vel := allocF64s(sys, molStride*n)
	force := allocI64s(sys, molStride*n) // fixed-point accumulators
	init := waterInitPos(n)
	var box errBox

	nBlocks := (n + waterNsqBlk - 1) / waterNsqBlk

	// Per-processor force accumulator, shared by the processor's threads —
	// the paper's WATER-NSQ modification for multithreading ("keep a single
	// shared copy of the data structure per processor"). Plain Go memory:
	// it models processor-local storage, which the DSM does not manage.
	procAcc := make([][]int64, sys.Cfg.Procs)

	readPos := func(e *dsm.Env, i int) [3]float64 {
		return [3]float64{
			e.ReadF64(pos.at(molStride * i)),
			e.ReadF64(pos.at(molStride*i + 1)),
			e.ReadF64(pos.at(molStride*i + 2)),
		}
	}

	run := func(e *dsm.Env) {
		me := e.ThreadID()
		nT := e.NumThreads()
		tpp := nT / e.NumProcs()
		lo, hi := threadChunk(n, e)
		if e.LocalThread() == 0 {
			procAcc[e.ProcID()] = make([]int64, 3*n)
		}

		if me == 0 {
			for i := 0; i < n; i++ {
				for d := 0; d < 3; d++ {
					e.WriteF64(pos.at(molStride*i+d), init[i][d])
					e.WriteF64(vel.at(molStride*i+d), 0)
				}
				e.Compute(60)
			}
		}
		e.Barrier(0)

		bar := 1
		for step := 0; step < p.steps; step++ {
			// Zero the owned force range and (local thread 0) the
			// processor's shared accumulator.
			for i := lo; i < hi; i++ {
				for d := 0; d < 3; d++ {
					e.WriteI64(force.at(molStride*i+d), 0)
				}
			}
			if e.LocalThread() == 0 {
				acc := procAcc[e.ProcID()]
				for i := range acc {
					acc[i] = 0
				}
				e.Compute(dsm.Time(n) * 20)
			}
			e.Barrier(bar)
			bar++

			// All positions are read during the pair phase; prefetch the
			// whole position array up front (it was scattered across owners
			// by the previous integration step).
			if e.Prefetching() {
				e.PrefetchRange(pos.at(0), 8*molStride*n)
			}

			// Pairwise forces into a private accumulator. SPLASH-2 pairing
			// for load balance: molecule i interacts with the n/2
			// molecules that follow it cyclically, so every thread
			// evaluates the same number of pairs.
			acc := procAcc[e.ProcID()]
			for i := lo; i < hi; i++ {
				pi := readPos(e, i)
				for k := 1; k <= n/2; k++ {
					j := (i + k) % n
					if 2*k == n && i > j {
						continue // the diametral pair is owned by min(i,j)
					}
					pj := readPos(e, j)
					f := waterPairForce(pi, pj)
					for d := 0; d < 3; d++ {
						q := quantize(f[d])
						acc[3*i+d] += q
						acc[3*j+d] -= q
					}
					e.Compute(costPairForce)
				}
			}

			// All siblings must finish their pairs before the shared
			// accumulator is merged.
			e.Barrier(bar)
			bar++

			// Merge under per-block locks: the processor's threads split
			// the blocks among themselves (overlapping lock-transfer
			// latency under multithreading), starting at the processor's
			// own region (staggered, as SPLASH-2 does, to avoid a lock
			// convoy) and prefetching the next block's force pages before
			// taking the current block's lock.
			start := e.ProcID() * nBlocks / e.NumProcs()
			pfBlockPages := func(t int) {
				blk := (start + t) % nBlocks
				if t >= nBlocks {
					return
				}
				first := blk * waterNsqBlk
				last := min(n, first+waterNsqBlk)
				e.PrefetchRange(force.at(molStride*first), 8*molStride*(last-first))
			}
			if e.Prefetching() {
				pfBlockPages(e.LocalThread())
			}
			for t := e.LocalThread(); t < nBlocks; t += tpp {
				if e.Prefetching() {
					pfBlockPages(t + tpp)
				}
				blk := (start + t) % nBlocks
				first := blk * waterNsqBlk
				last := min(n, first+waterNsqBlk)
				hasWork := false
				for i := 3 * first; i < 3*last && !hasWork; i++ {
					hasWork = acc[i] != 0
				}
				if !hasWork {
					continue
				}
				e.Lock(waterLockBase + blk)
				for m := first; m < last; m++ {
					for d := 0; d < 3; d++ {
						if v := acc[3*m+d]; v != 0 {
							a := force.at(molStride*m + d)
							e.WriteI64(a, e.ReadI64(a)+v)
							e.Compute(costKeyOp)
						}
					}
				}
				e.Unlock(waterLockBase + blk)
			}
			e.Barrier(bar)
			bar++

			// Integrate owned molecules with reflective walls. The owned
			// force range was last written by other processors' merges.
			if e.Prefetching() {
				e.PrefetchRange(force.at(molStride*lo), 8*molStride*(hi-lo))
			}
			for i := lo; i < hi; i++ {
				for d := 0; d < 3; d++ {
					f := float64(e.ReadI64(force.at(molStride*i+d))) / waterFPScale
					v := e.ReadF64(vel.at(molStride*i+d)) + f*waterDt
					x := e.ReadF64(pos.at(molStride*i+d)) + v*waterDt
					if x < 0 {
						x, v = -x, -v
					}
					if x > waterBox {
						x, v = 2*waterBox-x, -v
					}
					e.WriteF64(vel.at(molStride*i+d), v)
					e.WriteF64(pos.at(molStride*i+d), x)
				}
				e.Compute(costIntegrate)
			}
			e.Barrier(bar)
			bar++
		}

		if me == 0 {
			e.EndMeasurement()
			if opt.Verify {
				box.set(waterNsqVerify(e, pos, vel, init, p))
			}
		}
		e.Barrier(bar)
	}

	return &Instance{Name: "WATER-NSQ", Run: run, Err: box.get}
}

// waterNsqVerify replays the dynamics sequentially with the same per-pair
// quantization; positions and velocities must match bitwise.
func waterNsqVerify(e *dsm.Env, pos, vel f64s, init [][3]float64, p waterNsqParams) error {
	n := p.n
	ps := make([][3]float64, n)
	vs := make([][3]float64, n)
	copy(ps, init)
	for step := 0; step < p.steps; step++ {
		acc := make([]int64, 3*n)
		for i := 0; i < n; i++ {
			for k := 1; k <= n/2; k++ {
				j := (i + k) % n
				if 2*k == n && i > j {
					continue
				}
				f := waterPairForce(ps[i], ps[j])
				for d := 0; d < 3; d++ {
					q := quantize(f[d])
					acc[3*i+d] += q
					acc[3*j+d] -= q
				}
			}
		}
		for i := 0; i < n; i++ {
			for d := 0; d < 3; d++ {
				f := float64(acc[3*i+d]) / waterFPScale
				v := vs[i][d] + f*waterDt
				x := ps[i][d] + v*waterDt
				if x < 0 {
					x, v = -x, -v
				}
				if x > waterBox {
					x, v = 2*waterBox-x, -v
				}
				vs[i][d] = v
				ps[i][d] = x
			}
		}
	}
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			gp := e.ReadF64(pos.at(molStride*i + d))
			gv := e.ReadF64(vel.at(molStride*i + d))
			if gp != ps[i][d] || gv != vs[i][d] {
				return fmt.Errorf("WATER-NSQ: molecule %d dim %d pos/vel = %v/%v, want %v/%v",
					i, d, gp, gv, ps[i][d], vs[i][d])
			}
		}
	}
	return nil
}
