package apps

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"godsm/dsm"
)

// FFT: 1-D complex FFT of n = m² points using the SPLASH-2 style six-step
// (transpose) algorithm: transpose, m-point row FFTs, twiddle scaling,
// transpose, row FFTs, transpose. The transposes are all-to-all
// communication phases; rows are block-distributed over threads.
//
// Prefetch insertion (Section 3.2, compiler-style): the transpose loops are
// software-pipelined over source-thread blocks — while copying the block
// owned by thread q, the pages of thread q+1's block are prefetched.

type fftParams struct {
	m int // n = m*m points
}

func fftSizes(sc Scale) fftParams {
	switch sc {
	case Unit:
		return fftParams{m: 16} // 256 points
	case Small:
		return fftParams{m: 128} // 16K points
	default:
		return fftParams{m: 512} // 256K points, the paper's input
	}
}

// fftInput returns the deterministic input signal.
func fftInput(n int) []complex128 {
	rng := rand.New(rand.NewSource(20260705))
	in := make([]complex128, n)
	for i := range in {
		in[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return in
}

// fftInPlace is an iterative radix-2 Cooley-Tukey FFT.
func fftInPlace(x []complex128) {
	n := len(x)
	// Bit reversal.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// fftSixStepSeq runs the six-step algorithm sequentially on a copy of the
// input; the parallel run must match it bitwise.
func fftSixStepSeq(in []complex128, m int) []complex128 {
	n := m * m
	a := append([]complex128(nil), in...)
	b := make([]complex128, n)
	transpose := func(dst, src []complex128) {
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				dst[i*m+j] = src[j*m+i]
			}
		}
	}
	rowFFTs := func(x []complex128) {
		for i := 0; i < m; i++ {
			fftInPlace(x[i*m : (i+1)*m])
		}
	}
	transpose(b, a)
	rowFFTs(b)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			b[i*m+j] *= fftTwiddle(i, j, n)
		}
	}
	transpose(a, b)
	rowFFTs(a)
	transpose(b, a)
	return b
}

func fftTwiddle(i, j, n int) complex128 {
	ang := -2 * math.Pi * float64(i) * float64(j) / float64(n)
	return cmplx.Exp(complex(0, ang))
}

// BuildFFT constructs the FFT application.
func BuildFFT(sys *dsm.System, opt Options) *Instance {
	p := fftSizes(opt.Scale)
	m := p.m
	n := m * m
	a := allocF64s(sys, 2*n) // interleaved re/im
	b := allocF64s(sys, 2*n)
	input := fftInput(n)
	var box errBox

	readC := func(e *dsm.Env, arr f64s, i int) complex128 {
		return complex(e.ReadF64(arr.at(2*i)), e.ReadF64(arr.at(2*i+1)))
	}
	writeC := func(e *dsm.Env, arr f64s, i int, v complex128) {
		e.WriteF64(arr.at(2*i), real(v))
		e.WriteF64(arr.at(2*i+1), imag(v))
	}

	// transpose writes dst rows [lo,hi) from src columns, iterating over
	// source-thread row blocks with pipelined prefetching.
	transpose := func(e *dsm.Env, dst, src f64s, lo, hi int) {
		T := e.NumThreads()
		tpp := T / e.NumProcs()
		pfBlock := func(q int) {
			qlo, qhi := threadChunkFor(m, e.NumProcs(), tpp, q)
			if qhi <= qlo {
				return
			}
			// The source block is rows [qlo,qhi) of src, columns [lo,hi):
			// prefetch the pages covering those rows' column range.
			for j := qlo; j < qhi; j++ {
				start := src.at(2 * (j*m + lo))
				e.PrefetchRange(start, 16*(hi-lo))
			}
		}
		if e.Prefetching() {
			pfBlock(0)
		}
		for q := 0; q < T; q++ {
			if e.Prefetching() && q+1 < T {
				pfBlock(q + 1) // pipeline: fetch the next block now
			}
			qlo, qhi := threadChunkFor(m, e.NumProcs(), tpp, q)
			for j := qlo; j < qhi; j++ {
				for i := lo; i < hi; i++ {
					writeC(e, dst, i*m+j, readC(e, src, j*m+i))
					e.Compute(costCmul / 2)
				}
			}
		}
	}

	rowFFTs := func(e *dsm.Env, arr f64s, lo, hi int) {
		row := make([]complex128, m)
		for i := lo; i < hi; i++ {
			for j := 0; j < m; j++ {
				row[j] = readC(e, arr, i*m+j)
			}
			fftInPlace(row)
			e.Compute(dsm.Time(m) * dsm.Time(costButterfly) * dsm.Time(bits(m)) / 2)
			for j := 0; j < m; j++ {
				writeC(e, arr, i*m+j, row[j])
			}
		}
	}

	run := func(e *dsm.Env) {
		if e.ThreadID() == 0 {
			for i, v := range input {
				writeC(e, a, i, v)
				e.Compute(30)
			}
		}
		e.Barrier(0)
		lo, hi := threadChunk(m, e)

		transpose(e, b, a, lo, hi)
		e.Barrier(1)
		rowFFTs(e, b, lo, hi)
		for i := lo; i < hi; i++ {
			for j := 0; j < m; j++ {
				writeC(e, b, i*m+j, readC(e, b, i*m+j)*fftTwiddle(i, j, n))
				e.Compute(costCmul)
			}
		}
		e.Barrier(2)
		transpose(e, a, b, lo, hi)
		e.Barrier(3)
		rowFFTs(e, a, lo, hi)
		e.Barrier(4)
		transpose(e, b, a, lo, hi)
		e.Barrier(5)

		if e.ThreadID() == 0 {
			e.EndMeasurement()
			if opt.Verify {
				box.set(fftVerify(e, b, input, m, readC))
			}
		}
		e.Barrier(6)
	}

	return &Instance{Name: "FFT", Run: run, Err: box.get}
}

// bits returns log2(m) for powers of two.
func bits(m int) int {
	b := 0
	for v := m; v > 1; v >>= 1 {
		b++
	}
	return b
}

func fftVerify(e *dsm.Env, out f64s, input []complex128, m int,
	readC func(*dsm.Env, f64s, int) complex128) error {
	n := m * m
	want := fftSixStepSeq(input, m)
	for i := 0; i < n; i++ {
		got := readC(e, out, i)
		if got != want[i] {
			return fmt.Errorf("FFT: element %d = %v, want %v (bitwise)", i, got, want[i])
		}
	}
	// For small sizes also check against the naive DFT (algorithmic truth).
	if n <= 1024 {
		for _, k := range []int{0, 1, n / 2, n - 1} {
			var f complex128
			for j := 0; j < n; j++ {
				f += input[j] * fftTwiddle(j, k, n)
			}
			got := readC(e, out, k)
			if cmplx.Abs(got-f) > 1e-6*float64(n) {
				return fmt.Errorf("FFT: DFT mismatch at %d: %v vs naive %v", k, got, f)
			}
		}
	}
	return nil
}
