package apps

import (
	"fmt"
	"sort"

	"godsm/dsm"
)

// WATER-SP: the O(n) spatial variant of the water simulation. Molecules are
// binned into a 3D cell grid whose lists (head/next) live in shared memory:
// traversing them is the pointer-chasing access pattern the paper singles
// out. Threads own cell ranges and evaluate forces between each owned cell
// and its half-shell of neighbour cells, with the same fixed-point
// order-independent force accumulation as WATER-NSQ.
//
// Prefetch insertion follows the paper's history scheme (Luk & Mowry):
// since the lists do not change within a step, each thread first records
// its traversal order into a private index array and then, during the force
// pass, prefetches position pages several molecules ahead by dereferencing
// the recorded array — circumventing the pointer-chasing problem.

type waterSpParams struct {
	n, steps, ncell int
}

func waterSpSizes(sc Scale) waterSpParams {
	switch sc {
	case Unit:
		return waterSpParams{n: 125, steps: 2, ncell: 3}
	case Small:
		return waterSpParams{n: 512, steps: 4, ncell: 4}
	default: // paper: 4096 molecules, 9 steps
		return waterSpParams{n: 4096, steps: 9, ncell: 6}
	}
}

// waterSpInsBase is the base of the per-cell insertion lock id space. One
// lock per cell: with spatially-sorted molecule ownership, insertions are
// almost always into the owner's own cells, so the token stays cached
// locally and the acquire is free — boundary cells produce the remote lock
// traffic, as in SPLASH-2.
const waterSpInsBase = 1000

// halfShell lists the 13 lexicographically-positive neighbour offsets plus
// implicit self handling by the caller.
var halfShell = [13][3]int{
	{1, 0, 0}, {0, 1, 0}, {0, 0, 1},
	{1, 1, 0}, {1, 0, 1}, {0, 1, 1},
	{1, -1, 0}, {1, 0, -1}, {0, 1, -1},
	{1, 1, 1}, {1, 1, -1}, {1, -1, 1}, {-1, 1, 1},
}

// waterSpPairForce is the cutoff form of the pair potential; the cutoff is
// the cell edge length so only neighbouring cells interact.
func waterSpPairForce(a, b [3]float64, cut2 float64) ([3]float64, bool) {
	var dr [3]float64
	raw := 0.0
	for d := 0; d < 3; d++ {
		dr[d] = a[d] - b[d]
		raw += dr[d] * dr[d]
	}
	if raw >= cut2 {
		return [3]float64{}, false
	}
	r2 := raw + 0.25
	inv2 := 1 / r2
	inv4 := inv2 * inv2
	mag := inv4 - 0.2*inv2
	var f [3]float64
	for d := 0; d < 3; d++ {
		f[d] = mag * dr[d]
	}
	return f, true
}

func cellOf(p [3]float64, ncell int) (int, int, int) {
	cl := waterBox / float64(ncell)
	cx, cy, cz := int(p[0]/cl), int(p[1]/cl), int(p[2]/cl)
	clampi := func(v int) int {
		if v < 0 {
			return 0
		}
		if v >= ncell {
			return ncell - 1
		}
		return v
	}
	return clampi(cx), clampi(cy), clampi(cz)
}

// BuildWaterSp constructs the WATER-SP application.
func BuildWaterSp(sys *dsm.System, opt Options) *Instance {
	p := waterSpSizes(opt.Scale)
	n, nc := p.n, p.ncell
	ncells := nc * nc * nc
	cl := waterBox / float64(nc)
	cut2 := cl * cl

	pos := allocF64s(sys, molStride*n)
	vel := allocF64s(sys, molStride*n)
	force := allocI64s(sys, molStride*n)
	head := allocI64s(sys, ncells)
	next := allocI64s(sys, n)
	init := waterInitPosSorted(n, nc)
	var box errBox

	cidx := func(x, y, z int) int { return (x*nc+y)*nc + z }
	nBlocks := (n + waterNsqBlk - 1) / waterNsqBlk

	// Per-processor force accumulator shared by sibling threads (the same
	// per-processor optimization as WATER-NSQ).
	procAcc := make([][]int64, sys.Cfg.Procs)

	readPos := func(e *dsm.Env, i int) [3]float64 {
		return [3]float64{
			e.ReadF64(pos.at(molStride * i)),
			e.ReadF64(pos.at(molStride*i + 1)),
			e.ReadF64(pos.at(molStride*i + 2)),
		}
	}

	// listOf reads cell c's molecule list through the shared pointers.
	listOf := func(e *dsm.Env, c int) []int {
		var out []int
		for i := e.ReadI64(head.at(c)); i >= 0; i = e.ReadI64(next.at(int(i))) {
			out = append(out, int(i))
			e.Compute(costKeyOp)
		}
		return out
	}

	run := func(e *dsm.Env) {
		nT := e.NumThreads()
		tpp := nT / e.NumProcs()
		mlo, mhi := threadChunk(n, e)      // owned molecules
		clo, chi := threadChunk(ncells, e) // owned cells
		if e.LocalThread() == 0 {
			procAcc[e.ProcID()] = make([]int64, 3*n)
		}

		if e.ThreadID() == 0 {
			for i := 0; i < n; i++ {
				for d := 0; d < 3; d++ {
					e.WriteF64(pos.at(molStride*i+d), init[i][d])
					e.WriteF64(vel.at(molStride*i+d), 0)
				}
				e.Compute(60)
			}
		}
		e.Barrier(0)

		bar := 1
		// prevRecord is the paper's history array: the molecule traversal
		// order recorded in the previous step. The cell structure changes
		// little between steps, so dereferencing it prefetches the pointer
		// chain's data well ahead of the pointer-chasing traversal.
		var prevRecord []int
		for step := 0; step < p.steps; step++ {
			// Rebuild cell lists: reset owned heads, zero owned forces and
			// (local thread 0) the processor's shared accumulator.
			for c := clo; c < chi; c++ {
				e.WriteI64(head.at(c), -1)
			}
			for i := mlo; i < mhi; i++ {
				for d := 0; d < 3; d++ {
					e.WriteI64(force.at(molStride*i+d), 0)
				}
			}
			if e.LocalThread() == 0 {
				acc := procAcc[e.ProcID()]
				for i := range acc {
					acc[i] = 0
				}
				e.Compute(dsm.Time(n) * 20)
			}
			e.Barrier(bar)
			bar++

			// Insert owned molecules under per-cell-group locks.
			for i := mlo; i < mhi; i++ {
				cx, cy, cz := cellOf(readPos(e, i), nc)
				c := cidx(cx, cy, cz)
				lk := waterSpInsBase + c
				e.Lock(lk)
				e.WriteI64(next.at(i), e.ReadI64(head.at(c)))
				e.WriteI64(head.at(c), int64(i))
				e.Unlock(lk)
				e.Compute(costKeyOp)
			}
			e.Barrier(bar)
			bar++

			// History-based prefetching (Luk & Mowry, as in the paper):
			// before any pointer chasing, dereference the previous step's
			// traversal record to prefetch the cell-list pages and the
			// position pages this thread is about to walk.
			if e.Prefetching() {
				e.PrefetchRange(head.at(0), 8*ncells)
				for _, i := range prevRecord {
					e.Prefetch(next.at(i))
					e.Prefetch(pos.at(molStride * i))
				}
			}

			// Traversal pass: record the order of every list this thread
			// walks (own cells + their half shells).
			var record []int
			lists := make(map[int][]int)
			cellList := func(c int) []int {
				l, ok := lists[c]
				if !ok {
					l = listOf(e, c)
					lists[c] = l
					record = append(record, l...)
				}
				return l
			}

			acc := procAcc[e.ProcID()]
			pair := func(i, j int) {
				pi, pj := readPos(e, i), readPos(e, j)
				f, in := waterSpPairForce(pi, pj, cut2)
				e.Compute(costPairForce)
				if !in {
					return
				}
				for d := 0; d < 3; d++ {
					q := quantize(f[d])
					acc[3*i+d] += q
					acc[3*j+d] -= q
				}
			}
			for c := clo; c < chi; c++ {
				cz := c % nc
				cy := (c / nc) % nc
				cx := c / (nc * nc)
				own := cellList(c)
				for a := 0; a < len(own); a++ {
					for b := a + 1; b < len(own); b++ {
						i, j := own[a], own[b]
						if i > j {
							i, j = j, i
						}
						pair(i, j)
					}
				}
				for _, off := range halfShell {
					nx, ny, nz := cx+off[0], cy+off[1], cz+off[2]
					if nx < 0 || ny < 0 || nz < 0 || nx >= nc || ny >= nc || nz >= nc {
						continue
					}
					other := cellList(cidx(nx, ny, nz))
					for _, i := range own {
						for _, j := range other {
							pair(i, j)
						}
					}
				}
			}
			prevRecord = record

			// All siblings must finish their pairs before merging the
			// shared accumulator.
			e.Barrier(bar)
			bar++

			// Merge forces under block locks (as in WATER-NSQ): the
			// processor's threads split the blocks, staggered across
			// processors to avoid a lock convoy.
			mstart := e.ProcID() * nBlocks / e.NumProcs()
			for t := e.LocalThread(); t < nBlocks; t += tpp {
				blk := (mstart + t) % nBlocks
				first := blk * waterNsqBlk
				last := min(n, first+waterNsqBlk)
				hasWork := false
				for i := 3 * first; i < 3*last && !hasWork; i++ {
					hasWork = acc[i] != 0
				}
				if !hasWork {
					continue
				}
				if e.Prefetching() {
					nf := ((mstart + t + tpp) % nBlocks) * waterNsqBlk
					if molStride*(nf+waterNsqBlk) <= molStride*n {
						e.PrefetchRange(force.at(molStride*nf), 8*molStride*waterNsqBlk)
					}
				}
				e.Lock(waterLockBase + blk)
				for m := first; m < last; m++ {
					for d := 0; d < 3; d++ {
						if v := acc[3*m+d]; v != 0 {
							a := force.at(molStride*m + d)
							e.WriteI64(a, e.ReadI64(a)+v)
							e.Compute(costKeyOp)
						}
					}
				}
				e.Unlock(waterLockBase + blk)
			}
			e.Barrier(bar)
			bar++

			// Integrate owned molecules.
			for i := mlo; i < mhi; i++ {
				for d := 0; d < 3; d++ {
					f := float64(e.ReadI64(force.at(molStride*i+d))) / waterFPScale
					v := e.ReadF64(vel.at(molStride*i+d)) + f*waterDt
					x := e.ReadF64(pos.at(molStride*i+d)) + v*waterDt
					if x < 0 {
						x, v = -x, -v
					}
					if x > waterBox {
						x, v = 2*waterBox-x, -v
					}
					e.WriteF64(vel.at(molStride*i+d), v)
					e.WriteF64(pos.at(molStride*i+d), x)
				}
				e.Compute(costIntegrate)
			}
			e.Barrier(bar)
			bar++
		}

		if e.ThreadID() == 0 {
			e.EndMeasurement()
			if opt.Verify {
				box.set(waterSpVerify(e, pos, vel, init, p, cut2))
			}
		}
		e.Barrier(bar)
	}

	return &Instance{Name: "WATER-SP", Run: run, Err: box.get}
}

// waterSpVerify replays the dynamics sequentially: the pair set is defined
// by cell membership (identical), and quantized contributions make the sum
// order-independent, so positions must match bitwise.
func waterSpVerify(e *dsm.Env, pos, vel f64s, init [][3]float64, p waterSpParams, cut2 float64) error {
	n, nc := p.n, p.ncell
	cidx := func(x, y, z int) int { return (x*nc+y)*nc + z }
	ps := make([][3]float64, n)
	vs := make([][3]float64, n)
	copy(ps, init)
	for step := 0; step < p.steps; step++ {
		// Sequential cell lists.
		cells := make([][]int, nc*nc*nc)
		for i := 0; i < n; i++ {
			cx, cy, cz := cellOf(ps[i], nc)
			cells[cidx(cx, cy, cz)] = append(cells[cidx(cx, cy, cz)], i)
		}
		acc := make([]int64, 3*n)
		addPair := func(i, j int) {
			f, in := waterSpPairForce(ps[i], ps[j], cut2)
			if !in {
				return
			}
			for d := 0; d < 3; d++ {
				q := quantize(f[d])
				acc[3*i+d] += q
				acc[3*j+d] -= q
			}
		}
		for c := 0; c < nc*nc*nc; c++ {
			cz := c % nc
			cy := (c / nc) % nc
			cx := c / (nc * nc)
			own := cells[c]
			for a := 0; a < len(own); a++ {
				for b := a + 1; b < len(own); b++ {
					i, j := own[a], own[b]
					if i > j {
						i, j = j, i
					}
					addPair(i, j)
				}
			}
			for _, off := range halfShell {
				nx, ny, nz := cx+off[0], cy+off[1], cz+off[2]
				if nx < 0 || ny < 0 || nz < 0 || nx >= nc || ny >= nc || nz >= nc {
					continue
				}
				for _, i := range own {
					for _, j := range cells[cidx(nx, ny, nz)] {
						addPair(i, j)
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for d := 0; d < 3; d++ {
				f := float64(acc[3*i+d]) / waterFPScale
				v := vs[i][d] + f*waterDt
				x := ps[i][d] + v*waterDt
				if x < 0 {
					x, v = -x, -v
				}
				if x > waterBox {
					x, v = 2*waterBox-x, -v
				}
				vs[i][d] = v
				ps[i][d] = x
			}
		}
	}
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			gp := e.ReadF64(pos.at(molStride*i + d))
			if gp != ps[i][d] {
				return fmt.Errorf("WATER-SP: molecule %d dim %d = %v, want %v", i, d, gp, ps[i][d])
			}
		}
	}
	_ = vel
	return nil
}

// waterInitPosSorted returns the deterministic initial positions sorted by
// cell index, so that index-chunked molecule ownership is spatially
// coherent — as in SPLASH-2, where each processor's molecules occupy its
// region of the cell grid and list insertion is mostly processor-local.
func waterInitPosSorted(n, nc int) [][3]float64 {
	pos := waterInitPos(n)
	sort.SliceStable(pos, func(a, b int) bool {
		ax, ay, az := cellOf(pos[a], nc)
		bx, by, bz := cellOf(pos[b], nc)
		ca := (ax*nc+ay)*nc + az
		cb := (bx*nc+by)*nc + bz
		return ca < cb
	})
	return pos
}
