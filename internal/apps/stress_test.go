package apps

import (
	"fmt"
	"testing"

	"godsm/dsm"
)

// These stress tests exercise the LRC protocol's hardest cases — multiple
// locks guarding cells of one page, uneven lock participation, and the
// barrier manager acting as a server mid-critical-section. They are the
// distilled reproductions of two real protocol bugs found during
// development (commit-own-diff-before-apply, and deferred barrier-manager
// invalidation), kept as regressions.

// tryPattern: P procs, one cell. Owner zeroes it; a subset of procs add
// their id+1 under a lock; barrier; everyone reads.
func tryPattern(procs, owner, lockID int, adders []bool, pairWork []int) string {
	cfg := dsm.DefaultConfig()
	cfg.Procs = procs
	sys := dsm.NewSystem(cfg)
	cell := sys.Alloc.Alloc(8, 8)
	reads := make([]int64, procs)
	sys.Run(func(e *dsm.Env) {
		me := e.ThreadID()
		if me == owner {
			e.WriteI64(cell, 0)
		}
		e.Barrier(0)
		e.Compute(dsm.Time(pairWork[me]) * dsm.Microsecond)
		if adders[me] {
			e.Lock(lockID)
			e.WriteI64(cell, e.ReadI64(cell)+int64(me+1))
			e.Unlock(lockID)
		}
		e.Barrier(1)
		reads[me] = e.ReadI64(cell)
		e.Barrier(2)
	})
	var want int64
	for p, a := range adders {
		if a {
			want += int64(p + 1)
		}
	}
	for p := range reads {
		if reads[p] != want {
			return fmt.Sprintf("procs=%d owner=%d lock=%d adders=%v work=%v: proc%d read %d want %d",
				procs, owner, lockID, adders, pairWork, p, reads[p], want)
		}
	}
	return ""
}

// tryMulti: one page, `procs` cells, cell c guarded by lock c. Each proc
// zeroes its own cell, then adds (me+1)*100+c to cell c for each c in its
// participation mask, in cell order. After a barrier everyone reads all.
func tryMulti(procs int, part [][]bool, work []int) string {
	cfg := dsm.DefaultConfig()
	cfg.Procs = procs
	sys := dsm.NewSystem(cfg)
	base := sys.Alloc.Alloc(8*procs, dsm.PageSize)
	at := func(c int) dsm.Addr { return base + dsm.Addr(8*c) }
	reads := make([][]int64, procs)
	sys.Run(func(e *dsm.Env) {
		me := e.ThreadID()
		e.WriteI64(at(me), 0)
		e.Barrier(0)
		e.Compute(dsm.Time(work[me]) * dsm.Microsecond)
		for c := 0; c < procs; c++ {
			if !part[me][c] {
				continue
			}
			e.Lock(c)
			e.WriteI64(at(c), e.ReadI64(at(c))+int64((me+1)*100+c))
			e.Unlock(c)
		}
		e.Barrier(1)
		mine := make([]int64, procs)
		for c := 0; c < procs; c++ {
			mine[c] = e.ReadI64(at(c))
		}
		reads[me] = mine
		e.Barrier(2)
	})
	want := make([]int64, procs)
	for c := 0; c < procs; c++ {
		for p := 0; p < procs; p++ {
			if part[p][c] {
				want[c] += int64((p+1)*100 + c)
			}
		}
	}
	for p := 0; p < procs; p++ {
		for c := 0; c < procs; c++ {
			if reads[p][c] != want[c] {
				return fmt.Sprintf("procs=%d part=%v work=%v: proc%d cell%d = %d want %d",
					procs, part, work, p, c, reads[p][c], want[c])
			}
		}
	}
	return ""
}

// TestLockSkipPatterns sweeps every single-lock participation pattern for
// 2–4 processors under three skew schedules.
func TestLockSkipPatterns(t *testing.T) {
	fails := 0
	for procs := 2; procs <= 4; procs++ {
		for owner := 0; owner < procs; owner++ {
			for lockID := 0; lockID < procs; lockID++ {
				for mask := 1; mask < 1<<procs; mask++ {
					adders := make([]bool, procs)
					for p := 0; p < procs; p++ {
						adders[p] = mask&(1<<p) != 0
					}
					for _, work := range [][]int{{0, 0, 0, 0}, {0, 500, 1000, 1500}, {1500, 1000, 500, 0}} {
						if msg := tryPattern(procs, owner, lockID, adders, work[:procs]); msg != "" {
							if fails < 8 {
								t.Error(msg)
							}
							fails++
						}
					}
				}
			}
		}
	}
	if fails > 0 {
		t.Fatalf("%d failing patterns", fails)
	}
}

// TestMultiLockPageRegressions replays the exact patterns that exposed the
// two protocol bugs, at 3 and 4 processors.
func TestMultiLockPageRegressions(t *testing.T) {
	cases := []struct {
		procs int
		part  [][]bool
	}{
		{3, [][]bool{{false, true, true}, {false, true, true}, {true, false, false}}},
		{4, [][]bool{{true, true, false, false}, {false, true, false, false}, {false, false, false, false}, {false, false, false, false}}},
		{4, [][]bool{{true, true, true, true}, {false, true, false, true}, {true, true, true, false}, {false, false, false, false}}},
	}
	for _, c := range cases {
		for _, work := range [][]int{{0, 0, 0, 0}, {0, 300, 600, 900}, {900, 600, 300, 0}} {
			if msg := tryMulti(c.procs, c.part, work[:c.procs]); msg != "" {
				t.Error(msg)
			}
		}
	}
}

// TestMultiLockPageSweep samples the full 4-proc participation space.
func TestMultiLockPageSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled sweep skipped in -short mode")
	}
	procs := 4
	fails := 0
	for mask := 0; mask < 1<<(procs*procs); mask += 11 {
		part := make([][]bool, procs)
		for p := 0; p < procs; p++ {
			part[p] = make([]bool, procs)
			for c := 0; c < procs; c++ {
				part[p][c] = mask&(1<<(p*procs+c)) != 0
			}
		}
		for _, work := range [][]int{{0, 0, 0, 0}, {0, 300, 600, 900}} {
			if msg := tryMulti(procs, part, work); msg != "" {
				if fails < 5 {
					t.Error(msg)
				}
				fails++
			}
		}
	}
	if fails > 0 {
		t.Fatalf("%d failing patterns", fails)
	}
}
