package apps

import (
	"fmt"

	"godsm/dsm"
)

// This file holds the intentionally-racy mini-fixtures behind the race
// detector's negative tests (dsmrun -race-check, the CI racy-fixture smoke,
// and the harness determinism tests). They live in Fixtures, not All, so
// dsmrun's "all" selection and the experiment grids never run them by
// accident; they are only reachable by explicit name.

// Fixtures lists the race-detector fixtures: RACY and RACY-STALE always
// race; RACY-EXEMPT is the same pattern as RACY wrapped in Env.RaceExempt
// and must stay clean under -race-check.
var Fixtures = []Spec{
	{"RACY", BuildRacy},
	{"RACY-STALE", BuildRacyStale},
	{"RACY-EXEMPT", BuildRacyExempt},
}

// BuildRacy is an unsynchronized shared counter: every thread increments
// the same word with no lock, so the second thread to touch it races with
// the first (write/write or read/write depending on interleaving — but the
// interleaving is deterministic, so the report is too).
func BuildRacy(sys *dsm.System, opt Options) *Instance {
	return buildRacy(sys, opt, false)
}

// BuildRacyExempt is BuildRacy with the racy increment wrapped in
// Env.RaceExempt: the same access pattern, audited as benign, must run
// clean under -race-check.
func BuildRacyExempt(sys *dsm.System, opt Options) *Instance {
	return buildRacy(sys, opt, true)
}

func buildRacy(sys *dsm.System, opt Options, exempt bool) *Instance {
	counter := sys.Alloc.Alloc(8, dsm.PageSize)
	name := "RACY"
	if exempt {
		name = "RACY-EXEMPT"
	}
	var box errBox
	return &Instance{
		Name: name,
		Run: func(e *dsm.Env) {
			e.Barrier(0)
			bump := func() {
				e.Compute(costKeyOp)
				e.WriteI64(counter, e.ReadI64(counter)+1)
			}
			if exempt {
				e.RaceExempt("fixture: lossy event counter, increments may be dropped by design", bump)
			} else {
				bump()
			}
			e.Barrier(1)
			if e.ThreadID() == 0 {
				e.EndMeasurement()
				if opt.Verify && exempt {
					// Increments can be lost to stale pages, never invented.
					if got := e.ReadI64(counter); got < 1 || got > int64(e.NumThreads()) {
						box.set(fmt.Errorf("counter = %d, want 1..%d", got, e.NumThreads()))
					}
				}
			}
			e.Barrier(2)
		},
		Err: box.get,
	}
}

// BuildRacyStale is a missing-flag handoff: thread 0 publishes a value and
// the other threads read it with no intervening release/acquire edge — the
// classic stale-read pattern release consistency explicitly permits, and
// exactly what the detector must flag.
func BuildRacyStale(sys *dsm.System, opt Options) *Instance {
	data := sys.Alloc.Alloc(8, dsm.PageSize)
	return &Instance{
		Name: "RACY-STALE",
		Run: func(e *dsm.Env) {
			e.Barrier(0)
			if e.ThreadID() == 0 {
				e.WriteI64(data, 42)
			} else {
				// No barrier or lock separates this read from the write.
				e.Compute(costKeyOp)
				_ = e.ReadI64(data)
			}
			e.Barrier(1)
			if e.ThreadID() == 0 {
				e.EndMeasurement()
			}
			e.Barrier(2)
		},
		Err: func() error { return nil },
	}
}
