package apps

import (
	"testing"

	"godsm/dsm"
	"godsm/internal/sim"
)

// testConfig builds a config for correctness tests at unit scale.
func testConfig(procs, threads int, prefetch bool) dsm.Config {
	cfg := dsm.DefaultConfig()
	cfg.Procs = procs
	cfg.ThreadsPerProc = threads
	if threads > 1 {
		cfg.SwitchOnMiss = true
		cfg.SwitchOnSync = true
	}
	cfg.Prefetch = prefetch
	cfg.Limit = 10000 * sim.Second
	return cfg
}

// runVerified builds and runs the named app with verification and fails the
// test on any verification error.
func runVerified(t *testing.T, spec Spec, cfg dsm.Config, sc Scale) *dsm.Report {
	t.Helper()
	sys := dsm.NewSystem(cfg)
	inst := spec.Build(sys, Options{Scale: sc, Verify: true})
	rep := sys.Run(inst.Run)
	if err := inst.Err(); err != nil {
		t.Fatalf("%s verification failed (procs=%d threads=%d pf=%v): %v",
			spec.Name, cfg.Procs, cfg.ThreadsPerProc, cfg.Prefetch, err)
	}
	if rep.Elapsed <= 0 {
		t.Fatalf("%s: non-positive elapsed time", spec.Name)
	}
	return rep
}

// configMatrix is the set of configurations every application must produce
// correct results under: original, prefetching, multithreading, combined.
func configMatrix() []dsm.Config {
	return []dsm.Config{
		testConfig(1, 1, false),
		testConfig(4, 1, false),
		testConfig(4, 1, true),
		func() dsm.Config { // 4 procs, 2 threads, switch on everything
			c := testConfig(4, 2, false)
			return c
		}(),
		func() dsm.Config { // combined: MT on sync only + prefetch
			c := testConfig(4, 2, true)
			c.SwitchOnMiss = false
			return c
		}(),
	}
}

func testAppAllConfigs(t *testing.T, name string) {
	spec, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range configMatrix() {
		cfg := cfg
		runVerified(t, spec, cfg, Unit)
	}
}

func TestSORAllConfigs(t *testing.T)      { testAppAllConfigs(t, "SOR") }
func TestFFTAllConfigs(t *testing.T)      { testAppAllConfigs(t, "FFT") }
func TestLUNcontAllConfigs(t *testing.T)  { testAppAllConfigs(t, "LU-NCONT") }
func TestLUContAllConfigs(t *testing.T)   { testAppAllConfigs(t, "LU-CONT") }
func TestOceanAllConfigs(t *testing.T)    { testAppAllConfigs(t, "OCEAN") }
func TestRadixAllConfigs(t *testing.T)    { testAppAllConfigs(t, "RADIX") }
func TestWaterNsqAllConfigs(t *testing.T) { testAppAllConfigs(t, "WATER-NSQ") }
func TestWaterSpAllConfigs(t *testing.T)  { testAppAllConfigs(t, "WATER-SP") }

// TestPrefetchingImprovesSOR checks the headline direction: with prefetch
// annotations on, SOR at unit scale must not be slower than the original,
// and must record prefetch activity.
func TestPrefetchingImprovesSOR(t *testing.T) {
	spec, _ := ByName("SOR")
	repO := runVerified(t, spec, testConfig(4, 1, false), Unit)
	repP := runVerified(t, spec, testConfig(4, 1, true), Unit)
	s := repP.Sum()
	if s.PfCalls == 0 {
		t.Fatal("prefetching run issued no prefetches")
	}
	if s.FaultPfHit == 0 {
		t.Error("no prefetch hits recorded")
	}
	if repP.Elapsed > repO.Elapsed*11/10 {
		t.Errorf("prefetching slowed SOR down: O=%dµs P=%dµs",
			repO.Elapsed/sim.Microsecond, repP.Elapsed/sim.Microsecond)
	}
}

// TestDeterminismAcrossRuns: the full application stack must be bit-for-bit
// deterministic.
func TestDeterminismAcrossRuns(t *testing.T) {
	spec, _ := ByName("SOR")
	r1 := runVerified(t, spec, testConfig(4, 2, true), Unit)
	r2 := runVerified(t, spec, testConfig(4, 2, true), Unit)
	if r1.Elapsed != r2.Elapsed || r1.MsgsTotal != r2.MsgsTotal || r1.BytesTotal != r2.BytesTotal {
		t.Fatalf("nondeterministic SOR: (%d,%d,%d) vs (%d,%d,%d)",
			r1.Elapsed, r1.MsgsTotal, r1.BytesTotal, r2.Elapsed, r2.MsgsTotal, r2.BytesTotal)
	}
}

// TestGCUnderApps runs SOR and WATER-NSQ with a tiny GC threshold so that
// diff garbage collection fires repeatedly mid-run; results must still
// verify bitwise under every configuration.
func TestGCUnderApps(t *testing.T) {
	for _, name := range []string{"SOR", "WATER-NSQ"} {
		spec, _ := ByName(name)
		for _, cfg := range configMatrix() {
			cfg := cfg
			cfg.GCThreshold = 2048
			rep := runVerified(t, spec, cfg, Unit)
			if rep.Sum().GCRuns == 0 && cfg.Procs > 1 {
				// (single-proc runs never store remote diffs)
				t.Errorf("%s (procs=%d threads=%d pf=%v): GC never ran despite tiny threshold",
					name, cfg.Procs, cfg.ThreadsPerProc, cfg.Prefetch)
			}
		}
	}
}

// TestPrefetchDropStorm: with the drop threshold at its minimum every
// prefetch message is lost in flight; correctness must be unaffected (the
// real access falls back to reliable demand fetches) and drops must be
// observed.
func TestPrefetchDropStorm(t *testing.T) {
	spec, _ := ByName("SOR")
	cfg := testConfig(4, 1, true)
	cfg.Net.DropThreshold = 1
	rep := runVerified(t, spec, cfg, Unit)
	s := rep.Sum()
	if s.PfMsgs == 0 {
		t.Fatal("no prefetch messages issued")
	}
	if rep.Drops == 0 {
		t.Fatal("drop storm produced no drops")
	}
	if s.FaultPfLate == 0 {
		t.Fatal("dropped prefetches should classify as late at the fault")
	}
}

// TestZeroLatencyNetwork: a degenerate (free) network must still produce
// correct results — guards against divide-by-zero or ordering assumptions
// tied to latency.
func TestZeroLatencyNetwork(t *testing.T) {
	spec, _ := ByName("WATER-NSQ")
	cfg := testConfig(4, 1, false)
	cfg.Net.PropDelay = 0
	cfg.Net.SwitchLatency = 1 // loopback needs a nonzero tick
	cfg.Net.NsPerByte = 0
	runVerified(t, spec, cfg, Unit)
}

// TestSingleProcessorDegenerate: every app must run and verify on one
// processor (no communication at all).
func TestSingleProcessorDegenerate(t *testing.T) {
	for _, spec := range All {
		rep := runVerified(t, spec, testConfig(1, 1, true), Unit)
		if rep.TotalMisses() != 0 {
			t.Errorf("%s: %d remote misses on a single processor", spec.Name, rep.TotalMisses())
		}
	}
}
