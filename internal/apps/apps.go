// Package apps re-implements the paper's eight benchmark applications
// against the godsm API: FFT, LU-CONT, LU-NCONT, OCEAN, RADIX, SOR,
// WATER-NSQ and WATER-SP. Each application
//
//   - runs real computation through the shared-memory system (so protocol
//     bugs corrupt results and are caught),
//   - carries hand-inserted non-binding prefetches guarded by
//     Env.Prefetching() (executed only in prefetching configurations), and
//   - verifies its output against a sequential golden implementation when
//     built with verification enabled.
//
// Applications decompose work over Env.NumThreads() workers, so the same
// code runs single-threaded, multithreaded, and combined configurations.
package apps

import (
	"fmt"

	"godsm/dsm"
)

// Scale selects input sizes.
type Scale int

// Scales: Unit is for fast unit tests, Small for the default harness runs,
// Paper for the paper's input sizes (slow).
const (
	Unit Scale = iota
	Small
	Paper
)

// String returns the scale's name.
func (s Scale) String() string {
	switch s {
	case Unit:
		return "unit"
	case Small:
		return "small"
	case Paper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale converts a scale name.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "unit":
		return Unit, nil
	case "small":
		return Small, nil
	case "paper":
		return Paper, nil
	}
	return 0, fmt.Errorf("unknown scale %q (want unit, small or paper)", s)
}

// Instance is a built application ready to run on one System.
type Instance struct {
	Name string
	// Run is the thread body passed to System.Run.
	Run func(*dsm.Env)
	// Err reports verification failure; call after System.Run returns.
	// Always nil when built without verification.
	Err func() error
}

// Options control application construction.
type Options struct {
	Scale  Scale
	Verify bool // run the golden comparison after the timed region
}

// Spec names an application and its builder.
type Spec struct {
	Name  string
	Build func(sys *dsm.System, opt Options) *Instance
}

// All lists the eight applications in the paper's figure order.
var All = []Spec{
	{"FFT", BuildFFT},
	{"LU-NCONT", BuildLUNcont},
	{"LU-CONT", BuildLUCont},
	{"OCEAN", BuildOcean},
	{"RADIX", BuildRadix},
	{"SOR", BuildSOR},
	{"WATER-NSQ", BuildWaterNsq},
	{"WATER-SP", BuildWaterSp},
}

// ByName returns the named application spec. Besides All, it resolves the
// intentionally-racy race-detector fixtures (racy.go), which are reachable
// only by explicit name and never via "all"-style selections over All.
func ByName(name string) (Spec, error) {
	for _, s := range All {
		if s.Name == name {
			return s, nil
		}
	}
	for _, s := range Fixtures {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("unknown application %q", name)
}

// errBox collects a verification error from inside the thread body. The
// simulation is strictly sequential (one goroutine at a time), so a plain
// field suffices.
type errBox struct{ err error }

func (b *errBox) set(err error) {
	if b.err == nil {
		b.err = err
	}
}
func (b *errBox) get() error { return b.err }

// chunk splits n items over parts workers; returns [lo, hi) for worker id.
// The first n%parts workers get one extra item.
func chunk(n, parts, id int) (lo, hi int) {
	base := n / parts
	rem := n % parts
	lo = id*base + min(id, rem)
	hi = lo + base
	if id < rem {
		hi++
	}
	return lo, hi
}

// threadChunk splits n items over all worker threads such that processor
// loads stay balanced regardless of the thread count: items are first
// chunked over processors, then over each processor's threads, keeping a
// thread's range contiguous and adjacent to its siblings' (good locality
// for multithreading, as the paper observes).
func threadChunk(n int, e *dsm.Env) (lo, hi int) {
	return threadChunkFor(n, e.NumProcs(), e.NumThreads()/e.NumProcs(), e.ThreadID())
}

// threadChunkFor is threadChunk for an arbitrary global thread id.
func threadChunkFor(n, procs, tpp, threadID int) (lo, hi int) {
	pLo, pHi := chunk(n, procs, threadID/tpp)
	tLo, tHi := chunk(pHi-pLo, tpp, threadID%tpp)
	return pLo + tLo, pLo + tHi
}

// f64s is a shared array of float64.
type f64s struct{ base dsm.Addr }

func allocF64s(sys *dsm.System, n int) f64s {
	return f64s{base: sys.Alloc.Alloc(8*n, dsm.PageSize)}
}

func (a f64s) at(i int) dsm.Addr { return a.base + dsm.Addr(8*i) }

// i64s is a shared array of int64.
type i64s struct{ base dsm.Addr }

func allocI64s(sys *dsm.System, n int) i64s {
	return i64s{base: sys.Alloc.Alloc(8*n, dsm.PageSize)}
}

func (a i64s) at(i int) dsm.Addr { return a.base + dsm.Addr(8*i) }

// Per-operation busy costs (virtual ns), calibrated to a ~133 MHz scalar
// processor: these are charged on top of the per-access cost for the
// floating-point and index arithmetic of each inner-loop operation.
const (
	costStencil   = 400  // 5-point stencil update (~50 cycles at 133 MHz)
	costButterfly = 2500 // complex butterfly incl. memory-hierarchy stalls
	costCmul      = 1200 // complex multiply (twiddle path)
	costMulSub    = 150  // multiply-subtract in the LU inner loop
	costKeyOp     = 120  // shared-structure bookkeeping step
	costRadixOp   = 3000 // radix sort per-key work incl. memory system effects
	costPairForce = 4000 // pairwise force evaluation (WATER: many flops/pair)
	costIntegrate = 2000 // per-molecule integration step
)
