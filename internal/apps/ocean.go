package apps

import (
	"fmt"

	"godsm/dsm"
)

// OCEAN: a simplification of the SPLASH-2 ocean simulation down to its
// communication core, as documented in DESIGN.md: two coupled grids (stream
// function psi and vorticity) relaxed red-black over an eddy/boundary-
// forced domain, with a lock-protected global residual reduction and a
// convergence test every sweep. This preserves what the paper's OCEAN
// stresses in the DSM — nearest-neighbour page sharing on a 258² grid plus
// very heavy barrier synchronization (two barriers per sweep and a
// reduction), which is why OCEAN's breakdown is dominated by
// synchronization time.
//
// The residual is accumulated in fixed-point under a lock so that the
// convergence decision is independent of accumulation order (and therefore
// of the thread count), keeping every configuration bitwise comparable.

type oceanParams struct {
	g        int // interior grid dimension
	maxIters int
	tol      int64 // fixed-point residual threshold
}

func oceanSizes(sc Scale) oceanParams {
	switch sc {
	case Unit:
		return oceanParams{g: 34, maxIters: 6, tol: 1 << 8}
	case Small:
		return oceanParams{g: 130, maxIters: 12, tol: 1 << 8}
	default: // paper: 258×258 grid
		return oceanParams{g: 258, maxIters: 30, tol: 1 << 8}
	}
}

const (
	oceanRelax = 0.45
	oceanScale = 1 << 20 // fixed-point scale for the residual reduction
	oceanLock  = 7
)

// oceanForcing is the eddy/boundary current forcing term at (i, j).
func oceanForcing(i, j, g int) float64 {
	// A boundary-driven circulation: strong flow at the top boundary,
	// decaying eddies in the interior.
	di := float64(i) / float64(g+1)
	dj := float64(j) / float64(g+1)
	return 0.02 * (di - dj) * (1 - di) * dj
}

func oceanInit(i, j, g int) float64 {
	if i == 0 {
		return 1.0 // wind-driven top boundary current
	}
	if j == 0 || i == g+1 || j == g+1 {
		return 0
	}
	return float64((i*13+j*7)%89) / 890.0
}

// BuildOcean constructs the OCEAN application.
func BuildOcean(sys *dsm.System, opt Options) *Instance {
	p := oceanSizes(opt.Scale)
	G := p.g + 2
	psi := allocF64s(sys, G*G)
	vor := allocF64s(sys, G*G)
	errCell := allocI64s(sys, 2) // [0]=fixed-point residual, [1]=done flag
	var box errBox

	idx := func(i, j int) int { return i*G + j }

	run := func(e *dsm.Env) {
		me := e.ThreadID()
		if me == 0 {
			for i := 0; i < G; i++ {
				for j := 0; j < G; j++ {
					e.WriteF64(psi.at(idx(i, j)), oceanInit(i, j, p.g))
					e.WriteF64(vor.at(idx(i, j)), 0)
					e.Compute(25)
				}
			}
		}
		e.Barrier(0)

		lo, hi := threadChunk(p.g, e)
		lo, hi = lo+1, hi+1
		bar := 1
		for it := 0; it < p.maxIters; it++ {
			// Sweep 1: vorticity from the psi stencil.
			if e.Prefetching() && hi > lo {
				e.PrefetchRange(psi.at(idx(lo-1, 0)), 8*G)
				e.PrefetchRange(psi.at(idx(hi, 0)), 8*G)
			}
			for i := lo; i < hi; i++ {
				for j := 1; j <= p.g; j++ {
					lap := e.ReadF64(psi.at(idx(i-1, j))) + e.ReadF64(psi.at(idx(i+1, j))) +
						e.ReadF64(psi.at(idx(i, j-1))) + e.ReadF64(psi.at(idx(i, j+1))) -
						4*e.ReadF64(psi.at(idx(i, j)))
					e.WriteF64(vor.at(idx(i, j)), lap+oceanForcing(i, j, p.g))
					e.Compute(costStencil)
				}
			}
			e.Barrier(bar)
			bar++

			// Sweep 2: red-black relaxation of psi toward the vorticity
			// field (red-black keeps the parallel result identical to the
			// sequential one), accumulating the local residual.
			var localErr int64
			for color := 0; color < 2; color++ {
				if e.Prefetching() && hi > lo {
					e.PrefetchRange(psi.at(idx(lo-1, 0)), 8*G)
					e.PrefetchRange(psi.at(idx(hi, 0)), 8*G)
					e.PrefetchRange(vor.at(idx(lo, 0)), 8*G)
				}
				for i := lo; i < hi; i++ {
					for j := 1 + (i+color+1)%2; j <= p.g; j += 2 {
						c := e.ReadF64(psi.at(idx(i, j)))
						target := (e.ReadF64(psi.at(idx(i-1, j))) + e.ReadF64(psi.at(idx(i+1, j))) +
							e.ReadF64(psi.at(idx(i, j-1))) + e.ReadF64(psi.at(idx(i, j+1)))) / 4
						nv := c + oceanRelax*(target-c+e.ReadF64(vor.at(idx(i, j))))
						e.WriteF64(psi.at(idx(i, j)), nv)
						d := nv - c
						if d < 0 {
							d = -d
						}
						localErr += int64(d * oceanScale)
						e.Compute(costStencil + 40)
					}
				}
				e.Barrier(bar)
				bar++
			}

			// Lock-protected global reduction.
			if e.Prefetching() {
				e.PrefetchRange(errCell.at(0), 16)
			}
			e.Lock(oceanLock)
			e.WriteI64(errCell.at(0), e.ReadI64(errCell.at(0))+localErr)
			e.Unlock(oceanLock)
			e.Barrier(bar)
			bar++

			if me == 0 {
				total := e.ReadI64(errCell.at(0))
				if total < p.tol {
					e.WriteI64(errCell.at(1), 1)
				}
				e.WriteI64(errCell.at(0), 0)
			}
			e.Barrier(bar)
			bar++
			if e.ReadI64(errCell.at(1)) != 0 {
				break
			}
		}
		e.Barrier(1000) // final barrier, distinct id

		if me == 0 {
			e.EndMeasurement()
			if opt.Verify {
				box.set(oceanVerify(e, psi, p, idx))
			}
		}
		e.Barrier(1001)
	}

	return &Instance{Name: "OCEAN", Run: run, Err: box.get}
}

// oceanVerify recomputes the run sequentially (identical operation order
// per cell; the fixed-point reduction makes the iteration count identical)
// and compares the stream function bitwise.
func oceanVerify(e *dsm.Env, psi f64s, p oceanParams, idx func(i, j int) int) error {
	G := p.g + 2
	ps := make([]float64, G*G)
	vo := make([]float64, G*G)
	for i := 0; i < G; i++ {
		for j := 0; j < G; j++ {
			ps[idx(i, j)] = oceanInit(i, j, p.g)
		}
	}
	for it := 0; it < p.maxIters; it++ {
		for i := 1; i <= p.g; i++ {
			for j := 1; j <= p.g; j++ {
				lap := ps[idx(i-1, j)] + ps[idx(i+1, j)] + ps[idx(i, j-1)] + ps[idx(i, j+1)] - 4*ps[idx(i, j)]
				vo[idx(i, j)] = lap + oceanForcing(i, j, p.g)
			}
		}
		var total int64
		for color := 0; color < 2; color++ {
			for i := 1; i <= p.g; i++ {
				for j := 1 + (i+color+1)%2; j <= p.g; j += 2 {
					c := ps[idx(i, j)]
					target := (ps[idx(i-1, j)] + ps[idx(i+1, j)] + ps[idx(i, j-1)] + ps[idx(i, j+1)]) / 4
					nv := c + oceanRelax*(target-c+vo[idx(i, j)])
					ps[idx(i, j)] = nv
					d := nv - c
					if d < 0 {
						d = -d
					}
					total += int64(d * oceanScale)
				}
			}
		}
		if total < p.tol {
			break
		}
	}
	for i := 0; i < G; i++ {
		for j := 0; j < G; j++ {
			got := e.ReadF64(psi.at(idx(i, j)))
			if got != ps[idx(i, j)] {
				return fmt.Errorf("OCEAN: psi(%d,%d) = %v, want %v", i, j, got, ps[idx(i, j)])
			}
		}
	}
	return nil
}
