package apps

import (
	"fmt"
	"math/rand"

	"godsm/dsm"
)

// LU: blocked right-looking LU factorization (no pivoting; the matrix is
// made diagonally dominant) in the two SPLASH-2 variants the paper runs:
//
//   - LU-NCONT: the matrix is one row-major n×n array, so a B×B block
//     spans B non-contiguous row segments (many pages, false sharing at
//     block boundaries). Paper input: n=1024, B=128.
//   - LU-CONT: each block is stored contiguously (block-major), so a block
//     is one dense B²-element region. Paper input: n=1024, B=32.
//
// Blocks are assigned to threads in a 2D scatter. Each step k factors the
// diagonal block, solves the perimeter row/column, and updates the interior
// (barriers between phases).
//
// Prefetch insertion: before updating an owned interior block (i,j), the
// remote source blocks (i,k) and (k,j) are prefetched; the loop over owned
// blocks is software-pipelined so block t+1's sources are prefetched while
// block t computes.

type luParams struct {
	n, b int
	cont bool
}

func luSizes(sc Scale, cont bool) luParams {
	switch sc {
	case Unit:
		if cont {
			return luParams{n: 64, b: 8, cont: true}
		}
		return luParams{n: 64, b: 16}
	case Small:
		if cont {
			return luParams{n: 256, b: 16, cont: true}
		}
		return luParams{n: 256, b: 32}
	default:
		if cont {
			return luParams{n: 1024, b: 32, cont: true}
		}
		return luParams{n: 1024, b: 128}
	}
}

// luInput generates the deterministic diagonally dominant input matrix.
func luInput(n int) []float64 {
	rng := rand.New(rand.NewSource(11081998))
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = rng.Float64()
		}
		a[i*n+i] += float64(n)
	}
	return a
}

// luLayout maps matrix coordinates to shared addresses.
type luLayout struct {
	arr  f64s
	n, b int
	cont bool
}

func (l luLayout) at(i, j int) dsm.Addr {
	if !l.cont {
		return l.arr.at(i*l.n + j)
	}
	nb := l.n / l.b
	bi, bj := i/l.b, j/l.b
	oi, oj := i%l.b, j%l.b
	return l.arr.at((bi*nb+bj)*l.b*l.b + oi*l.b + oj)
}

// blockAddr returns the address of the first element of row r within block
// (I,J), and the number of contiguous elements that follow it in memory.
func (l luLayout) blockRow(I, J, r int) (dsm.Addr, int) {
	return l.at(I*l.b+r, J*l.b), l.b
}

// luOwner computes the 2D-scatter block distribution.
func luGrid(T int) (pr, pc int) {
	pr = 1
	for d := 1; d*d <= T; d++ {
		if T%d == 0 {
			pr = d
		}
	}
	return pr, T / pr
}

// seqBlockLU factors the matrix in place with exactly the block order and
// inner loops of the parallel version, so results compare bitwise.
func seqBlockLU(a []float64, n, b int) {
	nb := n / b
	get := func(i, j int) float64 { return a[i*n+j] }
	set := func(i, j int, v float64) { a[i*n+j] = v }
	for k := 0; k < nb; k++ {
		luFactorBlock(n, b, k, get, set)
		for j := k + 1; j < nb; j++ {
			luSolveRow(n, b, k, j, get, set)
		}
		for i := k + 1; i < nb; i++ {
			luSolveCol(n, b, k, i, get, set)
		}
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j < nb; j++ {
				luUpdate(n, b, k, i, j, get, set)
			}
		}
	}
}

// luFactorBlock performs the in-place unblocked LU of diagonal block k.
func luFactorBlock(n, b, k int, get func(int, int) float64, set func(int, int, float64)) {
	o := k * b
	for j := 0; j < b; j++ {
		d := get(o+j, o+j)
		for i := j + 1; i < b; i++ {
			l := get(o+i, o+j) / d
			set(o+i, o+j, l)
			for jj := j + 1; jj < b; jj++ {
				set(o+i, o+jj, get(o+i, o+jj)-l*get(o+j, o+jj))
			}
		}
	}
}

// luSolveRow computes U(k,j) = L(k,k)^-1 A(k,j) (unit lower triangular).
func luSolveRow(n, b, k, j int, get func(int, int) float64, set func(int, int, float64)) {
	ro, co := k*b, j*b
	for c := 0; c < b; c++ {
		for r := 1; r < b; r++ {
			v := get(ro+r, co+c)
			for t := 0; t < r; t++ {
				v -= get(ro+r, ro+t) * get(ro+t, co+c)
			}
			set(ro+r, co+c, v)
		}
	}
}

// luSolveCol computes L(i,k) = A(i,k) U(k,k)^-1.
func luSolveCol(n, b, k, i int, get func(int, int) float64, set func(int, int, float64)) {
	ro, co := i*b, k*b
	for r := 0; r < b; r++ {
		for c := 0; c < b; c++ {
			v := get(ro+r, co+c)
			for t := 0; t < c; t++ {
				v -= get(ro+r, co+t) * get(co+t, co+c)
			}
			set(ro+r, co+c, v/get(co+c, co+c))
		}
	}
}

// luUpdate computes A(i,j) -= L(i,k) U(k,j).
func luUpdate(n, b, k, i, j int, get func(int, int) float64, set func(int, int, float64)) {
	io, jo, ko := i*b, j*b, k*b
	for r := 0; r < b; r++ {
		for c := 0; c < b; c++ {
			v := get(io+r, jo+c)
			for t := 0; t < b; t++ {
				v -= get(io+r, ko+t) * get(ko+t, jo+c)
			}
			set(io+r, jo+c, v)
		}
	}
}

func buildLU(sys *dsm.System, opt Options, cont bool) *Instance {
	name := "LU-NCONT"
	if cont {
		name = "LU-CONT"
	}
	p := luSizes(opt.Scale, cont)
	n, b := p.n, p.b
	nb := n / b
	lay := luLayout{arr: allocF64s(sys, n*n), n: n, b: b, cont: cont}
	input := luInput(n)
	var box errBox

	run := func(e *dsm.Env) {
		T := e.NumThreads()
		pr, pc := luGrid(T)
		owner := func(I, J int) int { return (I%pr)*pc + J%pc }
		me := e.ThreadID()

		get := func(i, j int) float64 { return e.ReadF64(lay.at(i, j)) }
		set := func(i, j int, v float64) { e.WriteF64(lay.at(i, j), v) }

		pfBlock := func(I, J int) {
			for r := 0; r < b; r++ {
				addr, cnt := lay.blockRow(I, J, r)
				e.PrefetchRange(addr, 8*cnt)
				if cont {
					return // the whole block is one contiguous range
				}
			}
		}

		if me == 0 {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					set(i, j, input[i*n+j])
					e.Compute(20)
				}
			}
		}
		e.Barrier(0)

		bar := 1
		for k := 0; k < nb; k++ {
			if owner(k, k) == me {
				luFactorBlock(n, b, k, get, set)
				e.Compute(dsm.Time(b*b*b/3) * costMulSub)
			}
			e.Barrier(bar)
			bar++

			if e.Prefetching() {
				// The perimeter solves all need the diagonal block.
				needDiag := false
				for j := k + 1; j < nb && !needDiag; j++ {
					needDiag = owner(k, j) == me || owner(j, k) == me
				}
				if needDiag && owner(k, k) != me {
					pfBlock(k, k)
				}
			}
			for j := k + 1; j < nb; j++ {
				if owner(k, j) == me {
					luSolveRow(n, b, k, j, get, set)
					e.Compute(dsm.Time(b*b*b/2) * costMulSub)
				}
			}
			for i := k + 1; i < nb; i++ {
				if owner(i, k) == me {
					luSolveCol(n, b, k, i, get, set)
					e.Compute(dsm.Time(b*b*b/2) * costMulSub)
				}
			}
			e.Barrier(bar)
			bar++

			// Interior update, software-pipelined prefetching of the
			// source blocks for the next owned block.
			var mine [][2]int
			for i := k + 1; i < nb; i++ {
				for j := k + 1; j < nb; j++ {
					if owner(i, j) == me {
						mine = append(mine, [2]int{i, j})
					}
				}
			}
			pfSources := func(t int) {
				if t >= len(mine) {
					return
				}
				i, j := mine[t][0], mine[t][1]
				if owner(i, k) != me {
					pfBlock(i, k)
				}
				if owner(k, j) != me {
					pfBlock(k, j)
				}
			}
			if e.Prefetching() {
				pfSources(0)
			}
			for t, ij := range mine {
				if e.Prefetching() {
					pfSources(t + 1)
				}
				luUpdate(n, b, k, ij[0], ij[1], get, set)
				e.Compute(dsm.Time(b*b*b) * costMulSub)
			}
			e.Barrier(bar)
			bar++
		}

		if me == 0 {
			e.EndMeasurement()
			if opt.Verify {
				box.set(luVerify(e, lay, input, n, b, name))
			}
		}
		e.Barrier(bar)
	}

	return &Instance{Name: name, Run: run, Err: box.get}
}

func luVerify(e *dsm.Env, lay luLayout, input []float64, n, b int, name string) error {
	want := append([]float64(nil), input...)
	seqBlockLU(want, n, b)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			got := e.ReadF64(lay.at(i, j))
			if got != want[i*n+j] {
				return fmt.Errorf("%s: element (%d,%d) = %v, want %v", name, i, j, got, want[i*n+j])
			}
		}
	}
	return nil
}

// BuildLUNcont constructs LU with non-contiguous (row-major) block storage.
func BuildLUNcont(sys *dsm.System, opt Options) *Instance {
	return buildLU(sys, opt, false)
}

// BuildLUCont constructs LU with contiguous block storage.
func BuildLUCont(sys *dsm.System, opt Options) *Instance {
	return buildLU(sys, opt, true)
}
