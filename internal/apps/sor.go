package apps

import (
	"fmt"

	"godsm/dsm"
)

// SOR: red-black successive over-relaxation over a 2D grid, the TreadMarks
// distribution's demo application. Rows are block-distributed over threads;
// each iteration performs a red half-sweep and a black half-sweep separated
// by barriers. The only remote data a thread touches are its neighbours'
// boundary rows.
//
// Prefetch insertion (Section 3.2): at the start of each half-sweep a
// thread prefetches the two neighbour boundary rows and then computes its
// interior rows first (loop splitting), giving the prefetches the length of
// the interior computation to complete before the boundary rows are needed.

const sorOmega = 0.5

type sorParams struct {
	rows, cols, iters int
}

func sorSizes(sc Scale) sorParams {
	switch sc {
	case Unit:
		return sorParams{rows: 48, cols: 48, iters: 4}
	case Small:
		return sorParams{rows: 384, cols: 384, iters: 10}
	default: // Paper
		return sorParams{rows: 2000, cols: 2000, iters: 50}
	}
}

// sorInit gives the initial grid value at (i, j); the top boundary is hot.
func sorInit(i, j, cols int) float64 {
	if i == 0 {
		return 1.0
	}
	return float64((i*31+j*17)%97) / 97.0
}

// BuildSOR constructs the SOR application.
func BuildSOR(sys *dsm.System, opt Options) *Instance {
	p := sorSizes(opt.Scale)
	R, C := p.rows+2, p.cols+2 // including boundary
	grid := allocF64s(sys, R*C)
	var box errBox

	idx := func(i, j int) int { return i*C + j }

	// halfSweep updates every interior cell of the given color in rows
	// [lo, hi), interior-first when pipelining so boundary-row prefetches
	// have time to land.
	halfSweep := func(e *dsm.Env, color, lo, hi int, pipelined bool) {
		order := make([]int, 0, hi-lo)
		if pipelined && hi-lo > 2 {
			for i := lo + 1; i < hi-1; i++ {
				order = append(order, i)
			}
			order = append(order, lo, hi-1)
		} else {
			for i := lo; i < hi; i++ {
				order = append(order, i)
			}
		}
		for _, i := range order {
			for j := 1 + (i+color+1)%2; j <= p.cols; j += 2 {
				up := e.ReadF64(grid.at(idx(i-1, j)))
				down := e.ReadF64(grid.at(idx(i+1, j)))
				left := e.ReadF64(grid.at(idx(i, j-1)))
				right := e.ReadF64(grid.at(idx(i, j+1)))
				c := e.ReadF64(grid.at(idx(i, j)))
				e.WriteF64(grid.at(idx(i, j)), c+sorOmega*((up+down+left+right)/4-c))
				e.Compute(costStencil)
			}
		}
	}

	run := func(e *dsm.Env) {
		if e.ThreadID() == 0 {
			for i := 0; i < R; i++ {
				for j := 0; j < C; j++ {
					e.WriteF64(grid.at(idx(i, j)), sorInit(i, j, C))
					e.Compute(20)
				}
			}
		}
		e.Barrier(0)

		lo, hi := threadChunk(p.rows, e)
		lo, hi = lo+1, hi+1 // interior rows are 1..rows
		bar := 1
		for it := 0; it < p.iters; it++ {
			for color := 0; color < 2; color++ {
				if e.Prefetching() && hi > lo {
					// Neighbour boundary rows are the remote data.
					e.PrefetchRange(grid.at(idx(lo-1, 0)), 8*C)
					e.PrefetchRange(grid.at(idx(hi, 0)), 8*C)
				}
				halfSweep(e, color, lo, hi, e.Prefetching())
				e.Barrier(bar)
				bar++
			}
		}
		e.Barrier(bar)

		if e.ThreadID() == 0 {
			e.EndMeasurement()
			if opt.Verify {
				box.set(sorVerify(e, grid, p, idx))
			}
		}
		e.Barrier(bar + 1)
	}

	return &Instance{Name: "SOR", Run: run, Err: box.get}
}

// sorVerify recomputes the grid sequentially in plain Go and compares
// bitwise: red-black updates within a half-sweep are order-independent, so
// the parallel result must match exactly.
func sorVerify(e *dsm.Env, grid f64s, p sorParams, idx func(i, j int) int) error {
	R, C := p.rows+2, p.cols+2
	g := make([]float64, R*C)
	for i := 0; i < R; i++ {
		for j := 0; j < C; j++ {
			g[idx(i, j)] = sorInit(i, j, C)
		}
	}
	for it := 0; it < p.iters; it++ {
		for color := 0; color < 2; color++ {
			for i := 1; i <= p.rows; i++ {
				for j := 1 + (i+color+1)%2; j <= p.cols; j += 2 {
					c := g[idx(i, j)]
					g[idx(i, j)] = c + sorOmega*((g[idx(i-1, j)]+g[idx(i+1, j)]+g[idx(i, j-1)]+g[idx(i, j+1)])/4-c)
				}
			}
		}
	}
	for i := 0; i < R; i++ {
		for j := 0; j < C; j++ {
			got := e.ReadF64(grid.at(idx(i, j)))
			if got != g[idx(i, j)] {
				return fmt.Errorf("SOR: cell (%d,%d) = %v, want %v", i, j, got, g[idx(i, j)])
			}
		}
	}
	return nil
}
