package apps

import (
	"fmt"
	"math/rand"
	"sort"

	"godsm/dsm"
)

// RADIX: SPLASH-2 style parallel integer radix sort. Each pass over one
// digit: (1) every thread builds a private histogram of its key chunk,
// publishes it to a shared density array; (2) after a barrier, thread 0
// computes the global rank offsets (every thread's starting position per
// digit); (3) after another barrier, every thread permutes its keys into
// the destination array at those offsets. The permutation's scattered
// remote writes are the dominant communication, as in the paper.
//
// Prefetch insertion: the histogram read pass prefetches the source chunk
// sequentially (well-pipelined); the permutation prefetches each digit
// bucket's upcoming destination page when the write position crosses into
// it — which is inherently hard to do early, matching the paper's
// observation that RADIX has the largest fraction of late prefetches.

type radixParams struct {
	n      int
	maxKey int64
	bits   int // bits per pass
}

func radixSizes(sc Scale) radixParams {
	switch sc {
	case Unit:
		return radixParams{n: 2048, maxKey: 1 << 12, bits: 6}
	case Small:
		return radixParams{n: 1 << 15, maxKey: 1 << 18, bits: 7}
	default: // paper: 2^20 keys, max 2^21, radix 1024
		return radixParams{n: 1 << 20, maxKey: 1 << 21, bits: 10}
	}
}

func radixInput(n int, maxKey int64) []int64 {
	rng := rand.New(rand.NewSource(19980204))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(maxKey)
	}
	return keys
}

// BuildRadix constructs the RADIX application.
func BuildRadix(sys *dsm.System, opt Options) *Instance {
	p := radixSizes(opt.Scale)
	radix := 1 << p.bits
	passes := 0
	for maxv := p.maxKey - 1; maxv > 0; maxv >>= p.bits {
		passes++
	}
	input := radixInput(p.n, p.maxKey)

	src := allocI64s(sys, p.n)
	dst := allocI64s(sys, p.n)
	T := sys.TotalThreads()
	density := allocI64s(sys, radix*T) // density[d*T + t]
	offsets := allocI64s(sys, radix*T) // rank offsets, same indexing
	chunkTot := allocI64s(sys, T)      // per-thread digit-chunk totals
	var box errBox

	run := func(e *dsm.Env) {
		me := e.ThreadID()
		nT := e.NumThreads()
		lo, hi := threadChunk(p.n, e)

		if me == 0 {
			for i, k := range input {
				e.WriteI64(src.at(i), k)
				e.Compute(20)
			}
		}
		e.Barrier(0)

		bar := 1
		a, bArr := src, dst
		for pass := 0; pass < passes; pass++ {
			shift := uint(pass * p.bits)
			mask := int64(radix - 1)

			// 1. Local histogram over the thread's chunk, with pipelined
			// sequential prefetch of the source region.
			hist := make([]int64, radix)
			const pfAhead = 2 * dsm.PageSize
			for i := lo; i < hi; i++ {
				if e.Prefetching() && (i-lo)%(dsm.PageSize/8) == 0 {
					e.PrefetchRange(a.at(i)+pfAhead, dsm.PageSize)
				}
				k := e.ReadI64(a.at(i))
				hist[(k>>shift)&mask]++
				e.Compute(costRadixOp)
			}
			for d := 0; d < radix; d++ {
				e.WriteI64(density.at(me*radix+d), hist[d])
			}
			e.Barrier(bar)
			bar++

			// 2. Global prefix, parallelized over digit ranges as in
			// SPLASH-2: each thread scans its own digit chunk and writes
			// relative offsets plus its chunk total; thread 0 prefixes the
			// chunk totals; each thread then adds its chunk base.
			dLo, dHi := threadChunk(radix, e)
			var local int64
			for d := dLo; d < dHi; d++ {
				for t := 0; t < nT; t++ {
					e.WriteI64(offsets.at(t*radix+d), local)
					local += e.ReadI64(density.at(t*radix + d))
					e.Compute(costKeyOp)
				}
			}
			e.WriteI64(chunkTot.at(me), local)
			e.Barrier(bar)
			bar++
			if me == 0 {
				var run int64
				for t := 0; t < nT; t++ {
					v := e.ReadI64(chunkTot.at(t))
					e.WriteI64(chunkTot.at(t), run)
					run += v
					e.Compute(costKeyOp)
				}
			}
			e.Barrier(bar)
			bar++
			base := e.ReadI64(chunkTot.at(me))
			if base != 0 {
				for d := dLo; d < dHi; d++ {
					for t := 0; t < nT; t++ {
						a := offsets.at(t*radix + d)
						e.WriteI64(a, e.ReadI64(a)+base)
						e.Compute(costKeyOp)
					}
				}
			}
			e.Barrier(bar)
			bar++

			// 3. Permutation into the destination array. After the prefix
			// phase each thread knows exactly which destination ranges it
			// will write ([rank[d], rank[d]+hist[d]) per digit), so the
			// prefetching version issues all of them up front — maximal
			// lookahead, at the cost of compressing the fetch traffic into
			// a burst (the paper's RADIX network-contention effect).
			rank := make([]int64, radix)
			for d := 0; d < radix; d++ {
				rank[d] = e.ReadI64(offsets.at(me*radix + d))
			}
			if e.Prefetching() {
				for d := 0; d < radix; d++ {
					if hist[d] > 0 {
						e.PrefetchRange(bArr.at(int(rank[d])), 8*int(hist[d]))
					}
				}
			}
			for i := lo; i < hi; i++ {
				k := e.ReadI64(a.at(i))
				d := (k >> shift) & mask
				pos := rank[d]
				rank[d]++
				e.WriteI64(bArr.at(int(pos)), k)
				e.Compute(costRadixOp)
			}
			e.Barrier(bar)
			bar++
			a, bArr = bArr, a
		}

		if me == 0 {
			e.EndMeasurement()
			if opt.Verify {
				box.set(radixVerify(e, a, input))
			}
		}
		e.Barrier(bar)
	}

	return &Instance{Name: "RADIX", Run: run, Err: box.get}
}

func radixVerify(e *dsm.Env, out i64s, input []int64) error {
	want := append([]int64(nil), input...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		got := e.ReadI64(out.at(i))
		if got != want[i] {
			return fmt.Errorf("RADIX: position %d = %d, want %d", i, got, want[i])
		}
	}
	return nil
}
