package apps

import (
	"math"
	"math/cmplx"
	"testing"
)

// Independent algorithm validation: these tests check the golden
// implementations themselves against mathematical ground truth, so that
// "parallel == golden" (checked elsewhere) implies "parallel == correct".

// TestLUFactorizationResidual: L·U must reconstruct the input matrix.
func TestLUFactorizationResidual(t *testing.T) {
	const n, b = 32, 8
	a := luInput(n)
	lu := append([]float64(nil), a...)
	seqBlockLU(lu, n, b)

	var maxErr float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// (L·U)[i][j] with L unit-lower, U upper from the packed form.
			var s float64
			for k := 0; k <= min(i, j); k++ {
				l := lu[i*n+k]
				if k == i {
					l = 1
				}
				u := lu[k*n+j]
				if k > j {
					u = 0
				}
				if k <= j && k < i || k == i {
					s += l * u
				}
			}
			if e := math.Abs(s - a[i*n+j]); e > maxErr {
				maxErr = e
			}
		}
	}
	if maxErr > 1e-9*float64(n) {
		t.Fatalf("LU residual too large: %g", maxErr)
	}
}

// TestLUBlockSizesAgree: the blocked factorization must be independent of
// the block size up to floating-point reassociation — for a diagonally
// dominant matrix the results must agree closely.
func TestLUBlockSizesAgree(t *testing.T) {
	const n = 32
	a := luInput(n)
	lu8 := append([]float64(nil), a...)
	seqBlockLU(lu8, n, 8)
	lu16 := append([]float64(nil), a...)
	seqBlockLU(lu16, n, 16)
	for i := range lu8 {
		if math.Abs(lu8[i]-lu16[i]) > 1e-8 {
			t.Fatalf("block sizes disagree at %d: %v vs %v", i, lu8[i], lu16[i])
		}
	}
}

// TestFFTSixStepMatchesNaiveDFT validates the six-step algorithm across
// the full output for a small size.
func TestFFTSixStepMatchesNaiveDFT(t *testing.T) {
	const m = 8 // n = 64
	n := m * m
	in := fftInput(n)
	got := fftSixStepSeq(in, m)
	for k := 0; k < n; k++ {
		var want complex128
		for j := 0; j < n; j++ {
			want += in[j] * fftTwiddle(j, k, n)
		}
		if cmplx.Abs(got[k]-want) > 1e-9*float64(n) {
			t.Fatalf("DFT mismatch at %d: %v vs %v", k, got[k], want)
		}
	}
}

// TestFFTLinearity: FFT(a+b) = FFT(a)+FFT(b) — a structural property the
// implementation must satisfy independent of the reference.
func TestFFTLinearity(t *testing.T) {
	const m = 8
	n := m * m
	a := fftInput(n)
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(float64(i%13)/13, -float64(i%7)/7)
	}
	ab := make([]complex128, n)
	for i := range ab {
		ab[i] = a[i] + b[i]
	}
	fa := fftSixStepSeq(a, m)
	fb := fftSixStepSeq(b, m)
	fab := fftSixStepSeq(ab, m)
	for i := range fab {
		if cmplx.Abs(fab[i]-(fa[i]+fb[i])) > 1e-9*float64(n) {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

// TestWaterForcesAntisymmetric: the pair force must satisfy Newton's third
// law under the quantization (what makes momentum-free accumulation work).
func TestWaterForcesAntisymmetric(t *testing.T) {
	pos := waterInitPos(16)
	for i := 0; i < 16; i++ {
		for j := i + 1; j < 16; j++ {
			fij := waterPairForce(pos[i], pos[j])
			fji := waterPairForce(pos[j], pos[i])
			for d := 0; d < 3; d++ {
				if quantize(fij[d]) != -quantize(fji[d]) {
					t.Fatalf("pair (%d,%d) dim %d not antisymmetric after quantization", i, j, d)
				}
			}
		}
	}
}

// TestWaterMomentumConservation: with antisymmetric quantized forces, the
// total accumulated force must be exactly zero.
func TestWaterMomentumConservation(t *testing.T) {
	const n = 32
	pos := waterInitPos(n)
	acc := make([]int64, 3*n)
	for i := 0; i < n; i++ {
		for k := 1; k <= n/2; k++ {
			j := (i + k) % n
			if 2*k == n && i > j {
				continue
			}
			f := waterPairForce(pos[i], pos[j])
			for d := 0; d < 3; d++ {
				q := quantize(f[d])
				acc[3*i+d] += q
				acc[3*j+d] -= q
			}
		}
	}
	for d := 0; d < 3; d++ {
		var total int64
		for i := 0; i < n; i++ {
			total += acc[3*i+d]
		}
		if total != 0 {
			t.Fatalf("total force in dim %d = %d, want 0", d, total)
		}
	}
}

// TestWaterCyclicPairingCoversAllPairs: the load-balanced cyclic pairing
// must enumerate each unordered pair exactly once, for odd and even n.
func TestWaterCyclicPairingCoversAllPairs(t *testing.T) {
	for _, n := range []int{7, 8, 16, 21} {
		seen := make(map[[2]int]int)
		for i := 0; i < n; i++ {
			for k := 1; k <= n/2; k++ {
				j := (i + k) % n
				if 2*k == n && i > j {
					continue
				}
				a, b := i, j
				if a > b {
					a, b = b, a
				}
				seen[[2]int{a, b}]++
			}
		}
		want := n * (n - 1) / 2
		if len(seen) != want {
			t.Fatalf("n=%d: %d distinct pairs, want %d", n, len(seen), want)
		}
		for p, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: pair %v enumerated %d times", n, p, c)
			}
		}
	}
}

// TestWaterSpHalfShellCoversAllNeighbours: self + 13 half-shell offsets
// must cover each unordered cell pair at most once and every adjacent pair
// exactly once (interior cells).
func TestWaterSpHalfShellCoversAllNeighbours(t *testing.T) {
	const nc = 4
	cidx := func(x, y, z int) int { return (x*nc+y)*nc + z }
	pairSeen := make(map[[2]int]int)
	for x := 0; x < nc; x++ {
		for y := 0; y < nc; y++ {
			for z := 0; z < nc; z++ {
				c := cidx(x, y, z)
				for _, off := range halfShell {
					nx, ny, nz := x+off[0], y+off[1], z+off[2]
					if nx < 0 || ny < 0 || nz < 0 || nx >= nc || ny >= nc || nz >= nc {
						continue
					}
					o := cidx(nx, ny, nz)
					a, b := c, o
					if a > b {
						a, b = b, a
					}
					pairSeen[[2]int{a, b}]++
				}
			}
		}
	}
	for p, c := range pairSeen {
		if c != 1 {
			t.Fatalf("cell pair %v enumerated %d times", p, c)
		}
	}
	// Every adjacent (Chebyshev distance 1) pair must appear.
	count := 0
	for x := 0; x < nc; x++ {
		for y := 0; y < nc; y++ {
			for z := 0; z < nc; z++ {
				for dx := -1; dx <= 1; dx++ {
					for dy := -1; dy <= 1; dy++ {
						for dz := -1; dz <= 1; dz++ {
							if dx == 0 && dy == 0 && dz == 0 {
								continue
							}
							nx, ny, nz := x+dx, y+dy, z+dz
							if nx < 0 || ny < 0 || nz < 0 || nx >= nc || ny >= nc || nz >= nc {
								continue
							}
							count++
						}
					}
				}
			}
		}
	}
	if len(pairSeen) != count/2 {
		t.Fatalf("covered %d pairs, want %d", len(pairSeen), count/2)
	}
}

// TestChunkPartition: chunk and threadChunkFor must partition exactly.
func TestChunkPartition(t *testing.T) {
	for _, n := range []int{1, 7, 64, 130, 1000} {
		for _, parts := range []int{1, 3, 8, 16} {
			covered := 0
			prevHi := 0
			for id := 0; id < parts; id++ {
				lo, hi := chunk(n, parts, id)
				if lo != prevHi {
					t.Fatalf("chunk(%d,%d): gap at worker %d", n, parts, id)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n {
				t.Fatalf("chunk(%d,%d) covered %d", n, parts, covered)
			}
		}
		for _, procs := range []int{2, 4} {
			for _, tpp := range []int{1, 2, 4} {
				covered := 0
				prevHi := 0
				for id := 0; id < procs*tpp; id++ {
					lo, hi := threadChunkFor(n, procs, tpp, id)
					if lo != prevHi {
						t.Fatalf("threadChunkFor(%d,%d,%d): gap at %d", n, procs, tpp, id)
					}
					covered += hi - lo
					prevHi = hi
				}
				if covered != n {
					t.Fatalf("threadChunkFor(%d,%d,%d) covered %d", n, procs, tpp, covered)
				}
			}
		}
	}
}

// TestThreadChunkProcBalance: adding threads must not unbalance processor
// loads (the regression behind the original chunk()).
func TestThreadChunkProcBalance(t *testing.T) {
	const n, procs = 130, 8
	for _, tpp := range []int{1, 2, 8} {
		per := make([]int, procs)
		for id := 0; id < procs*tpp; id++ {
			lo, hi := threadChunkFor(n, procs, tpp, id)
			per[id/tpp] += hi - lo
		}
		minP, maxP := per[0], per[0]
		for _, v := range per {
			minP = min(minP, v)
			maxP = max(maxP, v)
		}
		if maxP-minP > 1 {
			t.Fatalf("tpp=%d: processor loads %v unbalanced", tpp, per)
		}
	}
}
