package dsm_test

import (
	"fmt"
	"testing"

	"godsm/dsm"
)

// TestPublicAPISurface exercises the whole public API through the facade:
// allocation, typed accessors, locks, barriers, prefetch, compute,
// measurement, and the report accessors.
func TestPublicAPISurface(t *testing.T) {
	cfg := dsm.DefaultConfig()
	cfg.Procs = 4
	cfg.Prefetch = true
	sys := dsm.NewSystem(cfg)

	arr := sys.Alloc.Alloc(8*512, dsm.PageSize)
	sum := sys.Alloc.Alloc(8, 8)
	flag := sys.Alloc.Alloc(4, 4)

	rep := sys.Run(func(e *dsm.Env) {
		if e.ThreadID() == 0 {
			for i := 0; i < 512; i++ {
				e.WriteF64(arr+dsm.Addr(8*i), float64(i))
			}
			e.WriteU32(flag, 7)
			e.WriteI64(sum, 0)
		}
		e.Barrier(0)

		e.PrefetchRange(arr, 8*512)
		e.Compute(50 * dsm.Microsecond)

		var s float64
		for i := e.ThreadID(); i < 512; i += e.NumThreads() {
			s += e.ReadF64(arr + dsm.Addr(8*i))
		}
		e.Lock(3)
		e.WriteI64(sum, e.ReadI64(sum)+int64(s))
		e.Unlock(3)
		e.Barrier(1)

		if e.ThreadID() == 0 {
			e.EndMeasurement()
			if got := e.ReadI64(sum); got != 511*512/2 {
				panic(fmt.Sprintf("sum = %d", got))
			}
			if e.ReadU32(flag) != 7 {
				panic("flag lost")
			}
		}
		e.Barrier(2)
	})

	if rep.Procs != 4 || rep.Threads != 1 {
		t.Fatalf("report geometry %d/%d", rep.Procs, rep.Threads)
	}
	if rep.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if rep.MsgsTotal == 0 || rep.BytesTotal == 0 {
		t.Fatal("no traffic recorded")
	}
	// Per-processor breakdowns partition time exactly; the averaged
	// breakdown may round down by up to one unit per category.
	for p, b := range rep.PerProc {
		if got := b.Total(); got != rep.Elapsed {
			t.Fatalf("proc %d breakdown sums to %d, elapsed %d", p, got, rep.Elapsed)
		}
	}
	if got := rep.Breakdown.Total(); got > rep.Elapsed || got < rep.Elapsed-dsm.Time(dsm.NumCategories) {
		t.Fatalf("average breakdown sums to %d, elapsed %d", got, rep.Elapsed)
	}
	if rep.Sum().PfCalls == 0 {
		t.Fatal("prefetch calls not recorded")
	}
}

// TestConfigKnobs: every public knob must be accepted.
func TestConfigKnobs(t *testing.T) {
	cfg := dsm.DefaultConfig()
	cfg.Procs = 2
	cfg.ThreadsPerProc = 2
	cfg.SwitchOnMiss = true
	cfg.SwitchOnSync = true
	cfg.Prefetch = true
	cfg.ThrottlePf = 2
	cfg.GCThreshold = 1 << 20
	cfg.AccessNs = 25
	cfg.Net = dsm.DefaultNetConfig()
	cfg.Costs = dsm.DefaultCosts()
	sys := dsm.NewSystem(cfg)
	c := sys.Alloc.Alloc(8, 8)
	rep := sys.Run(func(e *dsm.Env) {
		e.Lock(0)
		e.WriteI64(c, e.ReadI64(c)+1)
		e.Unlock(0)
		e.Barrier(0)
	})
	if rep.Threads != 2 {
		t.Fatal("threads not applied")
	}
}

// ExampleNewSystem demonstrates the minimal godsm program.
func ExampleNewSystem() {
	cfg := dsm.DefaultConfig()
	cfg.Procs = 2
	sys := dsm.NewSystem(cfg)
	counter := sys.Alloc.Alloc(8, 8)
	var final int64
	sys.Run(func(e *dsm.Env) {
		e.Lock(0)
		e.WriteI64(counter, e.ReadI64(counter)+1)
		e.Unlock(0)
		e.Barrier(0)
		if e.ThreadID() == 0 {
			final = e.ReadI64(counter)
		}
	})
	fmt.Println(final)
	// Output: 2
}

// TestThreadRange checks the public work-splitting helper partitions
// exactly and balances processors.
func TestThreadRange(t *testing.T) {
	cfg := dsm.DefaultConfig()
	cfg.Procs = 4
	cfg.ThreadsPerProc = 2
	cfg.SwitchOnSync = true
	sys := dsm.NewSystem(cfg)
	covered := make([]bool, 130)
	sys.Run(func(e *dsm.Env) {
		lo, hi := e.ThreadRange(len(covered))
		for i := lo; i < hi; i++ {
			if covered[i] {
				panic("overlapping ranges")
			}
			covered[i] = true
		}
		e.Barrier(0)
	})
	for i, c := range covered {
		if !c {
			t.Fatalf("item %d uncovered", i)
		}
	}
}

// TestHLRCLastPartialPage exercises the home-based backend's page→home
// mapping on the shared heap's tail: a non-power-of-two cluster, an
// allocation that ends mid-page, and a second allocation that lands in the
// same final page (cross-allocation sharing of one partially used page).
func TestHLRCLastPartialPage(t *testing.T) {
	cfg := dsm.DefaultConfig()
	cfg.Procs = 3
	cfg.Protocol = "hlrc"
	sys := dsm.NewSystem(cfg)

	// 2 pages + one value: the array's last element is the only array byte
	// on its page, and the counter allocated right behind it shares it.
	const n = 2*dsm.PageSize/8 + 1
	arr := sys.Alloc.Alloc(8*n, dsm.PageSize)
	counter := sys.Alloc.Alloc(8, 8)

	rep := sys.Run(func(e *dsm.Env) {
		for i := e.ThreadID(); i < n; i += e.NumThreads() {
			e.WriteF64(arr+dsm.Addr(8*i), float64(i)+0.5)
		}
		e.Lock(0)
		e.WriteI64(counter, e.ReadI64(counter)+1)
		e.Unlock(0)
		e.Barrier(0)

		for i := 0; i < n; i++ {
			if got := e.ReadF64(arr + dsm.Addr(8*i)); got != float64(i)+0.5 {
				panic(fmt.Sprintf("thread %d: element %d = %v", e.ThreadID(), i, got))
			}
		}
		if got := e.ReadI64(counter); got != int64(e.NumThreads()) {
			panic(fmt.Sprintf("counter = %d, want %d", got, e.NumThreads()))
		}
		e.Barrier(1)
	})
	if rep.Sum().HomeFlushes == 0 {
		t.Fatal("no home flushes: the home-based backend did not run")
	}
}
