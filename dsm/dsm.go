// Package dsm is the public API of godsm, a deterministic simulation of a
// TreadMarks-style software distributed shared memory system with the
// latency tolerance techniques studied in Mowry, Chan & Lo, "Comparative
// Evaluation of Latency Tolerance Techniques for Software Distributed
// Shared Memory" (HPCA-4, 1998): software-controlled non-binding
// prefetching and user-level multithreading, individually and combined.
//
// A program builds a System from a Config, allocates shared memory with the
// system allocator, and calls Run with a thread body. The body receives an
// Env — the thread's handle for shared-memory accesses, synchronization,
// prefetching, and computation charging — and executes on every simulated
// thread (Procs × ThreadsPerProc of them), SPLASH-2 style. Run returns a
// Report with the paper's measurements: execution-time breakdown, miss and
// synchronization stalls, prefetch effectiveness, and traffic.
//
// Minimal example:
//
//	cfg := dsm.DefaultConfig()
//	cfg.Procs = 4
//	sys := dsm.NewSystem(cfg)
//	counter := sys.Alloc.Alloc(8, 8)
//	report := sys.Run(func(e *dsm.Env) {
//		e.Lock(0)
//		e.WriteI64(counter, e.ReadI64(counter)+1)
//		e.Unlock(0)
//		e.Barrier(0)
//	})
//
// All simulation is in virtual time: results are bit-for-bit reproducible
// and independent of the host machine. A System is single-threaded and
// shares no state with other Systems, so independent simulations may run
// concurrently (the experiment harness fans the paper's grid out over a
// worker pool this way) without perturbing any Report; Report.Fingerprint
// gives a deterministic rendering for comparing runs.
package dsm

import (
	"godsm/internal/core"
	"godsm/internal/netsim"
	"godsm/internal/pagemem"
	"godsm/internal/proto"
	"godsm/internal/race"
	"godsm/internal/sim"
	"godsm/internal/stats"
)

// Time is virtual time in nanoseconds.
type Time = sim.Time

// Convenient virtual-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Addr is an address in the shared virtual address space.
type Addr = pagemem.Addr

// PageSize is the coherence unit (4 KB).
const PageSize = pagemem.PageSize

// Env is a simulated thread's handle on the system. See the core package
// for the full method set: Read*/Write* accessors, Lock/Unlock, Barrier,
// Prefetch/PrefetchRange, Compute, and identification helpers.
type Env = core.Env

// Config selects the cluster size, latency-tolerance mode, network
// parameters and protocol cost model.
type Config = core.Config

// System is one simulated cluster; create with NewSystem, then Run once.
type System = core.System

// Report is the result of a run: execution-time breakdown and all of the
// paper's statistics.
type Report = stats.Report

// Breakdown is a processor-time breakdown in the paper's categories.
type Breakdown = stats.Breakdown

// NodeStats are one processor's raw counters.
type NodeStats = stats.Node

// Processor-time categories (Figure 1's legend).
const (
	CatBusy       = sim.CatBusy
	CatDSM        = sim.CatDSM
	CatMemIdle    = sim.CatMemIdle
	CatSyncIdle   = sim.CatSyncIdle
	CatPrefetchOv = sim.CatPrefetchOv
	CatMTOv       = sim.CatMTOv
)

// NumCategories is the number of processor-time categories.
const NumCategories = int(sim.NumCategories)

// DefaultConfig returns the paper's baseline platform: 8 processors on a
// 155 Mbps ATM LAN, one thread per processor, prefetching off.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewSystem builds a simulated cluster.
func NewSystem(cfg Config) *System { return core.NewSystem(cfg) }

// DefaultNetConfig returns the calibrated ATM network parameters.
func DefaultNetConfig() netsim.Config { return netsim.DefaultConfig() }

// FaultPlan describes deterministic network fault injection (loss,
// duplication, reordering jitter, link brown-outs, NIC stalls), seeded so
// every run replays exactly. Set it on Config.Net.Faults; a non-zero plan
// automatically switches the protocol to its reliable ack/retransmit
// transport. The zero plan injects nothing and leaves runs byte-identical
// to a fault-free network.
type FaultPlan = netsim.FaultPlan

// LinkFault is one transient window on a node's link, used by
// FaultPlan.Brownouts and FaultPlan.Stalls.
type LinkFault = netsim.LinkFault

// RaceError is the panic value System.Run raises when Config.RaceCheck is
// set and the application performs two conflicting shared accesses not
// ordered by Lock/Unlock, Barrier, or thread start/exit. It names both
// access sites (thread, processor, virtual time, access kind) and carries
// the recent event-bus history; rendering is deterministic, so the same
// configuration always reports the same race byte for byte. Recover it
// around Run to treat a race as a value:
//
//	defer func() {
//		if re, ok := recover().(*dsm.RaceError); ok { ... }
//	}()
type RaceError = race.RaceError

// DefaultCosts returns the calibrated protocol CPU cost model.
func DefaultCosts() proto.Costs { return proto.DefaultCosts() }

// Protocols returns the names of the registered coherence protocols, sorted
// ("lrc", "erc", "hlrc", ...). Set one on Config.Protocol; the empty string
// selects the default, "lrc".
func Protocols() []string { return proto.Names() }

// HomePolicies returns the selectable page→home assignment policies of the
// home-based protocol ("static", "firsttouch", "migrate"). Set one on
// Config.HomePolicy together with Protocol "hlrc"; the empty string selects
// "static", the paper's fixed page-mod-N assignment.
func HomePolicies() []string { return proto.HomePolicies() }

// ValidateProtocolConfig checks that cfg names a registered coherence
// protocol and that the protocol accepts cfg's knob combination (for
// example, HLRC has no diff GC, so it rejects a nonzero GCThreshold).
// NewSystem panics on an invalid combination; front ends validate user
// input with this first to report a plain error instead.
func ValidateProtocolConfig(cfg Config) error {
	_, err := core.ProtoConfig(cfg)
	return err
}

// ValidateMachineConfig checks the whole machine configuration — processor
// and thread counts, interconnect topology (the fat tree needs power-of-two
// node counts and radices), barrier and gossip knobs, and the protocol
// combination — and reports the first problem as a plain error. NewSystem
// panics on the same mistakes; front ends validate user input with this
// first.
func ValidateMachineConfig(cfg Config) error {
	return core.ValidateMachine(cfg)
}
