// Quickstart: a parallel sum over a shared array on a simulated 4-processor
// software DSM cluster, using locks, barriers and the measurement report.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"godsm/dsm"
)

func main() {
	cfg := dsm.DefaultConfig()
	cfg.Procs = 4

	sys := dsm.NewSystem(cfg)

	const n = 64 * 1024
	data := sys.Alloc.Alloc(8*n, dsm.PageSize) // shared float64 array
	total := sys.Alloc.Alloc(8, 8)             // shared accumulator

	report := sys.Run(func(e *dsm.Env) {
		// Thread 0 initializes the shared data; the first barrier
		// publishes it (and produces the paper's initialization hot-spot
		// as everyone fetches from processor 0).
		if e.ThreadID() == 0 {
			for i := 0; i < n; i++ {
				e.WriteF64(data+dsm.Addr(8*i), float64(i%100))
			}
		}
		e.Barrier(0)

		// Each thread sums its contiguous chunk.
		per := n / e.NumThreads()
		lo := e.ThreadID() * per
		var sum float64
		for i := lo; i < lo+per; i++ {
			sum += e.ReadF64(data + dsm.Addr(8*i))
			e.Compute(40) // ~40ns of arithmetic per element
		}

		// Combine under a lock.
		e.Lock(0)
		e.WriteF64(total, e.ReadF64(total)+sum)
		e.Unlock(0)
		e.Barrier(1)

		if e.ThreadID() == 0 {
			e.EndMeasurement()
			want := 0.0
			for i := 0; i < n; i++ {
				want += float64(i % 100)
			}
			fmt.Printf("total = %.0f (want %.0f)\n", e.ReadF64(total), want)
		}
		e.Barrier(2)
	})

	fmt.Printf("elapsed: %d µs on %d processors\n",
		report.Elapsed/dsm.Microsecond, report.Procs)
	fmt.Printf("remote misses: %d (avg %d µs), messages: %d (%d KB)\n",
		report.TotalMisses(), report.AvgMissLatency()/dsm.Microsecond,
		report.MsgsTotal, report.BytesTotal/1024)
	norm := report.Breakdown.Normalized(report.Elapsed)
	fmt.Printf("breakdown: busy %.0f%%, dsm %.0f%%, mem idle %.0f%%, sync idle %.0f%%\n",
		norm[dsm.CatBusy], norm[dsm.CatDSM], norm[dsm.CatMemIdle], norm[dsm.CatSyncIdle])
}
