// Stencil: a heat-diffusion solver on a shared 2D grid, demonstrating
// software-controlled non-binding prefetching (Section 3 of the paper).
//
// Each thread owns a block of rows; the only remote data are the neighbour
// boundary rows, which are prefetched at the start of each sweep while the
// interior rows (all local) are computed first — the paper's loop-splitting
// + software-pipelining schedule. The program runs with prefetching off and
// on and reports the difference.
//
// Run with: go run ./examples/stencil
package main

import (
	"fmt"

	"godsm/dsm"
)

const (
	rows, cols = 256, 256
	iters      = 20
	alpha      = 0.2
)

func run(prefetch bool) *dsm.Report {
	cfg := dsm.DefaultConfig()
	cfg.Procs = 8
	cfg.Prefetch = prefetch
	sys := dsm.NewSystem(cfg)

	R, C := rows+2, cols+2
	grid := sys.Alloc.Alloc(8*R*C, dsm.PageSize)
	at := func(i, j int) dsm.Addr { return grid + dsm.Addr(8*(i*C+j)) }

	return sys.Run(func(e *dsm.Env) {
		if e.ThreadID() == 0 {
			for j := 0; j < C; j++ {
				e.WriteF64(at(0, j), 100) // hot top edge
			}
		}
		e.Barrier(0)

		per := rows / e.NumThreads()
		lo := 1 + e.ThreadID()*per
		hi := lo + per
		bar := 1
		for it := 0; it < iters; it++ {
			for color := 0; color < 2; color++ {
				if e.Prefetching() {
					// The neighbours' boundary rows are the remote data.
					e.PrefetchRange(at(lo-1, 0), 8*C)
					e.PrefetchRange(at(hi, 0), 8*C)
				}
				// Interior rows first (local), boundary rows last, giving
				// the prefetches time to complete.
				for _, i := range sweepOrder(lo, hi) {
					for j := 1 + (i+color)%2; j <= cols; j += 2 {
						up := e.ReadF64(at(i-1, j))
						down := e.ReadF64(at(i+1, j))
						left := e.ReadF64(at(i, j-1))
						right := e.ReadF64(at(i, j+1))
						c := e.ReadF64(at(i, j))
						e.WriteF64(at(i, j), c+alpha*((up+down+left+right)/4-c))
						e.Compute(300)
					}
				}
				e.Barrier(bar)
				bar++
			}
		}
		if e.ThreadID() == 0 {
			e.EndMeasurement()
		}
		e.Barrier(bar)
	})
}

func sweepOrder(lo, hi int) []int {
	order := make([]int, 0, hi-lo)
	for i := lo + 1; i < hi-1; i++ {
		order = append(order, i)
	}
	order = append(order, lo, hi-1)
	return order
}

func main() {
	base := run(false)
	pf := run(true)
	fmt.Printf("without prefetching: %6d µs (%d remote misses, avg %d µs)\n",
		base.Elapsed/dsm.Microsecond, base.TotalMisses(), base.AvgMissLatency()/dsm.Microsecond)
	fmt.Printf("with prefetching:    %6d µs (%d remote misses, %d prefetch hits, coverage %.0f%%)\n",
		pf.Elapsed/dsm.Microsecond, pf.TotalMisses(), pf.Sum().FaultPfHit, pf.CoverageFactor())
	fmt.Printf("speedup: %.2fx\n", pf.Speedup(base))
}
