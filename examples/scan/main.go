// Scan: a tiled parallel reduction over a large shared dataset,
// demonstrating Env.PrefetchLoop — the software-pipelined prefetch
// schedule the paper's compiler pass (SUIF) inserts for array codes: while
// tile i is being reduced, tile i+depth's pages are already in flight.
//
// Run with: go run ./examples/scan
package main

import (
	"fmt"

	"godsm/dsm"
)

const (
	tiles    = 48
	tileElem = 512 // float64 per tile (one page each)
)

func run(prefetch bool) (*dsm.Report, float64) {
	cfg := dsm.DefaultConfig()
	cfg.Procs = 4
	cfg.Prefetch = prefetch
	sys := dsm.NewSystem(cfg)

	data := sys.Alloc.Alloc(8*tiles*tileElem, dsm.PageSize)
	partial := sys.Alloc.Alloc(8*cfg.Procs, dsm.PageSize)
	var total float64

	rep := sys.Run(func(e *dsm.Env) {
		if e.ThreadID() == 0 {
			for i := 0; i < tiles*tileElem; i++ {
				e.WriteF64(data+dsm.Addr(8*i), float64(i%1000)/1000)
			}
		}
		e.Barrier(0)

		// Each processor reduces a contiguous run of tiles with a
		// pipelined prefetch four tiles ahead (≈ the miss latency).
		first, last := e.ThreadRange(tiles)
		var sum float64
		e.PrefetchLoop(last-first, 4,
			func(i int) (dsm.Addr, int) {
				return data + dsm.Addr(8*(first+i)*tileElem), 8 * tileElem
			},
			func(i int) {
				base := data + dsm.Addr(8*(first+i)*tileElem)
				for j := 0; j < tileElem; j++ {
					sum += e.ReadF64(base + dsm.Addr(8*j))
				}
				e.Compute(dsm.Time(tileElem) * 600)
			})
		e.WriteF64(partial+dsm.Addr(8*e.ThreadID()), sum)
		e.Barrier(1)

		if e.ThreadID() == 0 {
			e.EndMeasurement()
			for p := 0; p < e.NumThreads(); p++ {
				total += e.ReadF64(partial + dsm.Addr(8*p))
			}
		}
		e.Barrier(2)
	})
	return rep, total
}

func main() {
	base, sum0 := run(false)
	pf, sum1 := run(true)
	fmt.Printf("checksums: %.3f / %.3f (must match)\n", sum0, sum1)
	fmt.Printf("without prefetching: %6d µs, %3d misses (avg %d µs)\n",
		base.Elapsed/dsm.Microsecond, base.TotalMisses(), base.AvgMissLatency()/dsm.Microsecond)
	fmt.Printf("with PrefetchLoop:   %6d µs, %3d misses, %d prefetch hits, coverage %.0f%%\n",
		pf.Elapsed/dsm.Microsecond, pf.TotalMisses(), pf.Sum().FaultPfHit, pf.CoverageFactor())
	fmt.Printf("speedup: %.2fx\n", pf.Speedup(base))
}
