// Molecules: a small molecular-dynamics step loop demonstrating user-level
// multithreading (Section 4 of the paper): threads switch on remote misses
// and synchronization stalls, overlapping communication with computation.
//
// The force merge is protected by per-block locks — exactly the
// multiple-producer pattern where multithreading hides lock-transfer
// latency. The program sweeps 1, 2 and 4 threads per processor.
//
// Run with: go run ./examples/molecules
package main

import (
	"fmt"

	"godsm/dsm"
)

const (
	nMol  = 128
	steps = 3
	blk   = 16
)

func run(threads int) *dsm.Report {
	cfg := dsm.DefaultConfig()
	cfg.Procs = 4
	cfg.ThreadsPerProc = threads
	if threads > 1 {
		cfg.SwitchOnMiss = true
		cfg.SwitchOnSync = true
	}
	sys := dsm.NewSystem(cfg)

	pos := sys.Alloc.Alloc(8*3*nMol, dsm.PageSize)
	force := sys.Alloc.Alloc(8*3*nMol, dsm.PageSize)
	nBlocks := (nMol + blk - 1) / blk

	// Per-processor accumulator shared by the processor's threads — the
	// paper's "single shared copy per processor" optimization, which keeps
	// the lock-protected merge work constant as threads are added.
	procAcc := make([][]float64, cfg.Procs)

	return sys.Run(func(e *dsm.Env) {
		me := e.ThreadID()
		tpp := e.NumThreads() / e.NumProcs()
		per := nMol / e.NumThreads()
		lo := me * per
		hi := lo + per
		if e.LocalThread() == 0 {
			procAcc[e.ProcID()] = make([]float64, 3*nMol)
		}
		if me == 0 {
			for i := 0; i < 3*nMol; i++ {
				e.WriteF64(pos+dsm.Addr(8*i), float64(i%17))
			}
		}
		e.Barrier(0)

		bar := 1
		for s := 0; s < steps; s++ {
			// Zero own forces and (local thread 0) the shared accumulator.
			for i := 3 * lo; i < 3*hi; i++ {
				e.WriteF64(force+dsm.Addr(8*i), 0)
			}
			if e.LocalThread() == 0 {
				a := procAcc[e.ProcID()]
				for i := range a {
					a[i] = 0
				}
			}
			e.Barrier(bar)
			bar++

			// Pairwise interactions of owned molecules with the rest,
			// accumulated into the processor-local array.
			acc := procAcc[e.ProcID()]
			for i := lo; i < hi; i++ {
				xi := e.ReadF64(pos + dsm.Addr(8*3*i))
				for j := i + 1; j < nMol; j++ {
					xj := e.ReadF64(pos + dsm.Addr(8*3*j))
					f := 1 / (1 + (xi-xj)*(xi-xj))
					acc[3*i] += f
					acc[3*j] -= f
					e.Compute(800)
				}
			}

			// Siblings must finish their pairs before the merge.
			e.Barrier(bar)
			bar++

			// Merge under per-block locks; the processor's threads split
			// the blocks, so multithreading overlaps the lock-transfer
			// latency across blocks.
			for b := e.LocalThread(); b < nBlocks; b += tpp {
				blk := (b + e.ProcID()*nBlocks/e.NumProcs()) % nBlocks
				first, last := blk*16, min(nMol, (blk+1)*16)
				e.Lock(10 + blk)
				for i := 3 * first; i < 3*last; i++ {
					if acc[i] != 0 {
						a := force + dsm.Addr(8*i)
						e.WriteF64(a, e.ReadF64(a)+acc[i])
					}
				}
				e.Unlock(10 + blk)
			}
			e.Barrier(bar)
			bar++

			// Nudge positions from forces.
			for i := lo; i < hi; i++ {
				a := pos + dsm.Addr(8*3*i)
				e.WriteF64(a, e.ReadF64(a)+0.001*e.ReadF64(force+dsm.Addr(8*3*i)))
				e.Compute(500)
			}
			e.Barrier(bar)
			bar++
		}
		if me == 0 {
			e.EndMeasurement()
		}
		e.Barrier(bar)
	})
}

func main() {
	fmt.Println("threads/proc   elapsed     ctx-switches   avg stall")
	var base dsm.Time
	for _, t := range []int{1, 2, 4} {
		rep := run(t)
		if t == 1 {
			base = rep.Elapsed
		}
		n := rep.Sum()
		fmt.Printf("    %d        %7d µs   %6d         %5d µs   (%.2fx)\n",
			t, rep.Elapsed/dsm.Microsecond, n.CtxSwitches,
			rep.AvgStall()/dsm.Microsecond, float64(base)/float64(rep.Elapsed))
	}
}
